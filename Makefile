# Developer/CI entry points.  Everything runs from the repo root and assumes
# the dependencies baked into the dev image (numpy, scipy, pytest, hypothesis,
# pytest-benchmark) are installed.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench-pipeline bench-record bench-check \
	bench-restore-latency bench-server bench-volumes cli-smoke store-smoke \
	restore-smoke append-smoke server-smoke volume-smoke hygiene golden \
	lint typecheck

# Where bench-record writes its BENCH_*.json.  The default (repo root) is the
# committed baseline; CI records into a scratch dir and compares against it.
BENCH_DIR ?= .

## tier-1 test suite (the roadmap's verification command)
test:
	$(PYTHON) -m pytest -x -q

## repo hygiene: fail if bytecode artefacts are tracked by git
hygiene:
	@bad=$$(git ls-files | grep -E '(\.pyc$$|__pycache__)' || true); \
	if [ -n "$$bad" ]; then \
		echo "tracked bytecode artefacts found:"; echo "$$bad"; exit 1; \
	fi
	@echo "hygiene ok: no tracked *.pyc / __pycache__"

## static analysis: the repo's invariant linter (always; pure stdlib), then
## ruff when it is installed (CI installs it via requirements-dev.txt; the
## dev image may not carry it, in which case that half is skipped loudly)
lint:
	$(PYTHON) -m repro.devtools.lint src/repro benchmarks
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping ruff half of lint (CI runs it)"; \
	fi

## mypy --strict over src/repro (config in pyproject.toml); skipped loudly
## when mypy is not installed locally — CI always runs it
typecheck:
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping typecheck (CI runs it)"; exit 0; \
	fi

## store smoke test: archive -> inspect -> read_range on the container backend
## (single shell + trap so .store-smoke is cleaned up even on failure)
store-smoke:
	@set -e; rm -rf .store-smoke; mkdir .store-smoke; \
	trap 'rm -rf .store-smoke' EXIT; \
	$(PYTHON) -c "open('.store-smoke/payload.bin','wb').write(b'ULE store smoke payload. '*400)"; \
	$(PYTHON) -m repro archive -i .store-smoke/payload.bin -o .store-smoke/backup.ule \
		--store container --media test --codec portable --segment-size 2048; \
	$(PYTHON) -m repro inspect .store-smoke/backup.ule --json \
		| $(PYTHON) -c "import json,sys; m=json.load(sys.stdin); \
		assert m['format_version']==4 and m['segments'], m"; \
	$(PYTHON) -m repro restore -i .store-smoke/backup.ule -o .store-smoke/slice.bin \
		--offset 3000 --length 1000; \
	$(PYTHON) -c "want=(b'ULE store smoke payload. '*400)[3000:4000]; \
	got=open('.store-smoke/slice.bin','rb').read(); assert got==want, 'slice mismatch'"

## CLI smoke test: archive -> inspect -> restore a tiny payload bit-exactly
## (single shell + trap so .cli-smoke is cleaned up even on failure)
cli-smoke:
	@set -e; rm -rf .cli-smoke; mkdir .cli-smoke; \
	trap 'rm -rf .cli-smoke' EXIT; \
	$(PYTHON) -c "open('.cli-smoke/payload.bin','wb').write(b'ULE cli smoke payload. '*200)"; \
	$(PYTHON) -m repro archive -i .cli-smoke/payload.bin -o .cli-smoke/arch \
		--media test --codec portable --segment-size 2048; \
	$(PYTHON) -m repro inspect .cli-smoke/arch; \
	$(PYTHON) -m repro restore -i .cli-smoke/arch -o .cli-smoke/restored.bin \
		--via-channel --seed 7; \
	cmp .cli-smoke/payload.bin .cli-smoke/restored.bin; \
	$(PYTHON) -m repro profiles --json | $(PYTHON) -c "import json,sys; json.load(sys.stdin)"

## restore smoke: --via-channel through the streaming channel path, with
## sub-segment parallel decode and readahead partial restore
restore-smoke:
	@set -e; rm -rf .restore-smoke; mkdir .restore-smoke; \
	trap 'rm -rf .restore-smoke' EXIT; \
	$(PYTHON) -c "open('.restore-smoke/payload.bin','wb').write(b'ULE restore smoke payload. '*300)"; \
	$(PYTHON) -m repro archive -i .restore-smoke/payload.bin -o .restore-smoke/arch.ule \
		--store container --media test --codec portable --segment-size 2048; \
	$(PYTHON) -m repro restore -i .restore-smoke/arch.ule -o .restore-smoke/restored.bin \
		--via-channel --seed 11 --executor thread:2 --decode-parallelism 2; \
	cmp .restore-smoke/payload.bin .restore-smoke/restored.bin; \
	$(PYTHON) -m repro restore -i .restore-smoke/arch.ule -o .restore-smoke/slice.bin \
		--offset 1000 --length 2000 --readahead 2; \
	$(PYTHON) -c "want=(b'ULE restore smoke payload. '*300)[1000:3000]; \
	got=open('.restore-smoke/slice.bin','rb').read(); assert got==want, 'slice mismatch'"

## append smoke: archive -> append (incremental backup) -> verify (fsck) ->
## partial restore spanning the generation boundary, all through the CLI
append-smoke:
	@set -e; rm -rf .append-smoke; mkdir .append-smoke; \
	trap 'rm -rf .append-smoke' EXIT; \
	$(PYTHON) -c "open('.append-smoke/a.bin','wb').write(b'ULE append smoke gen0. '*200)"; \
	$(PYTHON) -c "open('.append-smoke/b.bin','wb').write(b'ULE append smoke gen1! '*150)"; \
	$(PYTHON) -m repro archive -i .append-smoke/a.bin -o .append-smoke/backup.ule \
		--store container --media test --codec portable --segment-size 2048; \
	$(PYTHON) -m repro archive -i .append-smoke/b.bin -o .append-smoke/backup.ule \
		--append --json \
		| $(PYTHON) -c "import json,sys; m=json.load(sys.stdin); \
		assert m['generation']==1 and m['payload_bytes']==8050, m"; \
	$(PYTHON) -m repro verify .append-smoke/backup.ule --json \
		| $(PYTHON) -c "import json,sys; m=json.load(sys.stdin); \
		assert m['ok'] and m['active_generation']==1, m"; \
	$(PYTHON) -m repro restore -i .append-smoke/backup.ule -o .append-smoke/slice.bin \
		--offset 4100 --length 1000; \
	$(PYTHON) -c "want=(b'ULE append smoke gen0. '*200+b'ULE append smoke gen1! '*150)[4100:5100]; \
	got=open('.append-smoke/slice.bin','rb').read(); assert got==want, 'slice mismatch'"

## server smoke: serve a repository on an ephemeral port, then drive a full
## HTTP round trip (upload -> ranged read -> append -> verify -> stats) as a
## client, plus `repro inspect` against the running server's URL
server-smoke:
	@set -e; rm -rf .server-smoke; mkdir .server-smoke; \
	trap 'kill $$SERVER_PID 2>/dev/null || true; rm -rf .server-smoke' EXIT; \
	$(PYTHON) -m repro serve --root .server-smoke/root --port 0 \
		--port-file .server-smoke/port >.server-smoke/serve.log 2>&1 & \
	SERVER_PID=$$!; \
	for _ in $$(seq 1 100); do [ -s .server-smoke/port ] && break; sleep 0.2; done; \
	[ -s .server-smoke/port ] || { cat .server-smoke/serve.log; exit 1; }; \
	BASE="http://127.0.0.1:$$(cat .server-smoke/port)"; \
	$(PYTHON) examples/server_roundtrip.py --base-url "$$BASE"; \
	$(PYTHON) -m repro inspect "$$BASE/archives/smoke" --json \
		| $(PYTHON) -c "import json,sys; m=json.load(sys.stdin); \
		assert m['generation']==1 and m['payload_bytes']==54000, m"; \
	kill $$SERVER_PID; wait $$SERVER_PID 2>/dev/null || true

## volume-set smoke: archive onto a k=4,m=2 sharded volume set through the
## vol: target URI, destroy two whole member volumes, check that verify
## reports the damage (non-zero exit), then restore bit-exactly degraded
volume-smoke:
	@set -e; rm -rf .volume-smoke; mkdir .volume-smoke; \
	trap 'rm -rf .volume-smoke' EXIT; \
	TARGET="vol:k=4,m=2:.volume-smoke/v0,.volume-smoke/v1,.volume-smoke/v2,.volume-smoke/v3,.volume-smoke/v4,.volume-smoke/v5"; \
	$(PYTHON) -c "open('.volume-smoke/payload.bin','wb').write(b'ULE volume smoke payload. '*300)"; \
	$(PYTHON) -m repro archive -i .volume-smoke/payload.bin -o "$$TARGET" \
		--media test --codec portable --segment-size 2048; \
	$(PYTHON) -m repro verify "$$TARGET" --json \
		| $(PYTHON) -c "import json,sys; m=json.load(sys.stdin); assert m['ok'], m"; \
	rm -rf .volume-smoke/v1 .volume-smoke/v4; \
	if $(PYTHON) -m repro verify "$$TARGET" >/dev/null 2>&1; then \
		echo "verify should have reported the two lost volumes"; exit 1; \
	fi; \
	$(PYTHON) -m repro restore -i "$$TARGET" -o .volume-smoke/restored.bin; \
	cmp .volume-smoke/payload.bin .volume-smoke/restored.bin; \
	$(PYTHON) -m repro restore -i "$$TARGET" -o .volume-smoke/slice.bin \
		--offset 3000 --length 1500; \
	$(PYTHON) -c "want=(b'ULE volume smoke payload. '*300)[3000:4500]; \
	got=open('.volume-smoke/slice.bin','rb').read(); assert got==want, 'slice mismatch'"

## quick pipeline benchmark used as a CI smoke check
bench-smoke:
	$(PYTHON) benchmarks/bench_pipeline.py --smoke

## full pipeline benchmark (one-shot vs streaming vs parallel, ~4 MiB payload)
bench-pipeline:
	$(PYTHON) benchmarks/bench_pipeline.py

## restore-latency benchmark (sub-segment parallel decode + readahead)
bench-restore-latency:
	$(PYTHON) benchmarks/bench_restore_latency.py

## archive-service benchmark (concurrent HTTP clients, shared segment cache)
bench-server:
	$(PYTHON) benchmarks/bench_server.py

## volume-set benchmark (shard-parallel restore, degraded-read penalty)
bench-volumes:
	$(PYTHON) benchmarks/bench_volumes.py

## record the benchmark trajectory: JSON measurements into BENCH_DIR
## (default: the repo root, i.e. the committed baseline files)
bench-record:
	$(PYTHON) benchmarks/bench_pipeline.py --smoke --json $(BENCH_DIR)/BENCH_pipeline.json
	$(PYTHON) benchmarks/bench_store.py --json $(BENCH_DIR)/BENCH_store.json
	$(PYTHON) benchmarks/bench_restore_latency.py --smoke --json $(BENCH_DIR)/BENCH_restore_latency.json
	$(PYTHON) benchmarks/bench_server.py --smoke --json $(BENCH_DIR)/BENCH_server.json
	$(PYTHON) benchmarks/bench_volumes.py --smoke --json $(BENCH_DIR)/BENCH_volumes.json

## regression gate: re-record into a scratch dir, fail on a > 30% throughput
## drop vs the committed BENCH_*.json (see benchmarks/check_regression.py)
bench-check:
	@rm -rf .bench-fresh; mkdir .bench-fresh
	$(MAKE) bench-record BENCH_DIR=.bench-fresh
	$(PYTHON) benchmarks/check_regression.py --fresh-dir .bench-fresh

## regenerate the golden Bootstrap text after a deliberate decoder change
golden:
	REPRO_REGEN_GOLDEN=1 $(PYTHON) -m pytest -q tests/test_bootstrap_golden.py
