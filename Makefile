# Developer/CI entry points.  Everything runs from the repo root and assumes
# the dependencies baked into the dev image (numpy, scipy, pytest, hypothesis,
# pytest-benchmark) are installed.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench-pipeline cli-smoke store-smoke hygiene golden

## tier-1 test suite (the roadmap's verification command)
test:
	$(PYTHON) -m pytest -x -q

## repo hygiene: fail if bytecode artefacts are tracked by git
hygiene:
	@bad=$$(git ls-files | grep -E '(\.pyc$$|__pycache__)' || true); \
	if [ -n "$$bad" ]; then \
		echo "tracked bytecode artefacts found:"; echo "$$bad"; exit 1; \
	fi
	@echo "hygiene ok: no tracked *.pyc / __pycache__"

## store smoke test: archive -> inspect -> read_range on the container backend
store-smoke:
	rm -rf .store-smoke && mkdir .store-smoke
	$(PYTHON) -c "open('.store-smoke/payload.bin','wb').write(b'ULE store smoke payload. '*400)"
	$(PYTHON) -m repro archive -i .store-smoke/payload.bin -o .store-smoke/backup.ule \
		--store container --media test --codec portable --segment-size 2048
	$(PYTHON) -m repro inspect .store-smoke/backup.ule --json \
		| $(PYTHON) -c "import json,sys; m=json.load(sys.stdin); \
		assert m['format_version']==2 and m['segments'], m"
	$(PYTHON) -m repro restore -i .store-smoke/backup.ule -o .store-smoke/slice.bin \
		--offset 3000 --length 1000
	$(PYTHON) -c "want=(b'ULE store smoke payload. '*400)[3000:4000]; \
	got=open('.store-smoke/slice.bin','rb').read(); assert got==want, 'slice mismatch'"
	rm -rf .store-smoke

## CLI smoke test: archive -> inspect -> restore a tiny payload bit-exactly
cli-smoke:
	rm -rf .cli-smoke && mkdir .cli-smoke
	$(PYTHON) -c "open('.cli-smoke/payload.bin','wb').write(b'ULE cli smoke payload. '*200)"
	$(PYTHON) -m repro archive -i .cli-smoke/payload.bin -o .cli-smoke/arch \
		--media test --codec portable --segment-size 2048
	$(PYTHON) -m repro inspect .cli-smoke/arch
	$(PYTHON) -m repro restore -i .cli-smoke/arch -o .cli-smoke/restored.bin \
		--via-channel --seed 7
	cmp .cli-smoke/payload.bin .cli-smoke/restored.bin
	$(PYTHON) -m repro profiles --json | $(PYTHON) -c "import json,sys; json.load(sys.stdin)"
	rm -rf .cli-smoke

## quick pipeline benchmark used as a CI smoke check
bench-smoke:
	$(PYTHON) benchmarks/bench_pipeline.py --smoke

## full pipeline benchmark (one-shot vs streaming vs parallel, ~4 MiB payload)
bench-pipeline:
	$(PYTHON) benchmarks/bench_pipeline.py

## regenerate the golden Bootstrap text after a deliberate decoder change
golden:
	REPRO_REGEN_GOLDEN=1 $(PYTHON) -m pytest -q tests/test_bootstrap_golden.py
