# Developer/CI entry points.  Everything runs from the repo root and assumes
# the dependencies baked into the dev image (numpy, scipy, pytest, hypothesis,
# pytest-benchmark) are installed.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench-pipeline golden

## tier-1 test suite (the roadmap's verification command)
test:
	$(PYTHON) -m pytest -x -q

## quick pipeline benchmark used as a CI smoke check
bench-smoke:
	$(PYTHON) benchmarks/bench_pipeline.py --smoke

## full pipeline benchmark (one-shot vs streaming vs parallel, ~4 MiB payload)
bench-pipeline:
	$(PYTHON) benchmarks/bench_pipeline.py

## regenerate the golden Bootstrap text after a deliberate decoder change
golden:
	REPRO_REGEN_GOLDEN=1 $(PYTHON) -m pytest -q tests/test_bootstrap_golden.py
