# Developer/CI entry points.  Everything runs from the repo root and assumes
# the dependencies baked into the dev image (numpy, scipy, pytest, hypothesis,
# pytest-benchmark) are installed.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench-pipeline cli-smoke golden

## tier-1 test suite (the roadmap's verification command)
test:
	$(PYTHON) -m pytest -x -q

## CLI smoke test: archive -> inspect -> restore a tiny payload bit-exactly
cli-smoke:
	rm -rf .cli-smoke && mkdir .cli-smoke
	$(PYTHON) -c "open('.cli-smoke/payload.bin','wb').write(b'ULE cli smoke payload. '*200)"
	$(PYTHON) -m repro archive -i .cli-smoke/payload.bin -o .cli-smoke/arch \
		--media test --codec portable --segment-size 2048
	$(PYTHON) -m repro inspect .cli-smoke/arch
	$(PYTHON) -m repro restore -i .cli-smoke/arch -o .cli-smoke/restored.bin \
		--via-channel --seed 7
	cmp .cli-smoke/payload.bin .cli-smoke/restored.bin
	$(PYTHON) -m repro profiles --json | $(PYTHON) -c "import json,sys; json.load(sys.stdin)"
	rm -rf .cli-smoke

## quick pipeline benchmark used as a CI smoke check
bench-smoke:
	$(PYTHON) benchmarks/bench_pipeline.py --smoke

## full pipeline benchmark (one-shot vs streaming vs parallel, ~4 MiB payload)
bench-pipeline:
	$(PYTHON) benchmarks/bench_pipeline.py

## regenerate the golden Bootstrap text after a deliberate decoder change
golden:
	REPRO_REGEN_GOLDEN=1 $(PYTHON) -m pytest -q tests/test_bootstrap_golden.py
