"""Tests for :mod:`repro.store`: manifest v3, storage backends, partial restore.

Covers the manifest v3 <-> v1/v2 deprecation shims, the three storage
backends (directory / container / memory) round-tripping archives from the
persisted bytes alone, random-access ``read_range`` / ``restore_segment``
equalling the corresponding slice of a full restore across media and codecs
while decoding strictly fewer frames, container damage tolerance (index-less
linear scan), and worker-side plugin discovery via ``REPRO_PLUGINS``.

Archive-building goes through the shared ``make_payload`` / ``write_archive``
factory fixtures in ``conftest.py``; the incremental-append and verify/fsck
suites live in ``tests/test_append.py``.
"""

import json
import os
import subprocess
import sys
import textwrap
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro import ArchiveConfig, open_restore, registry
from repro.core.archive import ArchiveManifest
from repro.errors import ArchiveError, ConfigError, StoreError, UnknownNameError
from repro.store import (
    MANIFEST_FORMAT_VERSION,
    MemoryBackend,
    detect_store,
    load_archive,
    open_sink,
    open_source,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


# --------------------------------------------------------------------------- #
# Manifest v3 and the v1/v2 shims
# --------------------------------------------------------------------------- #
class TestManifestVersions:
    def test_v4_manifest_is_self_describing(self, tmp_path, make_payload, write_archive):
        payload = make_payload(5_000, seed=1)
        config = write_archive(tmp_path / "arch", payload)
        manifest = open_source(tmp_path / "arch").manifest()
        assert manifest.format_version == MANIFEST_FORMAT_VERSION == 4
        assert manifest.config == config.to_dict()
        assert manifest.generation == 0
        assert manifest.parent is None
        assert len(manifest.segments) == 3
        for record in manifest.segments:
            assert record.sha256 is not None and len(record.sha256) == 64
        # The on-media JSON carries the version marker explicitly; a
        # single-volume archive has no shard map key at all.
        fields = json.loads((tmp_path / "arch" / "manifest.json").read_text())
        assert fields["format_version"] == 4
        assert fields["generation"] == 0
        assert fields["config"]["codec"] == "portable"
        assert "volumes" not in fields

    def test_v1_manifest_loads_through_the_shim(self, tmp_path, make_payload, write_archive):
        payload = make_payload(5_000, seed=2)
        write_archive(tmp_path / "arch", payload)
        manifest_path = tmp_path / "arch" / "manifest.json"
        fields = json.loads(manifest_path.read_text())
        # Rewrite the manifest exactly as PR 2 wrote it: no version marker,
        # no embedded config, no per-segment hashes, no lineage.
        del fields["format_version"], fields["config"]
        del fields["generation"], fields["parent"]
        for segment in fields["segments"]:
            del segment["sha256"]
        manifest_path.write_text(json.dumps(fields))

        with pytest.warns(DeprecationWarning, match="v1 archive manifest"):
            manifest = ArchiveManifest.from_json(manifest_path.read_text())
        assert manifest.format_version == 3
        assert manifest.config is None
        assert manifest.generation == 0 and manifest.parent is None
        assert all(record.sha256 is None for record in manifest.segments)

        # The archive still restores, fully and partially (CRC-only verify).
        with pytest.warns(DeprecationWarning):
            reader = open_restore(tmp_path / "arch")
        assert reader.read().payload == payload
        with pytest.warns(DeprecationWarning):
            reader = open_restore(tmp_path / "arch")
        assert reader.read_range(2_100, 500) == payload[2_100:2_600]

    def test_v2_manifest_loads_through_the_shim(self, tmp_path, make_payload, write_archive):
        """v2 (PR 3's layout: versioned + hashes, no lineage) round-trips."""
        payload = make_payload(5_000, seed=21)
        write_archive(tmp_path / "arch", payload)
        manifest_path = tmp_path / "arch" / "manifest.json"
        fields = json.loads(manifest_path.read_text())
        # Rewrite exactly as PR 3 wrote it: v2 marker, no generation/parent.
        fields["format_version"] = 2
        del fields["generation"], fields["parent"]
        manifest_path.write_text(json.dumps(fields))

        with pytest.warns(DeprecationWarning, match="v2 archive manifest"):
            manifest = ArchiveManifest.from_json(manifest_path.read_text())
        assert manifest.format_version == 3
        assert manifest.generation == 0 and manifest.parent is None
        # The hashes were already there; nothing downgrades.
        assert all(record.sha256 is not None for record in manifest.segments)
        # Shim round-trip: the upgraded manifest re-serialises as v3 and
        # reloads identically (no second warning — it is v3 now).
        assert ArchiveManifest.from_json(manifest.to_json()) == manifest

        with pytest.warns(DeprecationWarning):
            reader = open_restore(tmp_path / "arch")
        assert reader.read().payload == payload
        with pytest.warns(DeprecationWarning):
            reader = open_restore(tmp_path / "arch")
        assert reader.read_range(2_100, 500) == payload[2_100:2_600]

    def test_v3_roundtrips_exactly(self, tmp_path, make_payload, write_archive):
        payload = make_payload(4_096, seed=3)
        write_archive(tmp_path / "arch", payload)
        manifest = open_source(tmp_path / "arch").manifest()
        assert ArchiveManifest.from_json(manifest.to_json()) == manifest

    def test_newer_format_version_is_rejected(self, tmp_path, write_archive):
        write_archive(tmp_path / "arch", b"x" * 100)
        manifest_path = tmp_path / "arch" / "manifest.json"
        fields = json.loads(manifest_path.read_text())
        fields["format_version"] = 99
        manifest_path.write_text(json.dumps(fields))
        with pytest.raises(StoreError, match="newer"):
            ArchiveManifest.from_json(manifest_path.read_text())


# --------------------------------------------------------------------------- #
# Storage backends
# --------------------------------------------------------------------------- #
class TestBackends:
    def test_container_roundtrips_from_the_file_alone(self, tmp_path, make_payload, write_archive):
        payload = make_payload(9_000, seed=4)
        path = tmp_path / "backup.ule"
        write_archive(path, payload, store="container")
        assert path.is_file()
        # A single flat file; restoration uses nothing but its bytes.
        reader = open_restore(path)
        result = reader.read()
        assert result.payload == payload

    def test_directory_store_matches_classic_layout(self, tmp_path, make_payload, write_archive):
        payload = make_payload(4_000, seed=5)
        write_archive(tmp_path / "arch", payload, store="directory")
        names = {p.name for p in (tmp_path / "arch").iterdir()}
        assert {"manifest.json", "bootstrap.txt", "config.json"} <= names
        assert any(name.startswith("data_emblem_") for name in names)
        # The classic whole-directory loader still reads it.
        from repro.core.archive import MicrOlonysArchive

        archive = MicrOlonysArchive.load(tmp_path / "arch")
        assert open_restore(archive).read().payload == payload

    def test_memory_backend(self, make_payload, write_archive):
        payload = make_payload(4_000, seed=6)
        try:
            write_archive("mem:store-test", payload)
            assert detect_store("mem:store-test") == "memory"
            reader = open_restore("mem:store-test")
            assert reader.read_range(1_000, 200) == payload[1_000:1_200]
        finally:
            MemoryBackend.discard("mem:store-test")
        with pytest.raises(StoreError):
            open_source("mem:store-test")

    def test_detect_store(self, tmp_path, write_archive):
        write_archive(tmp_path / "d", b"x" * 100)
        write_archive(tmp_path / "c.ule", b"x" * 100, store="container")
        assert detect_store(tmp_path / "d") == "directory"
        assert detect_store(tmp_path / "c.ule") == "container"
        with pytest.raises(StoreError, match="does not exist"):
            detect_store(tmp_path / "ghost")

    def test_container_survives_a_lost_index(self, tmp_path, make_payload, write_archive):
        """A truncated trailer degrades to a linear record scan — loudly."""
        payload = make_payload(5_000, seed=7)
        path = tmp_path / "backup.ule"
        write_archive(path, payload, store="container")
        data = path.read_bytes()
        path.write_bytes(data[:-16])  # chop the index trailer off
        with pytest.warns(RuntimeWarning, match="recovered by scanning"):
            reader = open_restore(path)
        assert reader.read().payload == payload

    def test_recovered_index_sets_the_source_flag(self, tmp_path, make_payload,
                                                  write_archive):
        """A corrupt (not just missing) trailer index also warns and flags."""
        payload = make_payload(3_000, seed=9)
        path = tmp_path / "backup.ule"
        write_archive(path, payload, store="container")
        data = bytearray(path.read_bytes())
        data[-4] ^= 0xFF  # damage the trailer's index magic
        path.write_bytes(bytes(data))
        with pytest.warns(RuntimeWarning, match="recovered by scanning"):
            source = open_source(path, "container")
        assert source.recovered_by_scan
        assert source.manifest().archive_bytes > 0
        source.close()

    def test_intact_container_opens_without_warning(self, tmp_path, make_payload,
                                                    write_archive):
        path = tmp_path / "backup.ule"
        write_archive(path, make_payload(2_000, seed=3), store="container")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            source = open_source(path, "container")
        assert not source.recovered_by_scan
        source.close()

    def test_container_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "not-an-archive"
        path.write_bytes(b"P5\n1 1\n255\n\x00")
        with pytest.raises(StoreError, match="bad magic"):
            open_source(path, "container")

    def test_stores_registry(self):
        assert registry.stores.names() == ["container", "directory", "memory", "volumes"]
        assert registry.get_store("dir").name == "directory"
        assert registry.get_store("vol").name == "volumes"
        with pytest.raises(UnknownNameError, match="did you mean"):
            registry.get_store("contaner")

    def test_config_store_field_validates(self):
        assert ArchiveConfig(store="file").store == "container"
        with pytest.raises(ConfigError):
            ArchiveConfig(store="cloud")

    def test_load_archive_from_any_target(self, tmp_path, make_payload, write_archive):
        payload = make_payload(3_000, seed=8)
        write_archive(tmp_path / "c.ule", payload, store="container")
        archive = load_archive(tmp_path / "c.ule")
        assert archive.manifest.archive_bytes == len(payload)
        assert len(archive.data_emblem_images) == archive.manifest.data_emblem_count
        assert len(archive.system_emblem_images) == archive.manifest.system_emblem_count


# --------------------------------------------------------------------------- #
# Random-access partial restore
# --------------------------------------------------------------------------- #
class TestBufferedContainerSink:
    """The coalescing container writer must change performance, not bytes."""

    @staticmethod
    def _frames(count, seed=5):
        rng = np.random.default_rng(seed)
        return [
            rng.integers(0, 256, size=(24, 32), dtype=np.uint8) for _ in range(count)
        ]

    def test_put_frames_bytes_identical_to_per_frame_writes(self, tmp_path):
        frames = self._frames(9)
        batched = tmp_path / "batched.ule"
        looped = tmp_path / "looped.ule"
        with open_sink(batched, "container") as sink:
            sink.put_frames("data", 0, frames)
            sink.put_text("note", "same bytes either way")
        with open_sink(looped, "container") as sink:
            for index, frame in enumerate(frames):
                sink.put_frame("data", index, frame)
            sink.put_text("note", "same bytes either way")
        assert batched.read_bytes() == looped.read_bytes()

    def test_put_frames_round_trips_on_every_backend(self, tmp_path):
        frames = self._frames(5, seed=11)
        manifest = ArchiveManifest(
            profile_name="test-small",
            dbcoder_profile="store",
            archive_bytes=1,
            archive_crc32=0,
            data_emblem_count=len(frames),
            system_emblem_count=0,
        )
        targets = [
            ("directory", tmp_path / "arch-dir"),
            ("container", tmp_path / "arch.ule"),
            ("memory", "mem:test-put-frames"),
        ]
        try:
            for store, target in targets:
                with open_sink(target, store) as sink:
                    sink.put_frames("data", 0, frames)
                    sink.put_manifest(manifest)
                source = open_source(target, store)
                got = source.get_frames("data", 0, len(frames))
                assert len(got) == len(frames)
                for want, have in zip(frames, got):
                    assert np.array_equal(want, have), store
                source.close()
        finally:
            MemoryBackend.discard("mem:test-put-frames")

    def test_abort_discards_pending_appended_records(self, tmp_path):
        """abort() drops buffered records before truncating, so a rolled
        back append leaves the file byte-identical to its previous state."""
        from repro.store import open_append_sink

        target = tmp_path / "backup.ule"
        with open_sink(target, "container") as sink:
            sink.put_frames("data", 0, self._frames(3))
        before = target.read_bytes()
        sink = open_append_sink(target, "container")
        sink.put_frames("data", 3, self._frames(2, seed=9))
        sink.put_text("extra", "never reaches the medium")  # still pending
        sink.abort()
        assert target.read_bytes() == before

    def test_closed_sink_rejects_further_records(self, tmp_path):
        target = tmp_path / "closed.ule"
        sink = open_sink(target, "container")
        sink.put_frames("data", 0, self._frames(1))
        sink.close()
        with pytest.raises(StoreError, match="closed"):
            sink.put_frame("data", 1, self._frames(1)[0])


class TestPartialRestore:
    #: (offset, length) shapes: inside one segment, spanning a boundary,
    #: empty, the whole payload, and a tail request clamped like a slice.
    RANGES = [(100, 50), (2_000, 200), (0, 0), (0, 10**9), (5_900, 1_000), (8_000, 5)]

    @pytest.mark.parametrize("media", ["test", "dna"])
    @pytest.mark.parametrize("codec", ["store", "portable"])
    def test_read_range_equals_full_restore_slice(self, tmp_path, media, codec,
                                                  make_payload, write_archive):
        payload = make_payload(6_000, seed=11)
        target = tmp_path / f"{media}-{codec}.ule"
        write_archive(target, payload, store="container", media=media, codec=codec)
        full = open_restore(target).read().payload
        assert full == payload
        reader = open_restore(target)
        for offset, length in self.RANGES:
            assert reader.read_range(offset, length) == full[offset:offset + length], (
                f"range [{offset}:{offset + length}) mismatch on {media}/{codec}"
            )

    def test_restore_segment_decodes_only_that_segment(self, tmp_path, make_payload,
                                                       write_archive):
        payload = make_payload(8_192, seed=12)
        target = tmp_path / "arch"
        write_archive(target, payload)
        manifest = open_source(target).manifest()
        assert len(manifest.segments) == 4

        decoded = []
        reader = open_restore(target, on_segment=decoded.append)
        record = manifest.segments[2]
        assert reader.restore_segment(2) == payload[record.offset:record.end]
        # The counting hook saw exactly one decode: segment 2, nothing else.
        assert [r.index for r in decoded] == [2]
        assert reader.segments_decoded == 1
        assert reader.frames_decoded == record.emblem_count

    def test_partial_restore_decodes_strictly_fewer_frames(self, tmp_path, make_payload,
                                                           write_archive):
        """The acceptance criterion: partial < full, measured in frames."""
        payload = make_payload(8_192, seed=13)
        target = tmp_path / "arch.ule"
        write_archive(target, payload, store="container")

        full_result = open_restore(target).read()
        full_frames = full_result.data_report.emblems_seen

        reader = open_restore(target)
        assert reader.read_range(3_000, 100) == payload[3_000:3_100]
        assert 0 < reader.frames_decoded < full_frames

        reader = open_restore(target)
        reader.restore_segment(0)
        assert 0 < reader.frames_decoded < full_frames

    def test_read_range_parallel_executor_matches_serial(self, tmp_path, make_payload,
                                                         write_archive):
        payload = make_payload(8_192, seed=14)
        target = tmp_path / "arch.ule"
        write_archive(target, payload, store="container")
        serial = open_restore(target, executor="serial").read_range(1_000, 6_000)
        threaded = open_restore(target, executor="thread:2").read_range(1_000, 6_000)
        assert serial == threaded == payload[1_000:7_000]

    def test_read_range_rejects_negative_requests(self, tmp_path, write_archive):
        write_archive(tmp_path / "arch", b"x" * 4_000)
        reader = open_restore(tmp_path / "arch")
        with pytest.raises(ValueError):
            reader.read_range(-1, 10)
        with pytest.raises(ValueError):
            reader.read_range(0, -10)

    def test_restore_segment_out_of_range(self, tmp_path, write_archive):
        write_archive(tmp_path / "arch", b"x" * 4_000)
        reader = open_restore(tmp_path / "arch")
        with pytest.raises(ArchiveError, match="out of range"):
            reader.restore_segment(99)

    def test_corrupt_frame_fails_hash_check_only_when_touched(self, tmp_path, make_payload,
                                                              write_archive):
        """Damage in segment 3 is invisible to a read confined to segment 0."""
        from repro.media.image import pgm_bytes, pgm_from_bytes

        payload = make_payload(8_192, seed=15)
        target = tmp_path / "arch"
        write_archive(target, payload)
        manifest = open_source(target).manifest()
        victim = manifest.segments[3]
        # Blank every frame of the last segment on the medium.
        for index in range(victim.emblem_start, victim.emblem_start + victim.emblem_count):
            frame_path = target / f"data_emblem_{index:04d}.pgm"
            image = pgm_from_bytes(frame_path.read_bytes())
            frame_path.write_bytes(pgm_bytes(np.full_like(image, 255)))

        reader = open_restore(target)
        assert reader.read_range(0, 2_048) == payload[:2_048]  # untouched segment: fine
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            open_restore(target).restore_segment(3)


# --------------------------------------------------------------------------- #
# Worker-side plugin discovery (REPRO_PLUGINS)
# --------------------------------------------------------------------------- #
class TestPluginDiscovery:
    def test_load_plugins_warns_on_broken_module(self):
        with pytest.warns(RuntimeWarning, match="failed to import"):
            assert registry.load_plugins("no_such_module_xyzzy") == []

    def test_custom_codec_resolves_inside_process_workers(self, tmp_path):
        """A REPRO_PLUGINS codec encodes under a spawn-based process pool.

        ``spawn`` start method forces workers to re-import everything, so
        this fails without worker-side plugin discovery (under ``fork`` the
        parent's registry would leak into workers and hide the bug).
        """
        (tmp_path / "repro_plug_test.py").write_text(textwrap.dedent("""
            from repro import registry

            def _flip(data: bytes) -> bytes:
                return bytes(byte ^ 0xA5 for byte in data)

            registry.register_codec("plug-flip", _flip, _flip, "plugin test codec",
                                    overwrite=True)
        """))
        script = tmp_path / "driver.py"
        script.write_text(textwrap.dedent("""
            import multiprocessing
            from repro import ArchiveConfig, open_archive, open_restore

            if __name__ == "__main__":
                multiprocessing.set_start_method("spawn", force=True)
                payload = b"plugin payload " * 400
                config = ArchiveConfig(media="test", codec="plug-flip",
                                       segment_size=1024, executor="process:2")
                with open_archive(config, target="mem:plug") as writer:
                    writer.write(payload)
                restored = open_restore("mem:plug", executor="serial").read().payload
                assert restored == payload, "plugin codec round trip failed"
                print("PLUGIN-OK")
        """))
        env = dict(os.environ)
        env["REPRO_PLUGINS"] = "repro_plug_test"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(tmp_path)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [sys.executable, str(script)], capture_output=True, text=True,
            env=env, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        assert "PLUGIN-OK" in proc.stdout


# --------------------------------------------------------------------------- #
# CLI: store selection and partial restore
# --------------------------------------------------------------------------- #
class TestStoreCLI:
    def _run(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=300,
        )

    def test_container_archive_inspect_read_range(self, tmp_path):
        payload = b"0123456789abcdef" * 512
        payload_path = tmp_path / "payload.bin"
        payload_path.write_bytes(payload)
        target = tmp_path / "backup.ule"

        proc = self._run(
            "archive", "-i", str(payload_path), "-o", str(target),
            "--store", "container", "--media", "test", "--segment-size", "2048",
            "--json",
        )
        assert proc.returncode == 0, proc.stderr
        summary = json.loads(proc.stdout)
        assert summary["store"] == "container"
        assert summary["format_version"] == 4
        assert summary["generation"] == 0
        assert target.is_file()

        proc = self._run("inspect", str(target), "--json")
        assert proc.returncode == 0, proc.stderr
        inspected = json.loads(proc.stdout)
        assert inspected["format_version"] == 4
        assert inspected["config"]["segment_size"] == 2048
        assert all(len(seg["sha256"]) == 64 for seg in inspected["segments"])

        out = tmp_path / "slice.bin"
        proc = self._run(
            "restore", "-i", str(target), "-o", str(out),
            "--offset", "3000", "--length", "1000", "--json",
        )
        assert proc.returncode == 0, proc.stderr
        partial = json.loads(proc.stdout)
        assert out.read_bytes() == payload[3000:4000]
        assert partial["segments_decoded"] < partial["segments_total"]

    def test_verify_repair_on_directory_target_fails_cleanly(self, tmp_path):
        """--repair only makes sense for containers; a directory target gets
        one clean error line and exit code 2, not a traceback."""
        payload_path = tmp_path / "payload.bin"
        payload_path.write_bytes(b"directory repair probe " * 100)
        target = tmp_path / "arch-dir"
        proc = self._run(
            "archive", "-i", str(payload_path), "-o", str(target), "--media", "test",
        )
        assert proc.returncode == 0, proc.stderr
        proc = self._run("verify", str(target), "--repair")
        assert proc.returncode == 2
        assert "--repair only applies to container archives" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_inspect_surfaces_a_scan_recovered_index(self, tmp_path):
        payload_path = tmp_path / "payload.bin"
        payload_path.write_bytes(b"recovered index probe " * 120)
        target = tmp_path / "backup.ule"
        proc = self._run(
            "archive", "-i", str(payload_path), "-o", str(target),
            "--store", "container", "--media", "test",
        )
        assert proc.returncode == 0, proc.stderr

        proc = self._run("inspect", str(target), "--json")
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout)["index"] == "ok"

        data = bytearray(target.read_bytes())
        data[-4] ^= 0xFF  # damage the trailer's index magic
        target.write_bytes(bytes(data))
        proc = self._run("inspect", str(target), "--json")
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout)["index"] == "recovered-by-scan"

        proc = self._run("inspect", str(target))
        assert proc.returncode == 0, proc.stderr
        assert "index: recovered-by-scan" in proc.stdout

    def test_mem_target_infers_the_memory_backend(self, tmp_path):
        payload_path = tmp_path / "p.bin"
        payload_path.write_bytes(b"x" * 256)
        proc = self._run(
            "archive", "-i", str(payload_path), "-o", "mem:cli-infer",
            "--media", "test", "--json",
        )
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout)["store"] == "memory"
        assert not (REPO_ROOT / "mem:cli-infer").exists()
