"""Tests for the miniature relational engine, SQL dump/load and TPC-H generator."""

import pytest

from repro.errors import SchemaError, SQLDumpError
from repro.dbms import (
    Column,
    ColumnType,
    Database,
    Table,
    db_dump,
    db_load,
    generate_tpch,
    tpch_archive_of_size,
)
from repro.dbms.dump import dump_roundtrip_equal


def sample_table():
    table = Table(
        name="people",
        columns=[
            Column("id", ColumnType.INTEGER),
            Column("name", ColumnType.VARCHAR),
            Column("balance", ColumnType.DECIMAL),
            Column("joined", ColumnType.DATE),
        ],
    )
    table.insert((1, "Ada O'Hara", "12.50", "1995-03-17"))
    table.insert((2, "Grace", "-3.25", "1997-11-02"))
    return table


class TestEngine:
    def test_insert_and_scan(self):
        table = sample_table()
        assert table.row_count == 2
        assert list(table.scan())[0][1] == "Ada O'Hara"

    def test_schema_validation(self):
        table = sample_table()
        with pytest.raises(SchemaError):
            table.insert(("three", "bad id", "1.00", "2000-01-01"))
        with pytest.raises(SchemaError):
            table.insert((3, "ok", "1.0", "2000-01-01"))      # bad decimal format
        with pytest.raises(SchemaError):
            table.insert((3, "ok", "1.00", "Jan 1 2000"))     # bad date format
        with pytest.raises(SchemaError):
            table.insert((3, "line\nbreak", "1.00", "2000-01-01"))
        with pytest.raises(SchemaError):
            table.insert((3, "short row"))

    def test_select_and_aggregates(self):
        table = sample_table()
        assert table.select(lambda row: row[0] == 2)[0][1] == "Grace"
        assert table.sum("balance") == pytest.approx(9.25)
        assert table.column_values("id") == [1, 2]

    def test_database_operations(self):
        database = Database()
        database.add_table(sample_table())
        assert database.table("people").row_count == 2
        assert database.total_rows == 2
        with pytest.raises(SchemaError):
            database.add_table(sample_table())
        with pytest.raises(SchemaError):
            database.table("missing")


class TestDumpLoad:
    def test_roundtrip_preserves_everything(self):
        database = Database()
        database.add_table(sample_table())
        assert dump_roundtrip_equal(database)

    def test_quotes_are_escaped(self):
        database = Database()
        database.add_table(sample_table())
        dump = db_dump(database)
        assert "Ada O''Hara" in dump
        assert db_load(dump).table("people").rows[0][1] == "Ada O'Hara"

    def test_dump_is_pg_dump_style_text(self):
        database = Database()
        database.add_table(sample_table())
        dump = db_dump(database)
        assert "CREATE TABLE people" in dump
        assert dump.count("INSERT INTO people VALUES") == 2

    def test_load_rejects_archives_without_schema(self):
        with pytest.raises(SQLDumpError):
            db_load("INSERT INTO ghosts VALUES (1);")

    def test_load_rejects_wrong_arity(self):
        text = (
            "CREATE TABLE t (a INTEGER, b INTEGER);\n"
            "INSERT INTO t VALUES (1);\n"
        )
        with pytest.raises(SQLDumpError):
            db_load(text)


class TestTPCH:
    def test_eight_tables_with_spec_ratios(self):
        database = generate_tpch(0.001)
        assert set(database.table_names) == {
            "region", "nation", "supplier", "customer", "part", "partsupp",
            "orders", "lineitem",
        }
        assert database.table("region").row_count == 5
        assert database.table("nation").row_count == 25
        assert database.table("lineitem").row_count == 4 * database.table("orders").row_count

    def test_generation_is_deterministic(self):
        assert generate_tpch(0.0001, seed=3) == generate_tpch(0.0001, seed=3)

    def test_dump_load_roundtrip(self):
        database = generate_tpch(0.0002)
        assert db_load(db_dump(database)) == database

    def test_archive_of_target_size(self):
        """The paper tunes the scale factor to a ~1.2 MB archive; we automate that."""
        _, dump = tpch_archive_of_size(300_000)
        assert 0.8 * 300_000 <= len(dump) <= 1.2 * 300_000

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            generate_tpch(0)
