"""Tests for the shared utility layer (bit streams, CRC, RNG)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.bits import BitReader, BitWriter, bits_to_bytes, bytes_to_bits
from repro.util.crc import crc32_of
from repro.util.rng import deterministic_rng


class TestBitWriter:
    def test_single_bits_pack_msb_first(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 1):
            writer.write_bit(bit)
        assert writer.to_bytes() == b"\xb0"

    def test_write_bits_takes_low_order_bits(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        writer.write_bits(0b1, 1)
        assert writer.to_bytes() == b"\xb0"

    def test_write_bytes_roundtrip(self):
        writer = BitWriter()
        writer.write_bytes(b"\x12\x34")
        assert writer.to_bytes() == b"\x12\x34"

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(1, -1)

    def test_length_counts_bits(self):
        writer = BitWriter()
        writer.write_bits(0xFF, 5)
        assert len(writer) == 5


class TestBitReader:
    def test_reads_back_what_writer_wrote(self):
        writer = BitWriter()
        writer.write_bits(0x2AB, 10)
        reader = BitReader(writer.to_bitarray())
        assert reader.read_bits(10) == 0x2AB

    def test_exhaustion_raises_eof(self):
        reader = BitReader(b"\x00")
        reader.read_bits(8)
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_remaining_and_position(self):
        reader = BitReader(b"\xff\x00")
        reader.read_bits(3)
        assert reader.position == 3
        assert reader.remaining == 13

    def test_read_bytes(self):
        assert BitReader(b"\xde\xad").read_bytes(2) == b"\xde\xad"


class TestBitConversions:
    def test_bytes_to_bits_msb_first(self):
        assert bytes_to_bits(b"\xf0").tolist() == [1, 1, 1, 1, 0, 0, 0, 0]

    def test_bits_to_bytes_pads_with_zeros(self):
        assert bits_to_bytes(np.array([1, 1, 1, 1], dtype=np.uint8)) == b"\xf0"

    def test_empty_inputs(self):
        assert bytes_to_bits(b"").size == 0
        assert bits_to_bytes(np.zeros(0, dtype=np.uint8)) == b""

    @given(st.binary(max_size=200))
    def test_roundtrip_property(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data


class TestCRC:
    def test_known_value(self):
        assert crc32_of(b"123456789") == 0xCBF43926

    def test_detects_change(self):
        assert crc32_of(b"hello") != crc32_of(b"hellp")

    def test_unsigned_range(self):
        assert 0 <= crc32_of(b"\xff" * 64) <= 0xFFFFFFFF


class TestDeterministicRNG:
    def test_same_seed_same_stream(self):
        a = deterministic_rng(5).integers(0, 1000, size=10)
        b = deterministic_rng(5).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_none_seed_is_still_deterministic(self):
        a = deterministic_rng(None).integers(0, 1000, size=10)
        b = deterministic_rng(None).integers(0, 1000, size=10)
        assert np.array_equal(a, b)
