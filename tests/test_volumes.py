"""Sharded volume sets: striping, cross-shard parity, and degraded reads.

The ``volumes`` backend stripes segment frames across K data volumes and
writes M Reed–Solomon parity volumes; these tests pin the recovery
contract from the outside, through ``open_archive`` / ``open_restore``:

* healthy reads are byte-identical to a single-volume archive;
* any ≤ M whole-volume losses — and silent on-media corruption, which is
  treated as an erasure — restore byte-identically, for the full payload
  AND for boundary-spanning ``read_range`` windows;
* ``verify`` reports the damage even while reads still succeed;
* more than M losses fail with a clean :class:`StoreError` naming the
  missing members;
* append sessions stripe new generations consistently, and degraded
  reads span generations.

A hypothesis fault matrix drives random payloads through random (K, M)
geometries and random loss subsets; a deterministic K=4, M=2 suite pins
the acceptance scenario exactly.
"""

from __future__ import annotations

import itertools
import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import ArchiveConfig, open_archive, open_restore
from repro.errors import StoreError


def vol_uri(root: Path, total: int, *, k: int, m: int, stripe: int = 1) -> str:
    """A ``vol:`` target URI over ``total`` directory members under ``root``."""
    members = ",".join(str(root / f"vol{index}") for index in range(total))
    return f"vol:k={k},m={m},stripe={stripe}:{members}"


def kill_volumes(root: Path, indices) -> list[str]:
    """Delete whole member volumes, returning the paths removed."""
    removed = []
    for index in indices:
        member = root / f"vol{index}"
        shutil.rmtree(member)
        removed.append(str(member))
    return removed


def write_volume_archive(uri: str, payload: bytes, *, segment_size=1024, **overrides):
    config = ArchiveConfig(media="test", codec="portable",
                           segment_size=segment_size, **overrides)
    with open_archive(config, target=uri) as writer:
        writer.write(payload)
    return writer.config


# --------------------------------------------------------------------------- #
# The acceptance scenario: K=4, M=2, any two volumes lost
# --------------------------------------------------------------------------- #
class TestAcceptanceK4M2:
    K, M = 4, 2

    @pytest.fixture()
    def archived(self, tmp_path, make_payload):
        payload = make_payload(6_000, seed=91)
        uri = vol_uri(tmp_path, self.K + self.M, k=self.K, m=self.M)
        write_volume_archive(uri, payload)
        return uri, payload

    def test_healthy_roundtrip_and_clean_verify(self, archived):
        uri, payload = archived
        with open_restore(uri) as reader:
            assert reader.read().payload == payload
            assert reader.read_range(1_500, 1_000) == payload[1_500:2_500]
            report = reader.verify(deep=True)
        assert report.ok, report.errors

    @pytest.mark.parametrize("lost", [(0, 1), (0, 5), (3, 4), (4, 5)])
    def test_any_two_losses_read_byte_identical(self, archived, tmp_path, lost):
        uri, payload = archived
        removed = kill_volumes(tmp_path, lost)
        with open_restore(uri) as reader:
            report = reader.verify(deep=True)
            assert not report.ok  # the damage is reported...
            joined = "\n".join(report.errors)
            for member in removed:
                assert member in joined  # ...naming each lost member
            # ...while reads stay byte-identical, full and partial alike.
            assert reader.read().payload == payload
            # A window spanning a segment boundary exercises multi-stripe
            # reconstruction on the partial-restore path.
            assert reader.read_range(900, 300) == payload[900:1_200]
            assert reader.read_range(0, len(payload)) == payload

    def test_more_than_m_losses_fail_cleanly(self, archived, tmp_path):
        uri, _ = archived
        removed = kill_volumes(tmp_path, (1, 2, 4))
        with pytest.raises(StoreError) as excinfo:
            open_restore(uri)
        message = str(excinfo.value)
        assert "3 of 6 volumes are unavailable" in message
        for member in removed:
            assert member in message
        assert "at most 2 losses are recoverable" in message

    def test_degraded_append_is_refused(self, archived, tmp_path, make_payload):
        uri, _ = archived
        kill_volumes(tmp_path, (0,))
        with pytest.raises(StoreError, match="append needs every member volume"):
            with open_archive(target=uri, append=True) as writer:
                writer.write(make_payload(500, seed=92))


# --------------------------------------------------------------------------- #
# Corruption is an erasure: SHA-256 mismatches trigger reconstruction
# --------------------------------------------------------------------------- #
class TestCorruption:
    def test_corrupt_frames_reconstruct_and_deep_verify_reports(
        self, tmp_path, make_payload
    ):
        payload = make_payload(5_000, seed=93)
        uri = vol_uri(tmp_path, 4, k=3, m=1, stripe=2)
        write_volume_archive(uri, payload)
        # Flip bytes in every frame stored on one data volume.
        frames = sorted((tmp_path / "vol1").glob("*_emblem_*.pgm"))
        assert frames
        for frame in frames:
            blob = bytearray(frame.read_bytes())
            blob[len(blob) // 2] ^= 0xFF
            frame.write_bytes(bytes(blob))
        with open_restore(uri) as reader:
            assert reader.read().payload == payload
            assert reader.read_range(2_000, 1_500) == payload[2_000:3_500]
            report = reader.verify(deep=True)
        assert not report.ok
        assert any("corrupt" in error for error in report.errors)

    def test_corruption_beyond_parity_budget_fails_loudly(
        self, tmp_path, make_payload
    ):
        payload = make_payload(4_000, seed=94)
        uri = vol_uri(tmp_path, 3, k=2, m=1)
        write_volume_archive(uri, payload)
        # Corrupt the same stripe on two volumes: one loss over budget.
        for member in ("vol0", "vol1"):
            for frame in sorted((tmp_path / member).glob("data_emblem_*.pgm"))[:1]:
                blob = bytearray(frame.read_bytes())
                blob[-40] ^= 0xFF
                frame.write_bytes(bytes(blob))
        with open_restore(uri) as reader:
            with pytest.raises(StoreError):
                reader.read()


# --------------------------------------------------------------------------- #
# Degraded reads repair each stripe once, however many frames need it
# --------------------------------------------------------------------------- #
class TestSingleFlightRepair:
    def test_degraded_read_repairs_each_stripe_exactly_once(
        self, tmp_path, make_payload, monkeypatch
    ):
        """A degraded ``get_frames`` fans frames of the same stripe across the
        fetch pool concurrently; without the single-flight guard each of them
        would redo the whole reconstruction (the measured ~2x redundant work
        behind the degraded-read penalty)."""
        from repro.store import volumes as volumes_mod

        payload = make_payload(12_000, seed=95)
        uri = vol_uri(tmp_path, 6, k=4, m=2, stripe=2)
        write_volume_archive(uri, payload)
        kill_volumes(tmp_path, [0, 1])

        repairs: list[int] = []
        original = volumes_mod._VolumeSetSource._repair_stripe

        def counting(self, stripe_at):
            repairs.append(stripe_at)
            return original(self, stripe_at)

        monkeypatch.setattr(volumes_mod._VolumeSetSource, "_repair_stripe", counting)
        with open_restore(uri) as reader:
            assert reader.read().payload == payload
        assert repairs, "a 2-of-6 loss must force stripe repairs"
        assert len(repairs) == len(set(repairs)), (
            f"stripes repaired more than once: {sorted(repairs)}"
        )


# --------------------------------------------------------------------------- #
# Append sessions stripe new generations consistently
# --------------------------------------------------------------------------- #
class TestAppend:
    def test_append_then_degraded_restore_spans_generations(
        self, tmp_path, make_payload
    ):
        first = make_payload(3_000, seed=95)
        tail = make_payload(2_500, seed=96)
        uri = vol_uri(tmp_path, 5, k=3, m=2, stripe=2)
        write_volume_archive(uri, first)
        with open_archive(target=uri, append=True) as writer:
            writer.write(tail)
        combined = first + tail
        with open_restore(uri) as reader:
            assert reader.read().payload == combined
        # Lose two volumes: both generations must reconstruct.
        kill_volumes(tmp_path, (1, 3))
        with open_restore(uri) as reader:
            assert reader.read().payload == combined
            boundary = len(first)
            assert (
                reader.read_range(boundary - 400, 800)
                == combined[boundary - 400:boundary + 400]
            )
            assert not reader.verify(deep=True).ok


# --------------------------------------------------------------------------- #
# The hypothesis fault matrix
# --------------------------------------------------------------------------- #
GEOMETRIES = [(2, 1), (3, 2), (4, 2)]


@st.composite
def fault_cases(draw):
    """(payload, K, M, loss subset, corrupt?) — damage never exceeds M."""
    k, m = draw(st.sampled_from(GEOMETRIES))
    payload = draw(st.binary(min_size=64, max_size=2_000))
    budget = draw(st.integers(min_value=0, max_value=m))
    losses = draw(
        st.lists(
            st.integers(min_value=0, max_value=k + m - 1),
            min_size=budget, max_size=budget, unique=True,
        )
    )
    corrupt_instead = draw(st.booleans())
    return payload, k, m, tuple(losses), corrupt_instead


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(case=fault_cases())
def test_fault_matrix_restores_byte_identical(case):
    payload, k, m, losses, corrupt_instead = case
    with tempfile.TemporaryDirectory() as scratch:
        root = Path(scratch)
        uri = vol_uri(root, k + m, k=k, m=m)
        write_volume_archive(uri, payload, segment_size=512)
        if corrupt_instead:
            # Damage the members in place instead of deleting them whole.
            for index in losses:
                for record in sorted((root / f"vol{index}").glob("*emblem*")):
                    blob = bytearray(record.read_bytes())
                    blob[len(blob) // 3] ^= 0x55
                    record.write_bytes(bytes(blob))
        else:
            kill_volumes(root, losses)
        with open_restore(uri) as reader:
            assert reader.read().payload == payload
            if len(payload) >= 4:
                quarter = len(payload) // 4
                assert (
                    reader.read_range(quarter, 2 * quarter)
                    == payload[quarter:3 * quarter]
                )
            report = reader.verify(deep=True)
            if losses and not corrupt_instead:
                assert not report.ok


@settings(max_examples=4, deadline=None)
@given(
    geometry=st.sampled_from(GEOMETRIES),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_losses_beyond_parity_fail_with_named_members(geometry, seed):
    k, m = geometry
    with tempfile.TemporaryDirectory() as scratch:
        root = Path(scratch)
        uri = vol_uri(root, k + m, k=k, m=m)
        write_volume_archive(uri, bytes([seed % 256]) * 256, segment_size=512)
        lost = kill_volumes(root, range(m + 1))
        with pytest.raises(StoreError) as excinfo:
            open_restore(uri)
        message = str(excinfo.value)
        for member in lost:
            assert member in message
        assert f"at most {m} losses are recoverable" in message


# --------------------------------------------------------------------------- #
# Mixed member backends and the registry surface
# --------------------------------------------------------------------------- #
class TestSurface:
    def test_mixed_member_backends_roundtrip(self, tmp_path, make_payload):
        payload = make_payload(3_000, seed=97)
        members = ",".join([
            f"dir:{tmp_path / 'a'}",
            f"file:{tmp_path / 'b.ule'}",
            f"mem:volset-{tmp_path.name}",
            f"dir:{tmp_path / 'd'}",
        ])
        uri = f"vol:k=3,m=1:{members}"
        write_volume_archive(uri, payload)
        with open_restore(uri) as reader:
            assert reader.read().payload == payload
            assert reader.verify(deep=True).ok

    def test_members_must_be_listed_in_original_order(self, tmp_path, make_payload):
        payload = make_payload(1_500, seed=98)
        uri = vol_uri(tmp_path, 3, k=2, m=1)
        write_volume_archive(uri, payload)
        shuffled = ",".join(
            str(tmp_path / f"vol{index}") for index in (1, 0, 2)
        )
        with pytest.raises(StoreError, match="original order"):
            open_restore(f"vol:k=2,m=1:{shuffled}")

    def test_config_defaults_supply_geometry(self, tmp_path, make_payload):
        payload = make_payload(2_000, seed=99)
        members = ",".join(str(tmp_path / f"vol{index}") for index in range(4))
        config = ArchiveConfig(media="test", segment_size=1024,
                               volume_parity=2, volume_stripe=1)
        with open_archive(config, target=f"vol:{members}") as writer:
            writer.write(payload)
        kill_volumes(tmp_path, (0, 3))
        with open_restore(f"vol:{members}") as reader:
            assert reader.read().payload == payload
