"""Tests for DBCoder: LZSS, arithmetic coding, container format and profiles."""

import lzma
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ContainerFormatError, DecompressionError
from repro.dbcoder import (
    DBCoder,
    Profile,
    arithmetic_decode,
    arithmetic_encode,
    lzss_compress,
    lzss_decompress,
    pack_container,
    unpack_container,
)


class TestLZSS:
    def test_roundtrip_text(self, sql_sample):
        assert lzss_decompress(lzss_compress(sql_sample)) == sql_sample

    def test_compresses_repetitive_data(self, sql_sample):
        assert len(lzss_compress(sql_sample)) < len(sql_sample) / 2

    def test_empty_input(self):
        assert lzss_compress(b"") == b""
        assert lzss_decompress(b"") == b""

    def test_incompressible_data_grows_bounded(self, rng):
        data = bytes(rng.integers(0, 256, size=1000, dtype="uint8"))
        compressed = lzss_compress(data)
        assert lzss_decompress(compressed) == data
        assert len(compressed) <= len(data) * 9 // 8 + 2

    def test_corrupt_offset_detected(self):
        # A match token referencing history that does not exist.
        stream = bytes([0b00000000, 0xFF, 0x0F])
        with pytest.raises(DecompressionError):
            lzss_decompress(stream)

    @given(st.binary(max_size=2000))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data):
        assert lzss_decompress(lzss_compress(data)) == data

    @given(st.binary(max_size=600))
    @settings(max_examples=40, deadline=None)
    def test_hash_chain_matches_reference_matcher(self, data):
        """The greedy hash-chain parse emits what the exhaustive matcher would.

        With an unbound chain both searches consider every window candidate
        and share the newest-candidate tie-break, so the streams must be
        byte-identical (the production MAX_CHAIN cap may diverge — only on
        inputs where a 3-byte prefix repeats > MAX_CHAIN times in-window).
        ``lazy=False`` pins the greedy parse; the default lazy parse is
        covered by :class:`TestLazyMatching`.
        """
        from repro.dbcoder.lz77 import MAX_MATCH, MIN_MATCH, _find_longest_match

        reference = bytearray()
        flags = 0
        flag_count = 0
        group = bytearray()
        pos = 0
        while pos < len(data):
            limit = min(MAX_MATCH, len(data) - pos)
            offset, length = (0, 0)
            if limit >= MIN_MATCH:
                offset, length = _find_longest_match(data, pos, limit)
            if length >= MIN_MATCH:
                group.append(offset & 0xFF)
                group.append(((offset >> 8) << 4) | (length - MIN_MATCH))
                pos += length
            else:
                flags |= 1 << flag_count
                group.append(data[pos])
                pos += 1
            flag_count += 1
            if flag_count == 8:
                reference.append(flags)
                reference.extend(group)
                flags = flag_count = 0
                group = bytearray()
        if flag_count:
            reference.append(flags)
            reference.extend(group)
        assert lzss_compress(data, max_chain=1 << 30, lazy=False) == bytes(reference)

    @given(st.binary(max_size=2000))
    @settings(max_examples=40, deadline=None)
    def test_lazy_parse_roundtrips(self, data):
        """The lazy parse always decodes back to the original bytes."""
        assert lzss_decompress(lzss_compress(data, lazy=True)) == data

    def test_lazy_parse_beats_greedy_on_text(self, sql_sample):
        """One-token lookahead must not lose ratio on a realistic payload."""
        payload = sql_sample * 4
        lazy = lzss_compress(payload, lazy=True)
        greedy = lzss_compress(payload, lazy=False)
        assert len(lazy) <= len(greedy)
        assert lzss_decompress(lazy) == payload

    def test_lazy_defers_to_a_longer_match(self):
        """A constructed input where greedy takes a 3-byte match but a
        4-byte match starts one byte later; lazy emits the literal and
        keeps the longer match, saving a token."""
        data = b"abc" + b"bcde" + b"xx" + b"abcde"
        lazy = lzss_compress(data, lazy=True)
        greedy = lzss_compress(data, lazy=False)
        assert lzss_decompress(lazy) == data
        assert lzss_decompress(greedy) == data
        # Strict: the deferral must actually fire and save a token here.
        assert len(lazy) < len(greedy)


class TestVectorisedScan:
    """The numpy candidate scan must stay bit-identical to the reference.

    ``lzss_compress`` precomputes the hash chains with an argsort and hands
    long rejection streaks to a batched tail scan; ``_lzss_compress_reference``
    is the incremental dict-filed implementation it was derived from.  Any
    divergence — under any (max_chain, lazy) combination — is a bug, because
    archives written by one build must reproduce bit-exactly under another.
    """

    @given(st.binary(max_size=2500))
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_to_reference(self, data):
        from repro.dbcoder.lz77 import _lzss_compress_reference

        for max_chain in (0, 1, 8, 128):
            for lazy in (False, True):
                got = lzss_compress(data, max_chain=max_chain, lazy=lazy)
                want = _lzss_compress_reference(data, max_chain=max_chain, lazy=lazy)
                assert got == want, (max_chain, lazy)
                assert lzss_decompress(got) == data

    def test_bit_identical_on_realistic_text(self, sql_sample):
        from repro.dbcoder.lz77 import _lzss_compress_reference

        payload = sql_sample * 3
        for lazy in (False, True):
            assert lzss_compress(payload, lazy=lazy) == _lzss_compress_reference(
                payload, lazy=lazy
            )

    @pytest.mark.parametrize("lazy", [False, True])
    @pytest.mark.parametrize("max_chain", [0, 1])
    def test_tiny_chain_budgets_roundtrip(self, sql_sample, max_chain, lazy):
        """max_chain 0 (literal-only) and 1 (single-candidate) stay lossless."""
        payload = sql_sample[:3000]
        compressed = lzss_compress(payload, max_chain=max_chain, lazy=lazy)
        assert lzss_decompress(compressed) == payload

    @pytest.mark.parametrize("lazy", [False, True])
    def test_max_chain_zero_is_literal_only(self, sql_sample, lazy):
        """A zero chain budget disables matching entirely, in both parses.

        Literal-only LZSS is exactly 1 flag byte per 8 literals, so the
        output length is fully determined — and identical for the lazy and
        greedy parses, which only differ in how they *choose* matches.
        """
        payload = sql_sample[:2000]
        compressed = lzss_compress(payload, max_chain=0, lazy=lazy)
        assert len(compressed) == len(payload) + -(-len(payload) // 8)
        assert lzss_decompress(compressed) == payload


class TestArithmeticCoder:
    def test_roundtrip_text(self, sql_sample):
        encoded = arithmetic_encode(sql_sample)
        assert arithmetic_decode(encoded) == sql_sample
        assert len(encoded) < len(sql_sample)

    def test_empty_input(self):
        assert arithmetic_decode(arithmetic_encode(b"")) == b""

    def test_highly_skewed_data_compresses_well(self):
        data = b"\x00" * 5000 + b"\x01"
        assert len(arithmetic_encode(data)) < 200

    def test_truncated_stream_detected(self, rng):
        data = bytes(rng.integers(0, 256, size=600, dtype="uint8"))
        encoded = arithmetic_encode(data)
        with pytest.raises(DecompressionError):
            arithmetic_decode(encoded[: len(encoded) // 2])

    @given(st.binary(max_size=600))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, data):
        assert arithmetic_decode(arithmetic_encode(data)) == data


class TestContainer:
    def test_roundtrip(self):
        container = pack_container(2, b"original", b"payload")
        header, payload = unpack_container(container)
        assert header.profile_id == 2
        assert header.original_length == 8
        assert payload == b"payload"

    def test_bad_magic_rejected(self):
        with pytest.raises(ContainerFormatError):
            unpack_container(b"XXXX" + b"\x00" * 20)

    def test_truncated_rejected(self):
        with pytest.raises(ContainerFormatError):
            unpack_container(b"UL")

    def test_payload_length_mismatch_rejected(self):
        container = pack_container(1, b"abc", b"payload")
        with pytest.raises(ContainerFormatError):
            unpack_container(container[:-2])


class TestDBCoderProfiles:
    @pytest.mark.parametrize("profile", list(Profile))
    def test_roundtrip_every_profile(self, profile, sql_sample):
        coder = DBCoder(profile)
        assert coder.decode(coder.encode(sql_sample)) == sql_sample

    def test_dense_beats_portable_beats_store(self, sql_sample):
        sizes = {
            profile: len(DBCoder(profile).encode(sql_sample)) for profile in Profile
        }
        assert sizes[Profile.DENSE] < sizes[Profile.PORTABLE] < sizes[Profile.STORE]

    def test_dense_profile_is_lzma_class(self, sql_sample):
        """The paper claims compression 'close to 7-Zip's LZMA'."""
        dense = len(DBCoder(Profile.DENSE).encode(sql_sample))
        lzma_size = len(lzma.compress(sql_sample, preset=6))
        zlib_size = len(zlib.compress(sql_sample, 6))
        assert dense < len(sql_sample) / 2
        assert dense < zlib_size * 1.6          # same class as deflate or better
        assert dense < lzma_size * 2.5          # within striking distance of LZMA

    def test_decode_detects_corruption(self, sql_sample):
        coder = DBCoder(Profile.PORTABLE)
        container = bytearray(coder.encode(sql_sample))
        container[40] ^= 0xFF
        with pytest.raises(DecompressionError):
            coder.decode(bytes(container))

    def test_report_statistics(self, sql_sample):
        report = DBCoder(Profile.PORTABLE).report(sql_sample)
        assert report.original_bytes == len(sql_sample)
        assert report.ratio > 1.0

    @given(st.binary(max_size=1500))
    @settings(max_examples=25, deadline=None)
    def test_any_bytes_survive_portable_roundtrip(self, data):
        coder = DBCoder(Profile.PORTABLE)
        assert coder.decode(coder.encode(data)) == data
