"""Tests for the baselines (QR-style barcode, DBMS-stack emulation model)."""

import numpy as np
import pytest

from repro.errors import EmblemDetectionError, EmblemFormatError
from repro.baselines import BarcodeSpec, SimpleBarcode, StackEmulationBaseline
from repro.baselines.stack_emulation import ule_decoder_footprint
from repro.media.distortions import DistortionProfile


class TestSimpleBarcode:
    def test_capacity_is_a_few_kilobytes(self):
        """§3.1: 2-D barcodes 'store a few kilobytes of information at best'."""
        spec = BarcodeSpec()
        assert 2000 < spec.payload_capacity < 4000

    def test_roundtrip_pristine(self, rng):
        barcode = SimpleBarcode()
        payload = bytes(rng.integers(0, 256, size=1500, dtype=np.uint8))
        assert barcode.decode(barcode.encode(payload)) == payload

    def test_oversized_payload_rejected(self):
        with pytest.raises(EmblemFormatError):
            SimpleBarcode().encode(b"x" * 10_000)

    def test_no_error_correction_means_noise_kills_it(self, rng):
        """Unlike emblems, the baseline only detects damage; it cannot correct."""
        barcode = SimpleBarcode()
        payload = bytes(rng.integers(0, 256, size=1000, dtype=np.uint8))
        image = barcode.encode(payload)
        harsh = DistortionProfile(dust_spots=60, dust_max_radius=4, seed=2)
        with pytest.raises(EmblemDetectionError):
            barcode.decode(harsh.apply(image))

    def test_small_spec_rejected(self):
        with pytest.raises(EmblemFormatError):
            BarcodeSpec(modules=10)


class TestStackEmulationBaseline:
    def test_stack_is_gigabytes(self):
        baseline = StackEmulationBaseline()
        assert baseline.stack_bytes > 1e9

    def test_overhead_factor_for_a_megabyte_archive(self):
        baseline = StackEmulationBaseline()
        assert baseline.overhead_factor(1_200_000) > 1000

    def test_ule_footprint_is_kilobytes(self):
        footprint = ule_decoder_footprint(bootstrap_text_bytes=60_000,
                                          system_emblem_payload_bytes=300)
        assert footprint < 100_000

    def test_invalid_archive_size(self):
        with pytest.raises(ValueError):
            StackEmulationBaseline().overhead_factor(0)
