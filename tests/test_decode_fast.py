"""Bit-identity proofs for the vectorised decode hot paths.

Every fast path added by the decode-throughput work keeps its reference
implementation in the tree; this suite pins them together with hypothesis:

- ``decode_image_batch`` vs per-image ``Emblem.from_image`` across a grid of
  scan damage (pixel flips, blanks, noise, truncation, wrong rank);
- ``deinterleave_blocks_batch`` vs the per-stream ``deinterleave_blocks``;
- ``decode_blocks`` with precomputed syndromes / the clean-frame skip vs the
  ``_decode_blocks_reference`` corrector;
- the vectorised GF(256) matrix product vs its row-at-a-time reference, and
  volume-style ``reconstruct_group`` erasures over it;
- ``_band_centers_rows`` vs ``EmblemSampler._band_centers``;
- ``_otsu_threshold_stack`` vs ``otsu_threshold``;
- the Bootstrap letter codec vs its per-character loops;
- the ``chunk_bounds`` minimum-chunk floor and serial/chunked decode equality.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bootstrap.letters import (
    _bytes_to_letters_reference,
    _letters_to_bytes_reference,
    bytes_to_letters,
    format_letter_pages,
    letters_to_bytes,
)
from repro.errors import LetterCodecError, MOCoderError
from repro.mocoder import Emblem, EmblemKind, MOCoder
from repro.mocoder.emblem import (
    _band_centers_rows,
    _otsu_threshold_stack,
    EmblemSampler,
    build_emblem,
    decode_image_batch,
    otsu_threshold,
)
from repro.mocoder.interleave import deinterleave_blocks, deinterleave_blocks_batch
from repro.mocoder.mocoder import MIN_DECODE_CHUNK, DecodeReport, chunk_bounds
from repro.mocoder.outer_code import (
    OuterCode,
    _gf_matrix_multiply,
    _gf_matrix_multiply_reference,
)
from repro.mocoder.reed_solomon import get_code
from repro.core.profiles import get_profile

SPEC = get_profile("test").spec


def _scan(rng, index=0, pad=0):
    payload = rng.integers(0, 256, size=SPEC.payload_capacity, dtype=np.uint8).tobytes()
    emblem = build_emblem(
        SPEC, EmblemKind.DATA, index, 64, index // 17, index % 17, payload, 64, 1
    )
    image = emblem.to_image().astype(np.uint8)
    if pad:
        canvas = np.full(
            (image.shape[0] + 2 * pad, image.shape[1] + 2 * pad), 255, dtype=np.uint8
        )
        canvas[pad:-pad, pad:-pad] = image
        image = canvas
    return image


def _reference_outcome(image):
    try:
        return Emblem.from_image(SPEC, image)
    except MOCoderError as error:
        return (type(error), str(error))


def _assert_batch_matches_reference(images):
    outcomes = decode_image_batch(SPEC, images)
    assert len(outcomes) == len(images)
    for index, (image, outcome) in enumerate(zip(images, outcomes)):
        reference = _reference_outcome(image)
        if isinstance(reference, tuple) and isinstance(reference[0], type):
            assert isinstance(outcome, MOCoderError), f"image {index}"
            assert (type(outcome), str(outcome)) == reference, f"image {index}"
        else:
            emblem, corrections = reference
            got_emblem, got_corrections = outcome
            assert got_emblem.header == emblem.header, f"image {index}"
            assert got_emblem.payload == emblem.payload, f"image {index}"
            assert got_corrections == corrections, f"image {index}"


class TestBatchDecodeBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_damage_grid(self, data):
        """Batched decode == per-image decode, damaged scans included."""
        seed = data.draw(st.integers(0, 2**32 - 1))
        rng = np.random.default_rng(seed)
        count = data.draw(st.integers(2, 6))
        images = []
        for index in range(count):
            image = _scan(rng, index, pad=int(rng.integers(0, 5)))
            damage = data.draw(
                st.sampled_from(
                    ["clean", "flips", "heavy", "blank", "noise", "truncated"]
                )
            )
            if damage == "flips":
                spots = int(rng.integers(1, 30))
                ys = rng.integers(0, image.shape[0], size=spots)
                xs = rng.integers(0, image.shape[1], size=spots)
                image = image.copy()
                image[ys, xs] = 255 - image[ys, xs]
            elif damage == "heavy":
                image = image.copy()
                image[:: max(2, int(rng.integers(2, 6)))] = 0
            elif damage == "blank":
                image = np.full_like(image, int(rng.integers(0, 256)))
            elif damage == "noise":
                image = rng.integers(0, 256, size=image.shape, dtype=np.uint8)
            elif damage == "truncated":
                image = image[: max(1, image.shape[0] // 4)]
            images.append(image)
        _assert_batch_matches_reference(images)

    def test_wrong_rank_and_mixed_shapes(self, rng):
        images = [
            _scan(rng, 0),
            np.zeros((20, 20, 3), dtype=np.uint8),
            _scan(rng, 1, pad=3),
            np.zeros(64, dtype=np.uint8),
            _scan(rng, 2),
        ]
        _assert_batch_matches_reference(images)

    def test_non_uint8_dtype(self, rng):
        images = [_scan(rng, index).astype(np.float64) for index in range(3)]
        _assert_batch_matches_reference(images)


class TestDeinterleaveBatch:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(1, 8),
        st.integers(1, 48),
        st.integers(1, 6),
        st.integers(0, 2**32 - 1),
    )
    def test_matches_per_stream_reference(self, blocks, length, count, seed):
        rng = np.random.default_rng(seed)
        streams = rng.integers(0, 256, size=(count, blocks * length), dtype=np.uint8)
        batched = deinterleave_blocks_batch(streams, blocks, length)
        for row in range(count):
            reference = deinterleave_blocks(streams[row].tobytes(), blocks, length)
            assert np.array_equal(batched[row], reference)

    def test_rejects_short_streams(self):
        with pytest.raises(ValueError):
            deinterleave_blocks_batch(np.zeros((2, 5), dtype=np.uint8), 2, 3)


class TestCleanFrameSkip:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(0, 16))
    def test_decode_blocks_matches_reference_across_damage(self, seed, errors):
        """Precomputed-syndrome decode == reference BM/Chien/Forney corrector."""
        code = get_code(255, 223)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, size=(4, code.k), dtype=np.uint8).astype(np.int32)
        codewords = code.encode_blocks(data)
        damaged = codewords.copy()
        if errors:
            row = int(rng.integers(0, damaged.shape[0]))
            positions = rng.choice(code.n, size=errors, replace=False)
            damaged[row, positions] ^= rng.integers(1, 256, size=errors)
        syndromes = code.syndromes_blocks(damaged)
        reference_out, reference_fixed = code._decode_blocks_reference(damaged)
        fast_out, fast_fixed = code.decode_blocks(damaged)
        precomputed_out, precomputed_fixed = code.decode_blocks(
            damaged, syndromes=syndromes
        )
        assert np.array_equal(fast_out, reference_out)
        assert fast_fixed == reference_fixed
        assert np.array_equal(precomputed_out, reference_out)
        assert precomputed_fixed == reference_fixed

    def test_rejects_wrong_syndrome_shape(self):
        code = get_code(255, 223)
        codewords = code.encode_blocks(np.zeros((2, code.k), dtype=np.int32))
        with pytest.raises(ValueError):
            code.decode_blocks(codewords, syndromes=np.zeros((3, code.parity)))


class TestStripeReconstruction:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(1, 6),
        st.integers(1, 6),
        st.integers(1, 200),
        st.integers(0, 2**32 - 1),
    )
    def test_gf_matrix_multiply_matches_reference(self, rows, inner, width, seed):
        rng = np.random.default_rng(seed)
        left = rng.integers(0, 256, size=(rows, inner)).astype(np.int32)
        right = rng.integers(0, 256, size=(inner, width)).astype(np.int32)
        assert np.array_equal(
            _gf_matrix_multiply(left, right),
            _gf_matrix_multiply_reference(left, right),
        )

    @pytest.mark.parametrize("data_shards,parity_shards", [(2, 1), (4, 2)])
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_reconstruct_group_erasures(self, data_shards, parity_shards, data):
        seed = data.draw(st.integers(0, 2**32 - 1))
        lost_count = data.draw(st.integers(1, parity_shards))
        rng = np.random.default_rng(seed)
        code = OuterCode(data_shards, parity_shards)
        payloads = [
            rng.integers(0, 256, size=int(rng.integers(1, 64)), dtype=np.uint8).tobytes()
            for _ in range(data_shards)
        ]
        parity = code.encode_group(payloads)
        length = max(len(payload) for payload in payloads)
        padded = [payload.ljust(length, b"\0") for payload in payloads]
        shards: list = padded + parity
        lost = rng.choice(code.total_shards, size=lost_count, replace=False)
        for index in lost:
            shards[index] = None
        recovered = code.reconstruct_group(shards, payload_length=length)
        assert recovered == padded


class TestSamplerHelpers:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 400), min_size=4, max_size=40),
            min_size=1,
            max_size=6,
        )
    )
    def test_band_centers_rows_matches_reference(self, profiles):
        width = max(len(profile) for profile in profiles)
        matrix = np.zeros((len(profiles), width), dtype=np.int64)
        for row, profile in enumerate(profiles):
            matrix[row, : len(profile)] = profile
        if not (matrix.max(axis=1) > 0).all():
            return  # callers guard rows with no ink before _band_centers_rows
        first, last = _band_centers_rows(matrix)
        for row in range(matrix.shape[0]):
            ref_first, ref_last = EmblemSampler._band_centers(matrix[row])
            assert first[row] == ref_first
            assert last[row] == ref_last

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 5), st.sampled_from(
        ["uniform", "bimodal", "constant", "two-values"]
    ))
    def test_otsu_stack_matches_reference(self, seed, count, kind):
        rng = np.random.default_rng(seed)
        shape = (count, int(rng.integers(1, 24)), int(rng.integers(1, 24)))
        if kind == "uniform":
            stack = rng.integers(0, 256, size=shape, dtype=np.uint8)
        elif kind == "bimodal":
            stack = np.where(
                rng.random(shape) < 0.5, np.uint8(12), np.uint8(240)
            ).astype(np.uint8)
        elif kind == "constant":
            stack = np.full(shape, int(rng.integers(0, 256)), dtype=np.uint8)
        else:
            low, high = rng.choice(256, size=2, replace=False)
            stack = np.where(
                rng.random(shape) < 0.9, np.uint8(low), np.uint8(high)
            ).astype(np.uint8)
        thresholds = _otsu_threshold_stack(stack)
        for index in range(count):
            assert thresholds[index] == otsu_threshold(stack[index])


class TestLetterCodec:
    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=300))
    def test_encode_matches_reference_and_round_trips(self, data):
        letters = bytes_to_letters(data)
        assert letters == _bytes_to_letters_reference(data)
        paged = "\n\n".join(format_letter_pages(letters))
        assert letters_to_bytes(paged) == data

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=120))
    def test_decode_matches_reference_on_arbitrary_text(self, text):
        try:
            fast = ("ok", letters_to_bytes(text))
        except LetterCodecError as error:
            fast = ("err", str(error))
        try:
            reference = ("ok", _letters_to_bytes_reference(text))
        except LetterCodecError as error:
            reference = ("err", str(error))
        assert fast == reference


class TestChunkFloor:
    def test_floor_collapses_small_counts_to_serial(self):
        # The benchmark smoke payload (287 frames) must stay one chunk: the
        # recorded decode_parallelism=2 slowdown came from splitting it.
        assert len(chunk_bounds(287, 2, min_chunk=MIN_DECODE_CHUNK)) == 1
        assert len(chunk_bounds(MIN_DECODE_CHUNK * 2 - 1, 2, min_chunk=MIN_DECODE_CHUNK)) == 1
        assert len(chunk_bounds(MIN_DECODE_CHUNK * 2, 2, min_chunk=MIN_DECODE_CHUNK)) == 2

    def test_floor_keeps_large_counts_parallel(self):
        bounds = chunk_bounds(MIN_DECODE_CHUNK * 4, 4, min_chunk=MIN_DECODE_CHUNK)
        assert len(bounds) == 4
        assert bounds[0] == (0, MIN_DECODE_CHUNK)
        assert bounds[-1][1] == MIN_DECODE_CHUNK * 4

    def test_bounds_cover_exactly(self):
        for count in (0, 1, 7, 159, 160, 161, 319, 320, 1000):
            for parts in (1, 2, 3, 8):
                bounds = chunk_bounds(count, parts, min_chunk=MIN_DECODE_CHUNK)
                flattened = [i for start, stop in bounds for i in range(start, stop)]
                assert flattened == list(range(count)), (count, parts)

    def test_parallel_decode_output_equals_serial(self, rng):
        coder = MOCoder(SPEC)
        payload = rng.integers(0, 256, size=SPEC.payload_capacity * 5, dtype=np.uint8).tobytes()
        stream = coder.encode(payload)
        images = [emblem.to_image().astype(np.uint8) for emblem in stream.emblems]
        serial_payload, serial_report = coder.decode(images, parallelism=1)
        floored_payload, floored_report = coder.decode(images, parallelism=2)
        assert floored_payload == serial_payload == payload
        assert floored_report.emblems_decoded == serial_report.emblems_decoded
        # Force real chunking (bypassing the floor) to pin byte-identity of
        # the chunked path itself, not just the floor's collapse to serial.
        report = DecodeReport(emblems_seen=len(images))
        bounds = chunk_bounds(len(images), 2, min_chunk=1)
        assert len(bounds) == 2
        decoded = coder._decode_images_parallel(images, report, 2, None, bounds)
        chunked_payload, chunked_report = coder.assemble(decoded, report)
        assert chunked_payload == serial_payload
        assert chunked_report.emblems_decoded == serial_report.emblems_decoded
