"""Shared fixtures for the test suite.

The archive-building helpers (``make_payload`` / ``write_archive`` /
``build_archive``) are session-scoped *factory* fixtures: they return plain
stateless callables, so hypothesis ``@given`` tests may use them without
tripping the function-scoped-fixture health check, and the store, channel
and append suites all build their archives the same way instead of each
re-declaring private module helpers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profiles import TEST_PROFILE
from repro.mocoder.emblem import EmblemSpec


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for test data."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_spec() -> EmblemSpec:
    """The small emblem spec used throughout the fast tests."""
    return TEST_PROFILE.spec


@pytest.fixture
def sql_sample() -> bytes:
    """A small, realistic SQL-archive-like payload."""
    lines = [
        "CREATE TABLE lineitem (l_orderkey INTEGER, l_comment VARCHAR(255));",
    ]
    for key in range(120):
        lines.append(
            f"INSERT INTO lineitem VALUES ({key}, 'carefully final deposits {key % 7}');"
        )
    return ("\n".join(lines) + "\n").encode("utf-8")


# --------------------------------------------------------------------------- #
# Archive-building factories (shared by the store / channel / append suites)
# --------------------------------------------------------------------------- #
def _make_payload(size: int, seed: int = 20210104) -> bytes:
    generator = np.random.default_rng(seed)
    return bytes(generator.integers(0, 256, size=size, dtype=np.uint8))


@pytest.fixture(scope="session")
def make_payload():
    """Factory: ``make_payload(size, seed=...)`` -> deterministic random bytes."""
    return _make_payload


@pytest.fixture(scope="session")
def write_archive():
    """Factory: archive ``payload`` onto a store target, returning the config.

    ``write_archive(target, payload, store=..., media=..., codec=...,
    segment_size=...)`` creates a fresh archive; ``append=True`` instead
    extends the existing archive at ``target`` (the target describes itself,
    exactly like ``open_archive(append=True)``).
    """
    from repro.api import ArchiveConfig, open_archive

    def _write(target, payload: bytes, *, store=None, media="test", codec="portable",
               segment_size=2048, append=False, **overrides) -> ArchiveConfig:
        if append:
            with open_archive(target=target, store=store, append=True,
                              **overrides) as writer:
                writer.write(payload)
        else:
            config = ArchiveConfig(media=media, codec=codec,
                                   segment_size=segment_size, **overrides)
            with open_archive(config, target=target, store=store) as writer:
                writer.write(payload)
        return writer.config

    return _write


@pytest.fixture(scope="session")
def build_archive():
    """Factory: ``build_archive(config, payload)`` -> in-memory archive artefact."""
    from repro.api import open_archive

    def _build(config, payload: bytes):
        with open_archive(config) as writer:
            writer.write(payload)
        return writer.archive

    return _build
