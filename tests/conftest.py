"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profiles import TEST_PROFILE
from repro.mocoder.emblem import EmblemSpec


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for test data."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_spec() -> EmblemSpec:
    """The small emblem spec used throughout the fast tests."""
    return TEST_PROFILE.spec


@pytest.fixture
def sql_sample() -> bytes:
    """A small, realistic SQL-archive-like payload."""
    lines = [
        "CREATE TABLE lineitem (l_orderkey INTEGER, l_comment VARCHAR(255));",
    ]
    for key in range(120):
        lines.append(
            f"INSERT INTO lineitem VALUES ({key}, 'carefully final deposits {key % 7}');"
        )
    return ("\n".join(lines) + "\n").encode("utf-8")
