"""Tests for the inner Reed-Solomon code and GF(256) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UncorrectableBlockError
from repro.mocoder.galois import gf_div, gf_inverse, gf_mul, gf_pow, poly_eval, poly_mul
from repro.mocoder.interleave import deinterleave_blocks, interleave_blocks
from repro.mocoder.reed_solomon import INNER_CODE, ReedSolomonCode


class TestGalois:
    def test_multiplicative_identity_and_zero(self):
        assert gf_mul(1, 77) == 77
        assert gf_mul(0, 99) == 0

    def test_inverse(self):
        for value in (1, 2, 77, 255):
            assert gf_mul(value, gf_inverse(value)) == 1

    def test_division(self):
        assert gf_div(gf_mul(23, 45), 45) == 23
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_pow_matches_repeated_mul(self):
        value = 1
        for power in range(1, 10):
            value = gf_mul(value, 3)
            assert gf_pow(3, power) == value

    def test_poly_eval_of_generator_roots_is_zero(self):
        generator = ReedSolomonCode(255, 223).generator
        for j in range(1, 33):
            assert poly_eval(generator, gf_pow(2, j)) == 0

    def test_poly_mul_degree(self):
        assert len(poly_mul([1, 2], [1, 3, 4])) == 4


class TestInnerCode:
    def test_parameters_match_the_paper(self):
        """223 data bytes + 32 redundancy bytes per block, 7.2% correctable."""
        assert INNER_CODE.k == 223 and INNER_CODE.parity == 32
        assert INNER_CODE.max_correctable_errors == 16
        assert INNER_CODE.max_correctable_errors / INNER_CODE.k == pytest.approx(0.072, abs=0.001)

    def test_error_free_roundtrip(self, rng):
        data = rng.integers(0, 256, size=(8, 223), dtype=np.int32)
        decoded, corrections = INNER_CODE.decode_blocks(INNER_CODE.encode_blocks(data))
        assert np.array_equal(decoded, data) and corrections == 0

    def test_corrects_up_to_sixteen_errors(self, rng):
        data = rng.integers(0, 256, size=(1, 223), dtype=np.int32)
        codeword = INNER_CODE.encode_blocks(data)
        positions = rng.choice(255, size=16, replace=False)
        corrupted = codeword.copy()
        for position in positions:
            corrupted[0, position] ^= int(rng.integers(1, 256))
        decoded, corrections = INNER_CODE.decode_blocks(corrupted)
        assert np.array_equal(decoded, data)
        assert corrections == 16

    def test_seventeen_errors_detected_as_uncorrectable(self, rng):
        data = rng.integers(0, 256, size=(1, 223), dtype=np.int32)
        codeword = INNER_CODE.encode_blocks(data)
        for position in rng.choice(255, size=17, replace=False):
            codeword[0, position] ^= 0x5A
        with pytest.raises(UncorrectableBlockError):
            INNER_CODE.decode_blocks(codeword)

    def test_byte_interface_roundtrip(self, rng):
        payload = bytes(rng.integers(0, 256, size=1000, dtype=np.uint8))
        encoded, blocks = INNER_CODE.encode(payload)
        assert blocks == 5 and len(encoded) == 5 * 255
        decoded, _ = INNER_CODE.decode(encoded, original_length=len(payload))
        assert decoded == payload

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(300, 200)
        with pytest.raises(ValueError):
            ReedSolomonCode(20, 20)

    @pytest.mark.parametrize("n,k", [(255, 223), (20, 17)])
    def test_vectorised_encode_matches_reference(self, rng, n, k):
        """The parity-matrix encoder equals the LFSR reference, per block."""
        code = ReedSolomonCode(n, k)
        data = rng.integers(0, 256, size=(40, k), dtype=np.int32)
        assert np.array_equal(code.encode_blocks(data), code._encode_blocks_reference(data))

    @pytest.mark.parametrize("n,k", [(255, 223), (20, 17)])
    def test_vectorised_syndromes_match_reference(self, rng, n, k):
        """The gather-based syndromes equal the Horner reference, errors included."""
        code = ReedSolomonCode(n, k)
        codewords = code.encode_blocks(rng.integers(0, 256, size=(40, k), dtype=np.int32))
        for block in range(0, 40, 3):
            position = int(rng.integers(0, n))
            codewords[block, position] ^= int(rng.integers(1, 256))
        assert np.array_equal(
            code.syndromes_blocks(codewords), code._syndromes_blocks_reference(codewords)
        )

    @pytest.mark.parametrize("n,k", [(255, 223), (20, 17)])
    def test_bitsliced_encode_matches_reference(self, rng, n, k):
        """Above the batch threshold the encoder switches to the bit-sliced
        GF(2) product; it must stay bit-identical to the LFSR reference."""
        from repro.mocoder.reed_solomon import _BITSLICE_MIN_BLOCKS

        code = ReedSolomonCode(n, k)
        blocks = _BITSLICE_MIN_BLOCKS + 37
        data = rng.integers(0, 256, size=(blocks, k), dtype=np.int32)
        assert np.array_equal(code.encode_blocks(data), code._encode_blocks_reference(data))

    def test_encode_parity_gather_and_bitslice_agree(self, rng):
        """Both encode_parity regimes produce the same parity for the same
        rows (the threshold only picks an implementation, not a result)."""
        from repro.mocoder.reed_solomon import _BITSLICE_MIN_BLOCKS

        code = ReedSolomonCode(255, 223)
        rows = _BITSLICE_MIN_BLOCKS + 11
        data = rng.integers(0, 256, size=(rows, 223), dtype=np.uint8)
        large = code.encode_parity(data)
        small = np.vstack([code.encode_parity(data[i:i + 16]) for i in range(0, rows, 16)])
        assert large.dtype == np.uint8
        assert np.array_equal(large, small)

    def test_batched_decode_matches_reference(self, rng):
        """decode_blocks equals the per-block reference on a mixed batch
        of clean blocks and blocks damaged up to the correction bound."""
        codewords = INNER_CODE.encode_blocks(
            rng.integers(0, 256, size=(60, 223), dtype=np.int32)
        )
        for block in range(0, 60, 2):
            errors = int(rng.integers(1, 17))
            positions = rng.choice(255, size=errors, replace=False)
            for position in positions:
                codewords[block, position] ^= int(rng.integers(1, 256))
        got, got_corrections = INNER_CODE.decode_blocks(codewords.copy())
        want, want_corrections = INNER_CODE._decode_blocks_reference(codewords.copy())
        assert np.array_equal(got, want)
        assert got_corrections == want_corrections

    def test_batched_decode_uncorrectable_raises_in_both_paths(self, rng):
        """17 errors in one block of a batch is uncorrectable for both the
        batched and the reference decoder — not silently mis-decoded."""
        codewords = INNER_CODE.encode_blocks(
            rng.integers(0, 256, size=(8, 223), dtype=np.int32)
        )
        positions = rng.choice(255, size=INNER_CODE.max_correctable_errors + 1,
                               replace=False)
        for position in positions:
            codewords[3, position] ^= int(rng.integers(1, 256))
        with pytest.raises(UncorrectableBlockError):
            INNER_CODE.decode_blocks(codewords.copy())
        with pytest.raises(UncorrectableBlockError):
            INNER_CODE._decode_blocks_reference(codewords.copy())

    @settings(max_examples=20, deadline=None)
    @given(
        data=st.binary(min_size=1, max_size=223),
        error_count=st.integers(min_value=0, max_value=16),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_corrects_any_pattern_within_capability(self, data, error_count, seed):
        rng = np.random.default_rng(seed)
        padded = np.zeros((1, 223), dtype=np.int32)
        padded[0, : len(data)] = np.frombuffer(data, dtype=np.uint8)
        codeword = INNER_CODE.encode_blocks(padded)
        positions = rng.choice(255, size=error_count, replace=False)
        for position in positions:
            codeword[0, position] ^= int(rng.integers(1, 256))
        decoded, corrections = INNER_CODE.decode_blocks(codeword)
        assert np.array_equal(decoded, padded)
        assert corrections == error_count


class TestInterleaving:
    def test_roundtrip(self, rng):
        codewords = rng.integers(0, 256, size=(7, 255), dtype=np.uint8)
        stream = interleave_blocks(codewords)
        assert np.array_equal(deinterleave_blocks(stream, 7, 255), codewords)

    def test_burst_damage_is_spread_across_blocks(self, rng):
        codewords = rng.integers(0, 256, size=(10, 255), dtype=np.uint8)
        stream = bytearray(interleave_blocks(codewords))
        # A 30-byte burst in the interleaved stream touches every block at
        # most 3 times (30 / 10 blocks), staying far below the 16-error limit.
        for index in range(100, 130):
            stream[index] ^= 0xFF
        damaged = deinterleave_blocks(bytes(stream), 10, 255)
        per_block_errors = (damaged != codewords).sum(axis=1)
        assert per_block_errors.max() <= 3

    def test_short_stream_rejected(self):
        with pytest.raises(ValueError):
            deinterleave_blocks(b"\x00" * 10, 2, 255)
