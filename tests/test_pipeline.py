"""Tests for the streaming archival pipeline (repro.pipeline).

Covers the segmenter, the executor backends, pipeline round-trips across
payload sizes / DBCoder profiles / executors (serial and parallel backends
must produce byte-identical archives), the per-segment manifest metadata,
and the estimate_emblems fix.
"""

import io

import numpy as np
import pytest

from repro import (
    ArchiveConfig,
    ArchivePipeline,
    RestorePipeline,
    TEST_PROFILE,
    open_restore,
)
from repro.core.archive import ArchiveManifest, SegmentRecord
from repro.core.profiles import MediaProfile
from repro.dbcoder import Profile
from repro.dbcoder.formats import HEADER_SIZE
from repro.errors import RestorationError, UnknownNameError
from repro.media.paper import PaperChannel
from repro.mocoder.emblem import EmblemSpec
from repro.pipeline import (
    get_executor,
    iter_segments,
    segment_count,
    SerialExecutor,
    ThreadPoolSegmentExecutor,
    ProcessPoolSegmentExecutor,
)
from repro.util.crc import crc32_of

#: Large emblems (57 kB payload) so megabyte-scale tests stay fast.
BIG_SPEC_PROFILE = MediaProfile(
    name="test-big-emblems",
    description="paper-capacity emblems at 2 px/cell for MB-scale tests",
    spec=EmblemSpec(
        name="test-big-emblems",
        data_cells_x=1064,
        data_cells_y=1056,
        cell_pixels=2,
    ),
    channel_factory=lambda: PaperChannel(dpi=300),
)

# Register the bench profile so manifest-driven open_restore resolves it —
# the same path a user takes to plug a custom medium into the facade.
from repro import registry  # noqa: E402

if BIG_SPEC_PROFILE.name not in registry.media:
    registry.media.register(BIG_SPEC_PROFILE.name, BIG_SPEC_PROFILE)


def random_payload(size: int, seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    return bytes(rng.integers(0, 256, size=size, dtype=np.uint8))


def compressible_payload(size: int, seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    words = [b"lineitem", b"orders", b"INSERT", b"VALUES", b"carefully", b"(42, 'x')"]
    parts = []
    total = 0
    while total < size:
        word = words[int(rng.integers(0, len(words)))]
        parts.append(word)
        total += len(word)
    return b" ".join(parts)[:size]


def archives_identical(a, b) -> bool:
    if a.manifest != b.manifest or a.bootstrap_text != b.bootstrap_text:
        return False
    if len(a.data_emblem_images) != len(b.data_emblem_images):
        return False
    return all(
        np.array_equal(x, y) for x, y in zip(a.data_emblem_images, b.data_emblem_images)
    ) and all(
        np.array_equal(x, y)
        for x, y in zip(a.system_emblem_images, b.system_emblem_images)
    )


# --------------------------------------------------------------------------- #
# Segmenter
# --------------------------------------------------------------------------- #
class TestSegmenter:
    def test_bytes_source_chunking(self):
        segments = list(iter_segments(b"abcdefghij", 4))
        assert [s.data for s in segments] == [b"abcd", b"efgh", b"ij"]
        assert [s.offset for s in segments] == [0, 4, 8]
        assert [s.index for s in segments] == [0, 1, 2]
        assert all(s.crc32 == crc32_of(s.data) for s in segments)

    def test_none_segment_size_is_one_shot(self):
        segments = list(iter_segments(b"abcdef", None))
        assert len(segments) == 1 and segments[0].data == b"abcdef"

    def test_empty_payload_yields_one_empty_segment(self):
        segments = list(iter_segments(b"", 1024))
        assert len(segments) == 1 and segments[0].data == b""

    def test_file_source_is_read_incrementally(self):
        reads = []

        class Tracking(io.BytesIO):
            def read(self, n=-1):
                reads.append(n)
                return super().read(n)

        data = bytes(range(256)) * 40
        segments = list(iter_segments(Tracking(data), 1000))
        assert b"".join(s.data for s in segments) == data
        assert max(reads) <= 1000

    def test_chunk_iterable_source_rechunks(self):
        chunks = [b"aa", b"bbbb", b"c" * 10, b"", b"dd"]
        segments = list(iter_segments(iter(chunks), 5))
        assert b"".join(s.data for s in segments) == b"".join(chunks)
        assert all(len(s.data) == 5 for s in segments[:-1])

    def test_segment_count(self):
        assert segment_count(0, 100) == 1
        assert segment_count(100, None) == 1
        assert segment_count(100, 100) == 1
        assert segment_count(101, 100) == 2

    def test_invalid_segment_size(self):
        with pytest.raises(ValueError):
            list(iter_segments(b"abc", 0))
        with pytest.raises(ValueError):
            segment_count(10, -1)


# --------------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------------- #
class TestExecutors:
    @pytest.mark.parametrize("executor", [
        SerialExecutor(),
        ThreadPoolSegmentExecutor(workers=3, window=2),
        ProcessPoolSegmentExecutor(workers=2, window=3),
    ])
    def test_map_ordered_preserves_order(self, executor):
        with executor:
            assert list(executor.map_ordered(_square, range(20))) == [
                i * i for i in range(20)
            ]

    def test_errors_propagate(self):
        executor = ThreadPoolSegmentExecutor(workers=2)
        with executor, pytest.raises(ValueError):
            list(executor.map_ordered(_explode_on_seven, range(10)))

    def test_get_executor_specs(self):
        assert isinstance(get_executor(None), SerialExecutor)
        assert isinstance(get_executor("serial"), SerialExecutor)
        thread = get_executor("thread:5")
        assert isinstance(thread, ThreadPoolSegmentExecutor) and thread.workers == 5
        assert isinstance(get_executor("process:2"), ProcessPoolSegmentExecutor)
        instance = SerialExecutor()
        assert get_executor(instance) is instance
        with pytest.raises(UnknownNameError, match="did you mean"):
            get_executor("thredd")
        with pytest.raises(UnknownNameError):
            get_executor("quantum")
        with pytest.raises(ValueError):
            get_executor("thread:zero")


def _square(x):
    return x * x


def _explode_on_seven(x):
    if x == 7:
        raise ValueError("seven")
    return x


# --------------------------------------------------------------------------- #
# Round-trips
# --------------------------------------------------------------------------- #
class TestPipelineRoundTrip:
    @pytest.mark.parametrize("size", [0, 1, 198, 199, 200, 5_000])
    def test_payload_size_sweep(self, size):
        payload = random_payload(size, seed=100 + size)
        pipeline = ArchivePipeline(TEST_PROFILE, segment_size=1024)
        archive = pipeline.archive_bytes(payload, payload_kind="binary")
        result = open_restore(archive).read()
        assert result.payload == payload

    @pytest.mark.parametrize("dbcoder_profile", list(Profile))
    def test_all_dbcoder_profiles(self, dbcoder_profile):
        payload = compressible_payload(12_000, seed=7)
        pipeline = ArchivePipeline(
            TEST_PROFILE, dbcoder_profile=dbcoder_profile, segment_size=4096
        )
        archive = pipeline.archive_bytes(payload, payload_kind="binary")
        assert len(archive.manifest.segments) == 3
        result = open_restore(archive).read()
        assert result.payload == payload

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_segment_boundaries(self, seed):
        """Seeded property test: random sizes + random segment sizes round-trip."""
        rng = np.random.default_rng(seed)
        size = int(rng.integers(0, 20_000))
        segment_size = int(rng.integers(1, 8_192))
        payload = random_payload(size, seed=seed * 97)
        archive = ArchivePipeline(TEST_PROFILE, segment_size=segment_size).archive_bytes(
            payload
        )
        assert archive.manifest.archive_bytes == size
        result = open_restore(archive).read()
        assert result.payload == payload

    def test_megabyte_scale_roundtrip(self):
        """Several-MB payload, bounded segments, big emblems, bit-exact."""
        payload = random_payload(3 * 1024 * 1024, seed=11)
        pipeline = ArchivePipeline(
            BIG_SPEC_PROFILE,
            dbcoder_profile=Profile.STORE,
            segment_size=1024 * 1024,
        )
        archive = pipeline.archive_bytes(payload, payload_kind="binary")
        assert len(archive.manifest.segments) == 3
        result = open_restore(archive).read()
        assert result.payload == payload

    def test_stream_source_matches_bytes_source(self):
        payload = random_payload(9_000, seed=5)
        pipeline = ArchivePipeline(TEST_PROFILE, segment_size=2048)
        from_bytes = pipeline.archive_bytes(payload)
        from_file = pipeline.archive_stream(io.BytesIO(payload))
        assert archives_identical(from_bytes, from_file)


class TestExecutorEquivalence:
    @pytest.mark.parametrize("executor", ["thread:2", "process:2"])
    def test_parallel_matches_serial_byte_identical(self, executor):
        payload = compressible_payload(30_000, seed=23)
        serial = ArchivePipeline(
            TEST_PROFILE, segment_size=8_192, executor="serial"
        ).archive_bytes(payload)
        parallel = ArchivePipeline(
            TEST_PROFILE, segment_size=8_192, executor=executor
        ).archive_bytes(payload)
        assert archives_identical(serial, parallel)

    def test_parallel_segmented_restore(self):
        payload = random_payload(16_000, seed=31)
        archive = ArchivePipeline(TEST_PROFILE, segment_size=4_096).archive_bytes(payload)
        result = open_restore(archive, executor="thread:2").read()
        assert result.payload == payload

    def test_segmented_restore_under_emulated_decoder(self):
        """The archived DynaRisc decoder runs once per segment."""
        payload = compressible_payload(6_000, seed=41)
        archive = ArchivePipeline(TEST_PROFILE, segment_size=2_048).archive_bytes(payload)
        assert len(archive.manifest.segments) == 3
        result = open_restore(archive, decode_mode="dynarisc").read()
        assert result.payload == payload
        assert result.emulator_steps > 0
        assert "3 segments decoded under the dynarisc emulator" in result.notes[-1]


# --------------------------------------------------------------------------- #
# Manifest metadata
# --------------------------------------------------------------------------- #
class TestSegmentMetadata:
    @pytest.fixture(scope="class")
    def archive(self):
        payload = random_payload(10_000, seed=77)
        return (
            ArchivePipeline(TEST_PROFILE, segment_size=3_000).archive_bytes(payload),
            payload,
        )

    def test_records_partition_the_payload(self, archive):
        artefact, payload = archive
        records = artefact.manifest.segments
        assert records[0].offset == 0
        for before, after in zip(records, records[1:]):
            assert after.offset == before.offset + before.length
        assert sum(r.length for r in records) == len(payload)
        for record in records:
            chunk = payload[record.offset:record.offset + record.length]
            assert record.crc32 == crc32_of(chunk)

    def test_records_partition_the_emblems(self, archive):
        artefact, _ = archive
        records = artefact.manifest.segments
        assert records[0].emblem_start == 0
        for before, after in zip(records, records[1:]):
            assert after.emblem_start == before.emblem_start + before.emblem_count
        total = records[-1].emblem_start + records[-1].emblem_count
        assert total == artefact.manifest.data_emblem_count
        assert total == len(artefact.data_emblem_images)

    def test_manifest_json_roundtrip(self, archive):
        artefact, _ = archive
        restored = ArchiveManifest.from_json(artefact.manifest.to_json())
        assert restored == artefact.manifest
        assert isinstance(restored.segments[0], SegmentRecord)

    def test_pre_pipeline_manifest_still_loads(self):
        legacy = """{
            "archive_bytes": 10, "archive_crc32": 1, "data_emblem_count": 1,
            "dbcoder_profile": "PORTABLE", "payload_kind": "sql",
            "profile_name": "test-small", "system_emblem_count": 1
        }"""
        manifest = ArchiveManifest.from_json(legacy)
        assert manifest.segments == () and manifest.segment_size is None

    def test_missing_scans_fail_loudly(self, archive):
        artefact, _ = archive
        with pytest.raises(RestorationError, match="scans"):
            RestorePipeline(TEST_PROFILE).restore_payload(
                artefact.manifest, artefact.data_emblem_images[:-1]
            )

    def test_save_and_load_preserves_segments(self, archive, tmp_path):
        artefact, payload = archive
        from repro import MicrOlonysArchive

        directory = artefact.save(tmp_path / "segmented")
        loaded = MicrOlonysArchive.load(directory)
        assert loaded.manifest == artefact.manifest
        assert open_restore(loaded).read().payload == payload


# --------------------------------------------------------------------------- #
# Emblem estimation (satellite: header size sourced from dbcoder.formats)
# --------------------------------------------------------------------------- #
class TestEstimateEmblems:
    @pytest.mark.parametrize("size", [0, 100, 5_000, 20_000])
    def test_estimate_is_exact_for_store_codec(self, size):
        """STORE adds exactly the container header, so the estimate pins."""
        config = ArchiveConfig(media="test", codec="store")
        payload = random_payload(size, seed=size + 1)
        archive = ArchivePipeline(
            TEST_PROFILE, dbcoder_profile="store", segment_size=None
        ).archive_bytes(payload)
        assert config.estimate_emblems(size) == archive.manifest.data_emblem_count

    def test_estimate_is_exact_for_segmented_store(self):
        config = ArchiveConfig(media="test", codec="store", segment_size=3_000)
        payload = random_payload(10_000, seed=9)
        archive = ArchivePipeline(
            TEST_PROFILE, dbcoder_profile="store", segment_size=3_000
        ).archive_bytes(payload)
        assert config.estimate_emblems(10_000) == archive.manifest.data_emblem_count

    def test_estimate_uses_the_container_header_size(self):
        """The old code hard-coded ``+ 20``; the estimate must track formats."""
        config = ArchiveConfig(media="test")
        capacity = TEST_PROFILE.spec.payload_capacity
        # A payload that fills an emblem exactly once the real header size is
        # added: one byte more must spill into a second emblem.
        boundary = capacity - HEADER_SIZE
        assert config.estimate_emblems(boundary) < config.estimate_emblems(boundary + 1)

    def test_estimate_upper_bounds_compressible_payloads(self):
        config = ArchiveConfig(media="test")
        payload = compressible_payload(20_000, seed=3)
        archive = ArchivePipeline(
            TEST_PROFILE, segment_size=None
        ).archive_bytes(payload)
        assert config.estimate_emblems(len(payload)) >= archive.manifest.data_emblem_count
