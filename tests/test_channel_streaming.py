"""Channel-streaming and sub-segment decode equivalence (PR 4 tentpole).

The streaming restore path changes *how* step 7 and step 5 execute — channel
simulation per batch through the executor, per-image decode split into
chunks — but must never change *what* is restored.  These tests pin that
contract:

* :meth:`~repro.media.channel.MediaChannel.scan_frames` is batching- and
  order-invariant (a hypothesis property over split points and seeds),
* the streaming per-batch record/scan path restores bit-identically to the
  deprecated whole-frame pass across media × executors,
* ``decode_parallelism`` > 1 restores bit-identically to the serial decode,
  for segmented and one-shot (single huge segment) archives alike — for the
  *system-emblem* stream too, which decodes through the same chunked path,
* ``readahead`` prefetching returns the same bytes as lazy fetching.

Archives are built through the shared ``make_payload`` / ``build_archive``
factory fixtures in ``conftest.py``.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import ArchiveConfig, open_archive, open_restore, run_end_to_end
from repro.core.restorer import RestoreEngine
from repro.media.distortions import OFFICE_SCAN
from repro.media.paper import PaperChannel
from repro.store import FramePrefetcher, MemoryBackend


# --------------------------------------------------------------------------- #
# scan_frames: the per-frame seeding contract
# --------------------------------------------------------------------------- #
class TestScanFramesInvariance:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        split=st.integers(min_value=0, max_value=6),
        lane=st.integers(min_value=0, max_value=2),
    )
    def test_batch_split_invariance(self, seed: int, split: int, lane: int) -> None:
        """Scanning in one call == scanning in any two-batch split."""
        channel = PaperChannel(distortion=OFFICE_SCAN.scaled(0.5))
        rng = np.random.default_rng(99)
        frames = [
            rng.integers(0, 256, size=(40, 40), dtype=np.uint8) for _ in range(6)
        ]
        whole = channel.scan_frames(frames, seed=seed, lane=lane).images
        head = channel.scan_frames(frames[:split], seed=seed, start_index=0, lane=lane).images
        tail = channel.scan_frames(
            frames[split:], seed=seed, start_index=split, lane=lane
        ).images
        for expected, got in zip(whole, head + tail):
            np.testing.assert_array_equal(expected, got)

    def test_lanes_are_disjoint_streams(self) -> None:
        channel = PaperChannel(distortion=OFFICE_SCAN)
        frame = np.full((40, 40), 200, dtype=np.uint8)
        lane0 = channel.scan_frames([frame], seed=7, lane=0).images[0]
        lane1 = channel.scan_frames([frame], seed=7, lane=1).images[0]
        assert not np.array_equal(lane0, lane1)

    def test_whole_frame_scan_unchanged(self) -> None:
        """The legacy scan() still threads one RNG across all frames."""
        channel = PaperChannel(distortion=OFFICE_SCAN)
        rng = np.random.default_rng(3)
        frames = [rng.integers(0, 256, size=(40, 40), dtype=np.uint8) for _ in range(3)]
        again = PaperChannel(distortion=OFFICE_SCAN)
        for a, b in zip(channel.scan(frames, seed=5).images, again.scan(frames, seed=5).images):
            np.testing.assert_array_equal(a, b)


# --------------------------------------------------------------------------- #
# Streaming record/scan == whole-frame record/scan (restored bytes)
# --------------------------------------------------------------------------- #
class TestStreamingChannelEquivalence:
    @pytest.mark.parametrize("media", ["test", "dna"])
    @pytest.mark.parametrize("executor", ["serial", "thread:2"])
    def test_streaming_matches_whole_frame(self, media: str, executor: str,
                                           make_payload, build_archive) -> None:
        payload = make_payload(4000)
        config = ArchiveConfig(
            media=media, codec="portable", segment_size=1024,
            executor=executor, scan_seed=13,
        )
        archive = build_archive(config, payload)
        engine = RestoreEngine(config.media_profile(), executor=executor)
        streamed = engine.restore_via_channel(archive, seed=13)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            whole = engine.restore_via_channel(archive, seed=13, streaming=False)
        assert streamed.payload == whole.payload == payload
        assert any("per batch" in note for note in streamed.notes)

    @pytest.mark.parametrize("seed", [0, 7, 20210104])
    def test_streaming_is_executor_invariant(self, seed: int, make_payload,
                                             build_archive) -> None:
        """Per-frame seeding makes the streamed restore executor-independent."""
        payload = make_payload(3000, seed=seed + 1)
        config = ArchiveConfig(media="test", segment_size=512, scan_seed=seed)
        archive = build_archive(config, payload)
        results = [
            RestoreEngine(config.media_profile(), executor=executor)
            .restore_via_channel(archive, seed=seed)
            for executor in ("serial", "thread:2", "process:2")
        ]
        assert all(result.payload == payload for result in results)

    def test_run_end_to_end_streams_the_channel(self, make_payload) -> None:
        payload = make_payload(2500)
        result = run_end_to_end(
            ArchiveConfig(media="test", segment_size=512, scan_seed=21), payload
        )
        assert result.ok and result.payload == payload
        assert any("per batch" in note for note in result.notes)
        assert result.frames_recorded == (
            result.archive.manifest.data_emblem_count
            + result.archive.manifest.system_emblem_count
        )

    def test_open_restore_via_channel_session(self, make_payload, build_archive) -> None:
        payload = make_payload(2000)
        config = ArchiveConfig(media="test", segment_size=512, scan_seed=3)
        archive = build_archive(config, payload)
        with open_restore(archive, config, via_channel=True) as reader:
            assert reader.read().payload == payload

    def test_distortion_override_streams_when_named(self, make_payload,
                                                    build_archive) -> None:
        """A named distortion override rides the ChannelSpec into the jobs."""
        payload = make_payload(2500)
        config = ArchiveConfig(
            media="test", segment_size=512, distortion="pristine", scan_seed=9
        )
        archive = build_archive(config, payload)
        result = open_restore(archive, config).read_via_channel(seed=9)
        assert result.payload == payload
        assert any("per batch" in note for note in result.notes)

    def test_unnamed_channel_customisation_falls_back_whole_frame(
            self, make_payload, build_archive) -> None:
        """A profile whose channel can't be rebuilt by name must not stream
        with the registry default — it degrades to the whole-frame pass."""
        config = ArchiveConfig(media="test", segment_size=512, scan_seed=9)
        overridden = config.replace(distortion="pristine").media_profile()
        engine = RestoreEngine(overridden)
        # The override is baked into the factory but not named to the engine:
        assert engine._channel_spec(seed=9, distortion=None) is None
        # Named, it streams; unregistered profiles also fall back.
        assert engine._channel_spec(seed=9, distortion="pristine") is not None
        payload = make_payload(1500)
        archive = build_archive(config, payload)
        result = engine.restore_via_channel(archive, seed=9)
        assert result.payload == payload
        assert not any("per batch" in note for note in result.notes)


# --------------------------------------------------------------------------- #
# decode_parallelism: chunked sub-segment decode == serial decode
# --------------------------------------------------------------------------- #
class TestDecodeParallelism:
    @pytest.mark.parametrize("executor", ["serial", "thread:3"])
    def test_one_shot_archive_matches_serial(self, executor: str, make_payload,
                                             build_archive) -> None:
        """A single huge segment decodes chunk-parallel to the same bytes."""
        payload = make_payload(9000)
        config = ArchiveConfig(media="test", segment_size=None)
        archive = build_archive(config, payload)
        assert len(archive.manifest.segments) == 1
        serial = RestoreEngine(config.media_profile()).restore(archive)
        chunked = RestoreEngine(
            config.media_profile(), executor=executor, decode_parallelism=3
        ).restore(archive)
        assert chunked.payload == serial.payload == payload
        assert chunked.data_report.emblems_decoded == serial.data_report.emblems_decoded
        assert chunked.data_report.emblems_seen == serial.data_report.emblems_seen

    def test_segmented_archive_matches_serial(self, make_payload, build_archive) -> None:
        payload = make_payload(8000)
        config = ArchiveConfig(media="test", segment_size=2048)
        archive = build_archive(config, payload)
        serial = open_restore(archive, config).read()
        parallel = open_restore(
            archive, config, executor="thread:2", decode_parallelism=2
        ).read()
        assert parallel.payload == serial.payload == payload

    def test_system_emblem_stream_chunked_matches_serial(self, make_payload,
                                                         build_archive) -> None:
        """The system-emblem stream decodes through the same chunked path.

        The ROADMAP follow-up: ``decode_parallelism`` now applies to step
        4's system stream as well, so its RS-heavy per-image decoding maps
        through the executor — and must stay byte-identical to the serial
        decode, statistics included.  ``decode_mode="dynarisc"`` forces the
        decoded system stream to actually *run* as the archived decoder, so
        a corrupted chunked decode cannot slip through unnoticed.
        """
        payload = make_payload(3000)
        config = ArchiveConfig(media="test", segment_size=1024)
        archive = build_archive(config, payload)
        serial = RestoreEngine(config.media_profile(), decode_mode="dynarisc").restore(archive)
        chunked = RestoreEngine(
            config.media_profile(), decode_mode="dynarisc",
            executor="thread:3", decode_parallelism=3,
        ).restore(archive)
        assert chunked.payload == serial.payload == payload
        assert serial.system_report is not None and chunked.system_report is not None
        assert chunked.system_report.emblems_seen == serial.system_report.emblems_seen
        assert chunked.system_report.emblems_decoded == serial.system_report.emblems_decoded
        assert chunked.system_report.rs_corrections == serial.system_report.rs_corrections
        assert chunked.emulator_steps == serial.emulator_steps > 0

    def test_streaming_channel_with_decode_parallelism(self, make_payload,
                                                       build_archive) -> None:
        """Both tentpole halves composed: per-batch channel + chunked decode."""
        payload = make_payload(6000)
        config = ArchiveConfig(
            media="test", segment_size=1500, executor="thread:2",
            decode_parallelism=2, scan_seed=17,
        )
        archive = build_archive(config, payload)
        result = open_restore(archive, config).read_via_channel(seed=17)
        assert result.payload == payload

    def test_serial_executor_upgrades_for_chunked_decode(self, make_payload,
                                                         build_archive) -> None:
        """decode_parallelism > 1 over the default serial executor must not
        be a silent no-op: chunk decoding upgrades to a thread pool."""
        from repro.pipeline import RestorePipeline, resolve_decode_executor

        assert resolve_decode_executor("serial", 4) == "thread:4"
        assert resolve_decode_executor("serial", 1) == "serial"
        assert resolve_decode_executor("process:2", 4) == "process:2"
        pipeline = RestorePipeline(decode_parallelism=3)
        assert pipeline.executor == "thread:3"
        payload = make_payload(5000)
        config = ArchiveConfig(media="test", segment_size=None)
        archive = build_archive(config, payload)
        upgraded = RestoreEngine(config.media_profile(), decode_parallelism=3)
        assert upgraded.restore(archive).payload == payload

    def test_config_validates_parallelism(self) -> None:
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ArchiveConfig(decode_parallelism=0)
        with pytest.raises(ConfigError):
            ArchiveConfig(readahead=-1)
        config = ArchiveConfig(decode_parallelism=4, readahead=2)
        assert ArchiveConfig.from_json(config.to_json()) == config


# --------------------------------------------------------------------------- #
# readahead: prefetched partial restore == lazy partial restore
# --------------------------------------------------------------------------- #
class TestReadahead:
    def test_read_range_matches_lazy(self, make_payload) -> None:
        payload = make_payload(16000)
        config = ArchiveConfig(media="test", codec="store", segment_size=2048)
        target = "mem:readahead-equivalence"
        try:
            with open_archive(config, target=target) as writer:
                writer.write(payload)
            with open_restore(target) as lazy, open_restore(target, readahead=3) as eager:
                for offset, length in ((0, 100), (3000, 5000), (15000, 4000)):
                    expected = payload[offset:offset + length]
                    assert lazy.read_range(offset, length) == expected
                    assert eager.read_range(offset, length) == expected
            with open_restore(target, readahead=2, decode_parallelism=2,
                              executor="thread:2") as reader:
                assert reader.read_range(1000, 9000) == payload[1000:10000]
        finally:
            MemoryBackend.discard(target)

    def test_prefetcher_orders_and_falls_back(self) -> None:
        fetched: list[int] = []

        def fetch(record: int) -> str:
            fetched.append(record)
            return f"frames-{record}"

        with FramePrefetcher(fetch, [1, 2, 3], depth=2) as prefetcher:
            assert prefetcher.frames_for(1) == "frames-1"
            # Out-of-order request: served directly, not from the pipeline.
            assert prefetcher.frames_for(3) == "frames-3"
        assert set(fetched) >= {1, 2, 3}

    def test_prefetcher_rejects_bad_depth(self) -> None:
        with pytest.raises(ValueError):
            FramePrefetcher(lambda record: record, [], depth=0)
