"""Tests for the Bootstrap: letter codec, document generation/parsing, OCR."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import BootstrapParseError, LetterCodecError
from repro.bootstrap import (
    BootstrapDocument,
    SimulatedOCR,
    build_bootstrap,
    bytes_to_letters,
    format_letter_pages,
    letters_to_bytes,
)
from repro.bootstrap.document import VERISC_PSEUDOCODE


class TestLetterCodec:
    def test_paper_mapping_a_is_0xf_p_is_0x0(self):
        """§3.2: letters A to P encode hexadecimal values 0xF to 0x0."""
        assert bytes_to_letters(b"\xf0") == "AP"
        assert bytes_to_letters(b"\x0f") == "PA"
        assert letters_to_bytes("AP") == b"\xf0"

    def test_two_letters_per_byte(self):
        assert len(bytes_to_letters(bytes(100))) == 200

    def test_whitespace_ignored_on_decode(self):
        assert letters_to_bytes("A P\nPA") == b"\xf0\x0f"

    def test_invalid_letter_rejected(self):
        with pytest.raises(LetterCodecError):
            letters_to_bytes("AZ")

    def test_odd_letter_count_rejected(self):
        with pytest.raises(LetterCodecError):
            letters_to_bytes("APA")

    def test_page_formatting_groups_letters(self):
        pages = format_letter_pages("A" * 1000, letters_per_line=64, lines_per_page=10)
        assert len(pages) == 2
        assert letters_to_bytes("".join(pages)) == letters_to_bytes("A" * 1000)

    @given(st.binary(max_size=500))
    def test_roundtrip_property(self, data):
        assert letters_to_bytes(bytes_to_letters(data)) == data


class TestBootstrapDocument:
    def build(self):
        return build_bootstrap(b"\x01\x02\x03" * 50, b"\xaa\xbb" * 30,
                               dynarisc_entry=16, mocoder_entry=0)

    def test_render_and_parse_roundtrip(self):
        document = self.build()
        parsed = BootstrapDocument.parse(document.render())
        assert parsed.section("DYNARISC-EMULATOR").payload == b"\x01\x02\x03" * 50
        assert parsed.section("DYNARISC-EMULATOR").entry_point == 16
        assert parsed.section("MOCODER-DECODER").payload == b"\xaa\xbb" * 30

    def test_pseudocode_is_bounded_like_the_paper(self):
        """§4: the emulator spec is 'less than 500 lines' of pseudocode."""
        assert 50 < len(VERISC_PSEUDOCODE.splitlines()) < 500

    def test_page_accounting(self):
        document = self.build()
        assert document.letter_count == 2 * (150 + 60)
        assert document.page_count >= 2

    def test_corrupted_letters_fail_the_crc(self):
        text = self.build().render()
        # Flip one letter inside the first letter block: swap a 'P' (value 0)
        # for an 'A' (value 15) a little way past the section's CRC line.
        marker = text.index("CRC32:")
        body_start = text.index("\n", marker) + 80
        offset = text.index("P", body_start)
        corrupted = text[:offset] + "A" + text[offset + 1:]
        with pytest.raises(BootstrapParseError):
            BootstrapDocument.parse(corrupted)

    def test_missing_sections_rejected(self):
        with pytest.raises(BootstrapParseError):
            BootstrapDocument.parse("just some prose, no sections")

    def test_unknown_section_lookup(self):
        with pytest.raises(BootstrapParseError):
            self.build().section("NOPE")


class TestSimulatedOCR:
    def test_perfect_ocr_is_identity(self):
        text = build_bootstrap(b"abc", b"def").render()
        assert SimulatedOCR(0.0).read(text) == text

    def test_errors_only_touch_letter_glyphs(self):
        text = "XYZ-42: q9\nAPAPAPAP"
        noisy = SimulatedOCR(1.0, seed=4).read(text)
        assert noisy.splitlines()[0] == "XYZ-42: q9"

    def test_noisy_ocr_is_detected_by_the_bootstrap_crc(self):
        document = build_bootstrap(bytes(range(256)), bytes(range(200)))
        noisy = SimulatedOCR(0.02, seed=7).read(document.render())
        with pytest.raises(BootstrapParseError):
            BootstrapDocument.parse(noisy)

    def test_invalid_error_rate(self):
        with pytest.raises(ValueError):
            SimulatedOCR(1.5)
