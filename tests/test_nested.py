"""Tests for the nested DynaRisc-in-VeRisc emulator (the heart of ULE)."""

import pytest

from repro.errors import MachineFault
from repro.dbcoder.lz77 import lzss_compress
from repro.dynarisc.assembler import DynaRiscAssembler
from repro.dynarisc.emulator import DynaRiscEmulator
from repro.dynarisc.programs import get_program
from repro.nested import (
    HOSTED_MEMORY_BYTES,
    NestedDynaRiscMachine,
    dynarisc_emulator_image,
)


def nested_vs_reference(source_or_name: str, input_data: bytes = b"") -> tuple[bytes, bytes]:
    """Run a DynaRisc program on both emulators and return both outputs."""
    if "\n" in source_or_name or " " in source_or_name.strip():
        program = DynaRiscAssembler().assemble(source_or_name)
        code, entry = program.code, program.entry
    else:
        archived = get_program(source_or_name)
        code, entry = archived.code, archived.entry
    reference = DynaRiscEmulator(code, input_data=input_data).run(entry)
    nested = NestedDynaRiscMachine(code, input_data=input_data, entry=entry).run()
    return nested, reference


class TestEmulatorImage:
    def test_image_is_cached_and_nontrivial(self):
        image = dynarisc_emulator_image()
        assert image is dynarisc_emulator_image()
        assert len(image) > 1000  # a real interpreter, not a stub

    def test_image_serialises_for_the_bootstrap(self):
        image = dynarisc_emulator_image()
        assert len(image.to_bytes()) == 2 * len(image.words)

    def test_program_too_large_is_rejected(self):
        with pytest.raises(MachineFault):
            NestedDynaRiscMachine(b"\x00" * (HOSTED_MEMORY_BYTES + 1))


class TestNestedAgreement:
    """The archived programs must behave identically under nested emulation."""

    def test_xor_stream(self):
        nested, reference = nested_vs_reference("xor_stream", bytes([0x5A]) + b"nested!")
        assert nested == reference

    def test_checksum(self):
        nested, reference = nested_vs_reference("checksum", bytes(range(64)))
        assert nested == reference

    def test_rle_decoder(self):
        nested, reference = nested_vs_reference("rle_decoder", bytes([2, 88, 3, 89]))
        assert nested == reference == b"XXYYY"

    def test_lzss_decoder_small_payload(self, sql_sample):
        payload = sql_sample[:300]
        nested, reference = nested_vs_reference("lzss_decoder", lzss_compress(payload))
        assert nested == reference == payload


class TestNestedInstructionCoverage:
    """Exercise the instructions not used by the archived decoders."""

    def test_adc_sbb_or_not(self):
        source = """
        start:
            LDI d3, #OUTPUT_PORT
            LDI r0, #0xFFFF
            LDI r1, #1
            ADD r0, r1          ; carry out
            LDI r2, #7
            ADC r2, r1          ; 7 + 1 + carry = 9
            STM r2, [d3]
            LDI r0, #0
            LDI r1, #1
            SUB r0, r1          ; borrow out
            LDI r2, #9
            SBB r2, r1          ; 9 - 1 - 1 = 7
            STM r2, [d3]
            LDI r0, #0x0F
            LDI r1, #0xF0
            OR  r0, r1
            STM r0, [d3]        ; 0xFF
            NOT r1
            STM r1, [d3]        ; low byte of 0xFF0F
            HALT
        """
        nested, reference = nested_vs_reference(source)
        assert nested == reference == bytes([9, 7, 0xFF, 0x0F])

    def test_mul_and_rotates(self):
        source = """
        start:
            LDI d3, #OUTPUT_PORT
            LDI r0, #25
            LDI r1, #9
            MUL r0, r1
            STM r0, [d3]        ; 225
            LDI r0, #0x81
            LDI r1, #1
            ROR r0, r1
            JCOND cs, carry_was_set
            HALT
        carry_was_set:
            LDI r2, #0xC0
            STM r2, [d3]
            LDI r0, #0x8000
            LDI r1, #2
            ASR r0, r1
            LDI r1, #8
            LSR r0, r1
            STM r0, [d3]        ; 0xE0
            HALT
        """
        nested, reference = nested_vs_reference(source)
        assert nested == reference == bytes([225, 0xC0, 0xE0])

    def test_call_ret_nested_subroutines(self):
        source = """
        start:
            LDI d3, #OUTPUT_PORT
            CALL outer
            HALT
        outer:
            LDI r0, #1
            STM r0, [d3]
            CALL inner
            LDI r0, #3
            STM r0, [d3]
            RET
        inner:
            LDI r0, #2
            STM r0, [d3]
            RET
        """
        nested, reference = nested_vs_reference(source)
        assert nested == reference == bytes([1, 2, 3])
