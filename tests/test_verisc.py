"""Tests for the VeRisc machine, assembler and macro layer."""

import pytest

from repro.errors import AssemblyError, ExecutionLimitExceeded, MachineFault
from repro.verisc import (
    Instruction,
    MacroAssembler,
    Op,
    VeRiscAssembler,
    VeRiscMachine,
    VeRiscProgram,
)
from repro.verisc.isa import SpecialAddress


class TestInstructionEncoding:
    def test_encode_decode_roundtrip(self):
        for op in Op:
            instruction = Instruction(op, 0x1234)
            assert Instruction.decode(*instruction.encode()) == instruction

    def test_invalid_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instruction.decode(7, 0)

    def test_address_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(Op.LD, 0x10000)


class TestMachineSemantics:
    def run_words(self, words, input_data=b""):
        machine = VeRiscMachine(input_data=input_data)
        machine.load_image(words)
        return machine, machine.run(0)

    def test_ld_st_move_data(self):
        # LD value; ST 100; ST HALT
        words = [0, 8, 1, 100, 1, SpecialAddress.HALT, 0, 0, 0xBEEF]
        machine, _ = self.run_words(words)
        assert machine.state.memory[100] == 0xBEEF

    def test_sbb_sets_borrow_on_underflow(self):
        # LD a(=1); SBB b(=2); ST BORROW->? just halt and inspect state
        words = [0, 8, 2, 9, 1, SpecialAddress.HALT, 0, 0, 1, 2]
        machine, _ = self.run_words(words)
        assert machine.state.accumulator == 0xFFFF
        assert machine.state.borrow == 1

    def test_and_clears_borrow(self):
        words = [0, 10, 2, 11, 3, 12, 1, SpecialAddress.HALT, 0, 0, 1, 2, 0xFFFF]
        machine, _ = self.run_words(words)
        assert machine.state.borrow == 0

    def test_output_port_collects_low_byte(self):
        words = [0, 6, 1, SpecialAddress.OUTPUT, 1, SpecialAddress.HALT, 0x4142]
        _, output = self.run_words(words)
        assert output == b"\x42"

    def test_input_port_reads_bytes_and_flags_eof(self):
        # Read one byte, output it, read again at EOF -> borrow set.
        words = [
            0, SpecialAddress.INPUT, 1, SpecialAddress.OUTPUT,
            0, SpecialAddress.INPUT, 1, SpecialAddress.HALT,
        ]
        machine = VeRiscMachine(input_data=b"\x7f")
        machine.load_image(words)
        output = machine.run(0)
        assert output == b"\x7f"
        assert machine.state.borrow == 1

    def test_writing_pc_jumps(self):
        # LD target(=6); ST PC;  (skipped: halt-at-4) ; at 6: ST HALT
        words = [0, 8, 1, SpecialAddress.PC, 1, SpecialAddress.HALT, 1, SpecialAddress.HALT, 6]
        machine, _ = self.run_words(words)
        assert machine.state.steps == 3

    def test_step_limit_enforced(self):
        # Infinite loop: LD 4; ST PC at address 0.. jumps to 0 forever.
        words = [0, 4, 1, SpecialAddress.PC, 0]
        machine = VeRiscMachine(step_limit=100)
        machine.load_image(words)
        with pytest.raises(ExecutionLimitExceeded):
            machine.run(0)

    def test_writing_to_input_port_is_a_fault(self):
        words = [1, SpecialAddress.INPUT]
        machine = VeRiscMachine()
        machine.load_image(words)
        with pytest.raises(MachineFault):
            machine.run(0)


class TestTextAssembler:
    def test_assembles_and_runs(self):
        source = """
        start:  LD value
                SBB one
                ST OUTPUT
                ST HALT
        value:  .word 66
        one:    .word 1
        """
        program = VeRiscAssembler().assemble(source)
        assert program.run() == b"A"

    def test_unknown_symbol_reports_line(self):
        with pytest.raises(AssemblyError):
            VeRiscAssembler().assemble("LD missing_symbol")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            VeRiscAssembler().assemble("a: .word 1\na: .word 2")

    def test_space_directive_reserves_zero_words(self):
        program = VeRiscAssembler().assemble("buf: .space 3\n.word 7")
        assert program.words == [0, 0, 0, 7]


class TestProgramContainer:
    def test_bytes_roundtrip(self):
        program = VeRiscProgram(words=[1, 0xABCD, 3], entry=0)
        rebuilt = VeRiscProgram.from_bytes(program.to_bytes())
        assert rebuilt.words == program.words

    def test_odd_byte_image_rejected(self):
        with pytest.raises(ValueError):
            VeRiscProgram.from_bytes(b"\x01\x02\x03")

    def test_oversized_program_rejected(self):
        with pytest.raises(ValueError):
            VeRiscProgram(words=[0] * 70000)


class TestMacroAssembler:
    def build_and_run(self, build, input_data=b""):
        m = MacroAssembler()
        m.set_entry("main")
        m.place("main")
        build(m)
        return m.assemble().run(input_data=input_data)

    def test_arithmetic_macros(self):
        def build(m):
            m.load_imm(40)
            m.add_imm(7)
            m.sub_imm(5)
            m.output_byte()
            m.halt()
        assert self.build_and_run(build) == bytes([42])

    def test_conditional_jump_taken_and_not_taken(self):
        def build(m):
            done = m.new_label()
            m.load_imm(3)
            m.sub_imm(5)           # borrow set
            m.jump_if_borrow(done)
            m.load_imm(0)
            m.output_byte()
            m.halt()
            m.place(done)
            m.load_imm(1)
            m.output_byte()
            m.halt()
        assert self.build_and_run(build) == bytes([1])

    def test_loop_with_memory_counter(self):
        def build(m):
            counter = m.new_label()
            loop = m.new_label()
            done = m.new_label()
            m.place(loop)
            m.jump_if_zero(m.ref(counter), done)
            m.ld(m.ref(counter))
            m.output_byte()
            m.dec(m.ref(counter))
            m.jmp(loop)
            m.place(done)
            m.halt()
            m.place(counter)
            m.word(3)
        assert self.build_and_run(build) == bytes([3, 2, 1])

    def test_indirect_load_and_store(self):
        def build(m):
            pointer = m.new_label()
            target = m.new_label()
            m.load_imm(0x55)
            m.store_indirect(m.ref(pointer))
            m.load_indirect(m.ref(pointer))
            m.output_byte()
            m.halt()
            m.place(pointer)
            m.word(m.ref(target))
            m.place(target)
            m.word(0)
        assert self.build_and_run(build) == bytes([0x55])

    def test_undefined_label_raises(self):
        m = MacroAssembler()
        m.set_entry("main")
        m.place("main")
        m.jmp("nowhere")
        with pytest.raises(AssemblyError):
            m.assemble()
