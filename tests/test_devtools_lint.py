"""Tests for the repro.devtools invariant linter.

Each rule gets positive fixtures (the violation fires, with the right rule
ID and line) and negative fixtures (idiomatic code stays clean); the
annotation conventions (``disable=`` with justification, ``guarded-by`` /
``requires-lock``) are exercised both ways, and an end-to-end run asserts
the live ``src/repro`` tree is clean.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint import (
    ExecutorPickleRule,
    GuardedByRule,
    Linter,
    OwnedLiteralRule,
    RatioDirectionRule,
    RegistryRule,
    RngRule,
    SilentExceptRule,
    default_rules,
    main,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"


def lint_snippet(tmp_path: Path, source: str, *, rules=None, name: str = "mod.py"):
    """Lint one dedented snippet, returning its findings."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    if rules is None:
        # Project-wide/runtime rules need the live tree, not a snippet.
        rules = [
            rule for rule in default_rules()
            if not isinstance(rule, (RegistryRule, GuardedByRule))
        ]
    linter = Linter(rules=rules)
    return linter.run([path]).findings


def rule_ids(findings) -> list[str]:
    return [finding.rule for finding in findings]


# --------------------------------------------------------------------------- #
# REP101 — global-state randomness
# --------------------------------------------------------------------------- #
class TestRngRule:
    def test_numpy_global_call_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            x = np.random.rand(3)
            """,
            rules=[RngRule()],
        )
        assert rule_ids(findings) == ["REP101"]
        assert findings[0].line == 3
        assert "np.random.rand" in findings[0].message

    def test_default_rng_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            rng = np.random.default_rng(7)
            """,
            rules=[RngRule()],
        )
        assert rule_ids(findings) == ["REP101"]

    def test_stdlib_random_import_fires(self, tmp_path):
        findings = lint_snippet(tmp_path, "import random\n", rules=[RngRule()])
        assert rule_ids(findings) == ["REP101"]

    def test_from_random_import_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "from random import shuffle\n", rules=[RngRule()]
        )
        assert rule_ids(findings) == ["REP101"]

    def test_numpy_random_alias_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            from numpy import random as nprand
            nprand.shuffle([1, 2])
            """,
            rules=[RngRule()],
        )
        assert rule_ids(findings) == ["REP101"]

    def test_generator_annotation_allowed(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            def scan(rng: np.random.Generator) -> None:
                rng.normal(size=3)
            """,
            rules=[RngRule()],
        )
        assert findings == []

    def test_rng_module_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            def deterministic_rng(seed):
                return np.random.default_rng(seed)
            """,
            rules=[RngRule()],
            name="repro/util/rng.py",
        )
        assert findings == []


# --------------------------------------------------------------------------- #
# REP102 — silent excepts
# --------------------------------------------------------------------------- #
class TestSilentExceptRule:
    def test_bare_except_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            try:
                work()
            except:
                handle()
            """,
            rules=[SilentExceptRule()],
        )
        assert rule_ids(findings) == ["REP102"]

    def test_swallowed_broad_except_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            try:
                work()
            except Exception:
                pass
            """,
            rules=[SilentExceptRule()],
        )
        assert rule_ids(findings) == ["REP102"]

    def test_swallowed_ellipsis_and_tuple_fire(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            try:
                work()
            except (ValueError, BaseException):
                ...
            """,
            rules=[SilentExceptRule()],
        )
        assert rule_ids(findings) == ["REP102"]

    def test_handled_broad_except_allowed(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            try:
                work()
            except Exception as exc:
                log(exc)
                raise
            """,
            rules=[SilentExceptRule()],
        )
        assert findings == []

    def test_swallowed_narrow_except_allowed(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            try:
                work()
            except KeyError:
                pass
            """,
            rules=[SilentExceptRule()],
        )
        assert findings == []


# --------------------------------------------------------------------------- #
# REP201 — owned on-media literals
# --------------------------------------------------------------------------- #
class TestOwnedLiteralRule:
    def test_duplicate_magic_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            'MAGIC = b"ULEARC02"\n',
            rules=[OwnedLiteralRule()],
        )
        assert rule_ids(findings) == ["REP201"]
        assert "repro/store/backends.py" in findings[0].message

    def test_duplicate_struct_format_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            'import struct\nTRAILER = struct.Struct("<Q8s")\n',
            rules=[OwnedLiteralRule()],
        )
        assert rule_ids(findings) == ["REP201"]

    def test_owner_module_allowed(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            'CONTAINER_MAGIC = b"ULEARC02"\n_FMT = "<Q8s"\n',
            rules=[OwnedLiteralRule()],
            name="repro/store/backends.py",
        )
        assert findings == []

    def test_unrelated_literal_allowed(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            'OTHER = b"NOTMAGIC"\nFMT = "<HH"\n',
            rules=[OwnedLiteralRule()],
        )
        assert findings == []

    def test_str_bytes_distinction(self, tmp_path):
        # The *string* "ULEARC02" is not the owned *bytes* literal.
        findings = lint_snippet(
            tmp_path,
            'NAME = "ULEARC02"\n',
            rules=[OwnedLiteralRule()],
        )
        assert findings == []


# --------------------------------------------------------------------------- #
# REP301 — executor picklability
# --------------------------------------------------------------------------- #
class TestExecutorPickleRule:
    def test_lambda_to_submit_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def run(pool):
                pool.submit(lambda: 1)
            """,
            rules=[ExecutorPickleRule()],
        )
        assert rule_ids(findings) == ["REP301"]

    def test_closure_to_map_ordered_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def run(executor, items):
                def job(item):
                    return item
                return list(executor.map_ordered(job, items))
            """,
            rules=[ExecutorPickleRule()],
        )
        assert rule_ids(findings) == ["REP301"]
        assert "job" in findings[0].message

    def test_module_level_function_allowed(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def job(item):
                return item

            def run(executor, items):
                return list(executor.map_ordered(job, items))
            """,
            rules=[ExecutorPickleRule()],
        )
        assert findings == []

    def test_bound_method_and_param_allowed(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            class Prefetcher:
                def fill(self, pool, record, function, item):
                    pool.submit(self.fetch, record)
                    pool.submit(function, item)
            """,
            rules=[ExecutorPickleRule()],
        )
        assert findings == []

    def test_lambda_elsewhere_allowed(self, tmp_path):
        # register() is not a submit method; factory lambdas are fine.
        findings = lint_snippet(
            tmp_path,
            """
            def setup(registry):
                registry.register("serial", lambda workers=None: object())
            """,
            rules=[ExecutorPickleRule()],
        )
        assert findings == []


# --------------------------------------------------------------------------- #
# REP401 — registry resolution (runs against the live registry)
# --------------------------------------------------------------------------- #
class TestRegistryRule:
    def test_live_registries_resolve(self):
        rule = RegistryRule()
        assert list(rule.check_project()) == []
        assert rule.notices() == []


# --------------------------------------------------------------------------- #
# REP501 — guarded-by lock discipline
# --------------------------------------------------------------------------- #
GUARDED_CLASS = """
import threading

class Holder:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # lint: guarded-by(_lock)
{body}
"""


class TestGuardedByRule:
    def lint_body(self, tmp_path, body: str):
        return lint_snippet(
            tmp_path,
            GUARDED_CLASS.format(body=textwrap.indent(textwrap.dedent(body), "    ")),
            rules=[GuardedByRule()],
        )

    def test_unguarded_access_fires(self, tmp_path):
        findings = self.lint_body(
            tmp_path,
            """
            def add(self, item):
                self._items.append(item)
            """,
        )
        assert rule_ids(findings) == ["REP501"]
        assert "self._items" in findings[0].message
        assert "add()" in findings[0].message

    def test_guarded_access_allowed(self, tmp_path):
        findings = self.lint_body(
            tmp_path,
            """
            def add(self, item):
                with self._lock:
                    self._items.append(item)
            """,
        )
        assert findings == []

    def test_init_exempt(self, tmp_path):
        # The registration itself (in __init__) must not fire.
        findings = self.lint_body(tmp_path, "")
        assert findings == []

    def test_requires_lock_annotation_allowed(self, tmp_path):
        findings = self.lint_body(
            tmp_path,
            """
            def _fill(self):  # lint: requires-lock(_lock)
                self._items.append(1)
            """,
        )
        assert findings == []

    def test_wrong_lock_fires(self, tmp_path):
        findings = self.lint_body(
            tmp_path,
            """
            def add(self, item):
                with self._other:
                    self._items.append(item)
            """,
        )
        assert rule_ids(findings) == ["REP501"]

    def test_nested_function_resets_held_locks(self, tmp_path):
        # A callback defined inside `with self._lock:` runs later, without
        # the lock — accessing the guarded field there must fire.
        findings = self.lint_body(
            tmp_path,
            """
            def schedule(self, pool):
                with self._lock:
                    def later():
                        return self._items
                    pool.defer(later)
            """,
        )
        assert rule_ids(findings) == ["REP501"]

    def test_unguarded_fields_ignored(self, tmp_path):
        findings = self.lint_body(
            tmp_path,
            """
            def touch(self):
                return self._other_field
            """,
        )
        assert findings == []


# --------------------------------------------------------------------------- #
# Suppression + annotation hygiene
# --------------------------------------------------------------------------- #
# --------------------------------------------------------------------------- #
# REP601 — benchmark ratio keys document their direction
# --------------------------------------------------------------------------- #
class TestRatioDirectionRule:
    def test_undocumented_ratio_key_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            report = {
                "speedup_vs_serial": 2.0,
            }
            """,
            rules=[RatioDirectionRule()],
            name="benchmarks/bench_mod.py",
        )
        assert rule_ids(findings) == ["REP601"]
        assert "speedup_vs_serial" in findings[0].message

    def test_documented_ratio_key_allowed(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            report = {
                # serial time over parallel time: higher is better.
                "speedup_vs_serial": 2.0,
                # degraded time over healthy time: lower is better.
                "penalty_vs_healthy": 1.4,
            }
            """,
            rules=[RatioDirectionRule()],
            name="benchmarks/bench_mod.py",
        )
        assert findings == []

    def test_subscript_assignment_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            report = {}
            report["speedup_vs_full"] = 3.0
            """,
            rules=[RatioDirectionRule()],
            name="benchmarks/bench_mod.py",
        )
        assert rule_ids(findings) == ["REP601"]

    def test_comment_beyond_lookback_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            # higher is better
            x = 1
            y = 2
            z = 3
            report = {"speedup_vs_serial": 2.0}
            """,
            rules=[RatioDirectionRule()],
            name="benchmarks/bench_mod.py",
        )
        assert rule_ids(findings) == ["REP601"]

    def test_non_benchmark_module_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            report = {"speedup_vs_serial": 2.0}
            """,
            rules=[RatioDirectionRule()],
        )
        assert findings == []

    def test_non_ratio_keys_ignored(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            report = {"mb_per_s": 2.0, "seconds": 1.0}
            """,
            rules=[RatioDirectionRule()],
            name="benchmarks/bench_mod.py",
        )
        assert findings == []


class TestSuppressions:
    def test_justified_suppression_silences(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            x = np.random.rand(3)  # lint: disable=REP101 -- fixture exercising the RNG itself
            """,
            rules=[RngRule()],
        )
        assert findings == []

    def test_unjustified_suppression_is_reported_and_ignored(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            x = np.random.rand(3)  # lint: disable=REP101
            """,
            rules=[RngRule()],
        )
        assert sorted(rule_ids(findings)) == ["REP001", "REP101"]

    def test_suppression_is_per_rule(self, tmp_path):
        # Disabling REP102 does not silence REP101 on the same line.
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            x = np.random.rand(3)  # lint: disable=REP102 -- wrong rule on purpose
            """,
            rules=[RngRule()],
        )
        assert rule_ids(findings) == ["REP101"]

    def test_syntax_error_reports_rep000(self, tmp_path):
        findings = lint_snippet(tmp_path, "def broken(:\n")
        assert rule_ids(findings) == ["REP000"]


# --------------------------------------------------------------------------- #
# CLI behaviour + end-to-end
# --------------------------------------------------------------------------- #
class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys, monkeypatch):
        path = tmp_path / "clean.py"
        path.write_text("VALUE = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main([str(path), "--no-registry-check"]) == 0
        assert "1 file(s) clean" in capsys.readouterr().err

    def test_violation_exits_one(self, tmp_path, capsys, monkeypatch):
        path = tmp_path / "bad.py"
        path.write_text("import random\n")
        monkeypatch.chdir(tmp_path)
        assert main([str(path), "--no-registry-check"]) == 1
        assert "REP101" in capsys.readouterr().out

    def test_missing_path_exits_two(self, capsys):
        assert main(["definitely/missing.py"]) == 2

    def test_explain_known_rule(self, capsys):
        assert main(["--explain", "REP501"]) == 0
        out = capsys.readouterr().out
        assert "REP501" in out and "guarded-by" in out

    def test_explain_unknown_rule_exits_two(self, capsys):
        assert main(["--explain", "REP999"]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP101", "REP102", "REP201", "REP301", "REP401", "REP501"):
            assert rule_id in out

    def test_live_tree_is_clean(self, capsys):
        """End to end: the shipped src/repro tree has zero findings."""
        assert main([str(SRC_ROOT / "repro")]) == 0

    def test_runs_without_numpy(self):
        """The parse-only rules work with numpy/scipy import-blocked."""
        blocker = (
            "import sys\n"
            "class Blocker:\n"
            "    def find_module(self, name, path=None):\n"
            "        if name.split('.')[0] in ('numpy', 'scipy'):\n"
            "            return self\n"
            "    def load_module(self, name):\n"
            "        raise ImportError('blocked: ' + name)\n"
            "sys.meta_path.insert(0, Blocker())\n"
            "from repro.devtools.lint import main\n"
            f"sys.exit(main([{str(SRC_ROOT / 'repro')!r}]))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", blocker],
            env={"PYTHONPATH": str(SRC_ROOT)},
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "REP401 skipped" in result.stderr
