"""Tests for the DynaRisc ISA, assembler, emulator and disassembler."""

import pytest

from repro.errors import AssemblyError, ExecutionLimitExceeded, InvalidInstructionError
from repro.dynarisc import (
    DynaRiscAssembler,
    DynaRiscEmulator,
    Opcode,
    PAPER_TABLE1_MNEMONICS,
    Register,
    disassemble,
)
from repro.dynarisc.isa import Instruction, OPCODES_WITH_IMMEDIATE


class TestISA:
    def test_exactly_23_instructions(self):
        assert len(Opcode) == 23

    def test_paper_table1_instructions_present(self):
        """Every mnemonic shown in the paper's Table 1 exists in the ISA."""
        for mnemonic in PAPER_TABLE1_MNEMONICS:
            assert mnemonic in Opcode.__members__

    def test_sixteen_bit_registers_and_pointer_registers(self):
        assert Register.R0 == 0 and Register.R7 == 7
        assert Register.D0 == 8 and Register.D3 == 11
        assert Register.SP == 12

    def test_instruction_encode_decode_roundtrip(self):
        for opcode in Opcode:
            immediate = 0x1234 if opcode in OPCODES_WITH_IMMEDIATE else None
            instruction = Instruction(opcode, rd=3, rs=5, immediate=immediate)
            encoded = instruction.encode()
            word = encoded[0] | (encoded[1] << 8)
            decoded = Instruction.decode_word(word, immediate)
            assert decoded == instruction

    def test_immediate_required_and_forbidden(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LDI, rd=0)
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rd=0, rs=1, immediate=5)


def run_source(source, input_data=b"", trace=False):
    program = DynaRiscAssembler().assemble(source)
    emulator = DynaRiscEmulator(program.code, input_data=input_data, trace=trace)
    output = emulator.run(program.entry)
    return emulator, output


class TestEmulatorSemantics:
    def test_arithmetic_and_flags(self):
        emulator, _ = run_source("""
        start:
            LDI r0, #10
            LDI r1, #3
            SUB r0, r1
            HALT
        """)
        assert emulator.registers[0] == 7
        assert not emulator.flags.zero and not emulator.flags.carry

    def test_sub_borrow_sets_carry(self):
        emulator, _ = run_source("""
        start:
            LDI r0, #3
            LDI r1, #10
            SUB r0, r1
            HALT
        """)
        assert emulator.registers[0] == (3 - 10) & 0xFFFF
        assert emulator.flags.carry and emulator.flags.negative

    def test_adc_uses_carry(self):
        emulator, _ = run_source("""
        start:
            LDI r0, #0xFFFF
            LDI r1, #1
            ADD r0, r1          ; overflows, sets carry
            LDI r2, #5
            LDI r3, #6
            ADC r2, r3          ; 5 + 6 + 1
            HALT
        """)
        assert emulator.registers[2] == 12

    def test_mul_sets_carry_on_overflow(self):
        emulator, _ = run_source("""
        start:
            LDI r0, #300
            LDI r1, #300
            MUL r0, r1
            HALT
        """)
        assert emulator.registers[0] == (300 * 300) & 0xFFFF
        assert emulator.flags.carry

    def test_logic_and_shifts(self):
        emulator, _ = run_source("""
        start:
            LDI r0, #0x0F0F
            LDI r1, #0x00FF
            AND r0, r1
            LDI r2, #4
            LSL r0, r2
            LDI r3, #0x8000
            LDI r4, #1
            LSR r3, r4
            LDI r5, #0x8001
            ROR r5, r4
            NOT r1
            HALT
        """)
        assert emulator.registers[0] == 0x00F0
        assert emulator.registers[3] == 0x4000
        assert emulator.registers[5] == 0xC000
        assert emulator.registers[1] == 0xFF00

    def test_asr_preserves_sign(self):
        emulator, _ = run_source("""
        start:
            LDI r0, #0x8000
            LDI r1, #3
            ASR r0, r1
            HALT
        """)
        assert emulator.registers[0] == 0xF000

    def test_memory_load_store(self):
        emulator, _ = run_source("""
        start:
            LDI d0, #buffer
            LDI r0, #0xAB
            STM r0, [d0]
            LDM r1, [d0]
            HALT
        buffer: .byte 0
        """)
        assert emulator.registers[1] == 0xAB

    def test_jcond_and_loop(self):
        emulator, output = run_source("""
        start:
            LDI r0, #5
            LDI r1, #1
            LDI d3, #OUTPUT_PORT
        loop:
            STM r0, [d3]
            SUB r0, r1
            JCOND ne, loop
            HALT
        """)
        assert output == bytes([5, 4, 3, 2, 1])

    def test_call_and_ret_use_stack(self):
        emulator, output = run_source("""
        start:
            LDI d3, #OUTPUT_PORT
            CALL emit
            CALL emit
            HALT
        emit:
            LDI r0, #0x21
            STM r0, [d3]
            RET
        """)
        assert output == b"!!"
        assert emulator.registers[Register.SP] == 0x7F00

    def test_input_port_sets_carry_at_eof(self):
        emulator, output = run_source("""
        start:
            LDI d2, #INPUT_PORT
            LDI d3, #OUTPUT_PORT
        loop:
            LDM r0, [d2]
            JCOND cs, done
            STM r0, [d3]
            JUMP loop
        done:
            HALT
        """, input_data=b"xyz")
        assert output == b"xyz"

    def test_invalid_opcode_raises(self):
        emulator = DynaRiscEmulator(b"\xff\xff")
        with pytest.raises(InvalidInstructionError):
            emulator.run(0)

    def test_step_limit(self):
        program = DynaRiscAssembler().assemble("start: JUMP start")
        emulator = DynaRiscEmulator(program.code, step_limit=50)
        with pytest.raises(ExecutionLimitExceeded):
            emulator.run(0)

    def test_trace_records_instructions(self):
        emulator, _ = run_source("start: LDI r0, #1\nHALT", trace=True)
        assert [entry.opcode for entry in emulator.trace_log] == [Opcode.LDI, Opcode.HALT]


class TestAssembler:
    def test_directives(self):
        program = DynaRiscAssembler().assemble("""
        start: HALT
        data:  .byte 1, 2, 0x10
               .word 0x1234
               .ascii "hi"
               .space 2
               .equ answer, 42
        """)
        assert program.code[2:5] == bytes([1, 2, 0x10])
        assert program.code[5:7] == bytes([0x34, 0x12])
        assert program.code[7:9] == b"hi"
        assert program.symbols["answer"] == 42

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            DynaRiscAssembler().assemble("FROB r0, r1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            DynaRiscAssembler().assemble("ADD r0")

    def test_immediate_needs_hash(self):
        with pytest.raises(AssemblyError):
            DynaRiscAssembler().assemble("LDI r0, 5")

    def test_labels_are_case_insensitive(self):
        program = DynaRiscAssembler().assemble("Start: JUMP START")
        assert program.entry == 0


class TestDisassembler:
    def test_roundtrip_through_disassembly(self):
        source = """
        start:
            LDI r0, #0x1234
            ADD r0, r1
            LDM r2, [d0]
            STM r2, [d1]
            JCOND eq, start
            CALL start
            RET
            HALT
        """
        program = DynaRiscAssembler().assemble(source)
        listing = disassemble(program.code)
        # Reassembling the listing (addresses become literal targets) must
        # produce identical machine code.
        cleaned = "\n".join(line.split(":", 1)[1] for line in listing.splitlines())
        reassembled = DynaRiscAssembler().assemble(cleaned)
        assert reassembled.code == program.code

    def test_truncated_stream_rejected(self):
        with pytest.raises(InvalidInstructionError):
            disassemble(b"\x00")
