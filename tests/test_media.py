"""Tests for the analog media channels, distortions and image I/O."""

import numpy as np
import pytest

from repro.errors import MediaCapacityError, MediaError
from repro.media import (
    CinemaFilmChannel,
    DistortionProfile,
    DNAChannel,
    MicrofilmChannel,
    PaperChannel,
    read_pgm,
    write_pgm,
)
from repro.media.distortions import (
    OFFICE_SCAN,
    add_dust,
    apply_lens_curvature,
    apply_scanner_jitter,
    to_bitonal,
)
from repro.media.film import MICROFILM_REEL, ReelModel
from repro.media.paper import a4_pixels


class TestImageIO:
    def test_pgm_roundtrip(self, tmp_path, rng):
        image = rng.integers(0, 256, size=(37, 53), dtype=np.uint8)
        path = tmp_path / "frame.pgm"
        write_pgm(path, image)
        assert np.array_equal(read_pgm(path), image)

    def test_non_pgm_rejected(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_bytes(b"P6 1 1 255 \x00\x00\x00")
        with pytest.raises(MediaError):
            read_pgm(path)


class TestDistortions:
    def make_image(self):
        return np.full((200, 200), 255, dtype=np.uint8)

    def test_dust_adds_spots(self, rng):
        image = add_dust(self.make_image(), spots=20, max_radius=3, rng=rng)
        assert (image == 0).sum() > 0

    def test_lens_curvature_moves_edge_pixels(self):
        image = self.make_image()
        image[:, 30] = 0                        # a straight vertical line off-centre
        warped = apply_lens_curvature(image, 0.05)
        assert not np.array_equal(warped, image)

    def test_jitter_shifts_rows(self, rng):
        image = self.make_image()
        image[:, 100] = 0
        shifted = apply_scanner_jitter(image, amplitude=3.0, rng=rng)
        assert not np.array_equal(shifted, image)

    def test_bitonal_only_two_levels(self, rng):
        image = rng.integers(0, 256, size=(50, 50), dtype=np.uint8)
        assert set(np.unique(to_bitonal(image))) <= {0, 255}

    def test_zero_severity_profile_is_identity(self, rng):
        image = rng.integers(0, 256, size=(60, 60), dtype=np.uint8)
        assert np.array_equal(DistortionProfile().apply(image), image)

    def test_scaled_profile(self):
        scaled = OFFICE_SCAN.scaled(0.5)
        assert scaled.noise_sigma == pytest.approx(OFFICE_SCAN.noise_sigma * 0.5)
        assert scaled.dust_spots == round(OFFICE_SCAN.dust_spots * 0.5)

    def test_profile_is_deterministic_for_a_seed(self, rng):
        image = np.full((80, 80), 255, dtype=np.uint8)
        profile = DistortionProfile(noise_sigma=5.0, dust_spots=5, seed=9)
        assert np.array_equal(profile.apply(image), profile.apply(image))


class TestChannels:
    def test_paper_frame_is_a4_at_600dpi(self):
        channel = PaperChannel()
        assert channel.frame_shape == a4_pixels(600)
        height, width = channel.frame_shape
        assert abs(height - 7016) <= 1 and abs(width - 4960) <= 1

    def test_record_centres_and_scan_returns_frames(self, rng):
        channel = PaperChannel(dpi=72, distortion=DistortionProfile())
        emblem = rng.integers(0, 256, size=(100, 100), dtype=np.uint8)
        frames = channel.record([emblem])
        assert frames[0].shape == a4_pixels(72)
        outcome = channel.scan(frames)
        assert len(outcome.images) == 1

    def test_oversized_emblem_rejected(self):
        channel = PaperChannel(dpi=72)
        with pytest.raises(MediaCapacityError):
            channel.record([np.zeros((10000, 10000), dtype=np.uint8)])

    def test_microfilm_is_bitonal_and_upscaled(self):
        channel = MicrofilmChannel(distortion=DistortionProfile(bitonal_output=True))
        frames = channel.record([np.full((100, 100), 128, dtype=np.uint8)])
        assert set(np.unique(frames[0])) <= {0, 255}
        scans = channel.scan(frames).images
        assert scans[0].shape[0] > frames[0].shape[0]

    def test_cinema_scans_at_twice_the_recording_resolution(self):
        channel = CinemaFilmChannel(distortion=DistortionProfile())
        frames = channel.record([np.zeros((100, 100), dtype=np.uint8)])
        scan = channel.scan(frames).images[0]
        assert scan.shape == (frames[0].shape[0] * 2, frames[0].shape[1] * 2)

    def test_reel_capacity_model_matches_paper_order_of_magnitude(self):
        """§4/§5: 1.3 GB per 66 m reel; ~800 reels per terabyte."""
        dense_frame_payload = 124_406     # dense microfilm profile payload
        capacity = MICROFILM_REEL.reel_capacity_bytes(dense_frame_payload)
        assert 0.8e9 < capacity < 1.5e9
        reels_per_tb = MICROFILM_REEL.reels_for(10**12, dense_frame_payload)
        assert 600 < reels_per_tb < 1300

    def test_reel_model_rejects_zero_payload(self):
        with pytest.raises(ValueError):
            ReelModel(10, 10).reels_for(100, 0)


class TestDNAChannel:
    def test_roundtrip_with_noise(self):
        channel = DNAChannel(coverage=10, dropout_rate=0.05, substitution_rate=0.002, seed=11)
        payload = bytes(range(256)) * 3
        assert channel.roundtrip(payload, seed=11) == payload

    def test_total_dropout_detected(self):
        channel = DNAChannel(coverage=1, dropout_rate=1.0, seed=1)
        with pytest.raises(MediaError):
            channel.roundtrip(b"hello world")

    def test_density_claim_recorded(self):
        assert DNAChannel.THEORETICAL_DENSITY_BYTES_PER_MM3 == 1e18
