"""Fault-injection matrix for the archival/restore pipeline.

Corrupts and erases emblems across the simulated media channels
(:mod:`repro.media`: paper, microfilm, cinema film, plus direct image
distortions) and asserts that

* restoration succeeds — bit for bit — while the damage stays within the
  RS(255,223) inner-code budget (16 symbol errors per block) plus the
  17+3 outer-code budget (3 lost emblems per group of 20), and
* beyond the budget the failure is *clean*: ``UncorrectableBlockError`` at
  the block level, ``MissingEmblemError`` at the group level — never a
  silently corrupted payload.
"""

import numpy as np
import pytest

from repro import ArchiveConfig, TEST_PROFILE, open_archive, open_restore
from repro.errors import (
    ECCError,
    MissingEmblemError,
    UncorrectableBlockError,
)
from repro.media.channel import MediaChannel
from repro.media.distortions import (
    AGED_MICROFILM,
    CINEMA_SCAN,
    OFFICE_SCAN,
    add_dust,
    add_scratches,
)
from repro.media.paper import PaperChannel
from repro.mocoder.emblem import Emblem
from repro.mocoder.outer_code import GROUP_DATA, GROUP_PARITY
from repro.pipeline import ArchivePipeline


def random_payload(size: int, seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    return bytes(rng.integers(0, 256, size=size, dtype=np.uint8))


@pytest.fixture(scope="module")
def payload() -> bytes:
    # 4200 B under STORE -> 22 data emblems -> two outer-code groups.
    return random_payload(4200, seed=2021)


@pytest.fixture(scope="module")
def archive(payload):
    with open_archive(ArchiveConfig(media="test", codec="store")) as writer:
        writer.write(payload)
    return writer.archive


def damaged_copy(archive, replace: dict[int, np.ndarray]):
    """A shallow archive copy with some data emblem images replaced."""
    from repro import MicrOlonysArchive

    images = list(archive.data_emblem_images)
    for index, image in replace.items():
        images[index] = image
    return MicrOlonysArchive(
        manifest=archive.manifest,
        data_emblem_images=images,
        system_emblem_images=archive.system_emblem_images,
        bootstrap_text=archive.bootstrap_text,
    )


def blank_like(image: np.ndarray) -> np.ndarray:
    return np.full_like(image, 255)


# --------------------------------------------------------------------------- #
# Media-channel matrix: write + scan through each analog medium
# --------------------------------------------------------------------------- #
class TestMediaChannelMatrix:
    """The emblems survive each medium's write/scan degradation chain.

    The small test emblems hold a single RS block and enjoy none of the
    interleaving protection of the full-size profiles, so each channel runs
    a proportionally scaled distortion (the full-severity sweeps live in
    the robustness benchmark).  The film channels keep their semantics —
    bitonal recording, scanner upsampling, the real distortion profiles —
    but on emblem-sized frames: the real 21-35 MPix film frames cost tens
    of seconds each and live in the film benchmarks instead.
    """

    CHANNELS = {
        "paper": lambda: PaperChannel(
            dpi=72, distortion=OFFICE_SCAN.scaled(0.25, name="office-small")
        ),
        "microfilm": lambda: MediaChannel(
            name="miniature microfilm",
            frame_shape=(480, 400),
            scan_scale=1.28,
            write_bitonal=True,
            distortion=AGED_MICROFILM.scaled(0.25, name="microfilm-small"),
        ),
        "cinema": lambda: MediaChannel(
            name="miniature cinema film",
            frame_shape=(480, 400),
            scan_scale=2.0,
            write_bitonal=False,
            distortion=CINEMA_SCAN.scaled(0.25, name="cinema-small"),
        ),
    }

    @pytest.mark.parametrize("channel_name", sorted(CHANNELS))
    @pytest.mark.parametrize("seed", [1, 17])
    def test_roundtrip_through_channel(self, archive, payload, channel_name, seed):
        channel = self.CHANNELS[channel_name]()
        scans = channel.roundtrip(archive.data_emblem_images, seed=seed)
        system_scans = channel.roundtrip(archive.system_emblem_images, seed=seed)
        result = open_restore(archive).read_from_scans(
            scans,
            system_images=system_scans,
            payload_kind="binary",
            manifest=archive.manifest,
        )
        assert result.payload == payload
        assert result.data_report.emblems_failed == 0


# --------------------------------------------------------------------------- #
# Inner-code budget: symbol errors within one emblem
# --------------------------------------------------------------------------- #
class TestInnerCodeBudget:
    def test_dust_within_budget_is_corrected(self, archive, payload):
        rng = np.random.default_rng(5)
        dusted = add_dust(archive.data_emblem_images[2], spots=4, max_radius=2, rng=rng)
        result = open_restore(damaged_copy(archive, {2: dusted})).read()
        assert result.payload == payload

    def test_scratch_within_budget_is_corrected(self, archive, payload):
        rng = np.random.default_rng(12)
        scratched = add_scratches(
            archive.data_emblem_images[4], scratches=1, max_width=1, rng=rng
        )
        result = open_restore(damaged_copy(archive, {4: scratched})).read()
        assert result.payload == payload

    def test_beyond_sixteen_errors_raises_uncorrectable(self, archive):
        """Trashing the data area breaches RS(255,223) cleanly."""
        image = archive.data_emblem_images[0].copy()
        rng = np.random.default_rng(3)
        height, width = image.shape
        # Scramble a large patch in the middle of the data area: far more
        # than 16 damaged symbols in the emblem's single RS block.
        y0, x0 = height // 2, width // 4
        image[y0:y0 + 80, x0:x0 + 160] = rng.integers(
            0, 256, size=(80, 160), dtype=np.uint8
        ) // 128 * 255
        with pytest.raises(UncorrectableBlockError):
            Emblem.from_image(TEST_PROFILE.spec, image)

    def test_archive_survives_one_uncorrectable_emblem(self, archive, payload):
        """An emblem lost to inner-code overflow is an outer-code erasure."""
        image = archive.data_emblem_images[0].copy()
        rng = np.random.default_rng(3)
        height, width = image.shape
        image[height // 2:height // 2 + 80, width // 4:width // 4 + 160] = (
            rng.integers(0, 256, size=(80, 160), dtype=np.uint8) // 128 * 255
        )
        result = open_restore(damaged_copy(archive, {0: image})).read()
        assert result.payload == payload
        assert result.data_report.emblems_failed == 1
        assert result.data_report.groups_reconstructed >= 1


# --------------------------------------------------------------------------- #
# Outer-code budget: whole-emblem erasures
# --------------------------------------------------------------------------- #
class TestOuterCodeBudget:
    def test_three_erasures_per_group_recover(self, archive, payload):
        """Exactly GROUP_PARITY erasures in one group is the design limit."""
        erased = {
            index: blank_like(archive.data_emblem_images[index])
            for index in range(GROUP_PARITY)
        }
        result = open_restore(damaged_copy(archive, erased)).read()
        assert result.payload == payload
        assert result.data_report.groups_reconstructed >= 1

    def test_erasures_across_groups_recover(self, archive, payload):
        """Each group tolerates its own budget independently."""
        group_size = GROUP_DATA + GROUP_PARITY
        erased_indices = [0, 1, 2, group_size, group_size + 1, group_size + 2]
        erased = {
            index: blank_like(archive.data_emblem_images[index])
            for index in erased_indices
        }
        result = open_restore(damaged_copy(archive, erased)).read()
        assert result.payload == payload
        assert result.data_report.groups_reconstructed == 2

    def test_four_erasures_in_one_group_fail_cleanly(self, archive):
        erased = {
            index: blank_like(archive.data_emblem_images[index])
            for index in range(GROUP_PARITY + 1)
        }
        with pytest.raises(MissingEmblemError):
            open_restore(damaged_copy(archive, erased)).read()

    def test_no_outer_code_means_no_erasure_budget(self, payload):
        with open_archive(
            ArchiveConfig(media="test", codec="store", outer_code=False)
        ) as writer:
            writer.write(payload)
        bare = writer.archive
        erased = {0: blank_like(bare.data_emblem_images[0])}
        with pytest.raises(ECCError):
            open_restore(damaged_copy(bare, erased)).read()


# --------------------------------------------------------------------------- #
# Segmented archives: damage stays contained in its segment
# --------------------------------------------------------------------------- #
class TestSegmentedFaults:
    @pytest.fixture(scope="class")
    def segmented(self):
        payload = random_payload(9_000, seed=404)
        archive = ArchivePipeline(
            TEST_PROFILE, dbcoder_profile="store", segment_size=3_000
        ).archive_bytes(payload, payload_kind="binary")
        assert len(archive.manifest.segments) == 3
        return archive, payload

    def test_corrupted_segment_restores_via_per_segment_decode(self, segmented):
        archive, payload = segmented
        middle = archive.manifest.segments[1]
        erased = {
            middle.emblem_start: blank_like(
                archive.data_emblem_images[middle.emblem_start]
            )
        }
        result = open_restore(damaged_copy(archive, erased)).read()
        assert result.payload == payload
        assert result.data_report.groups_reconstructed == 1

    def test_every_segment_tolerates_its_own_budget(self, segmented):
        archive, payload = segmented
        erased = {}
        for record in archive.manifest.segments:
            for offset in range(GROUP_PARITY):
                index = record.emblem_start + offset
                erased[index] = blank_like(archive.data_emblem_images[index])
        result = open_restore(damaged_copy(archive, erased)).read()
        assert result.payload == payload
        assert result.data_report.groups_reconstructed == len(archive.manifest.segments)

    def test_one_segment_beyond_budget_fails_cleanly(self, segmented):
        archive, _ = segmented
        record = archive.manifest.segments[2]
        erased = {
            record.emblem_start + offset: blank_like(
                archive.data_emblem_images[record.emblem_start + offset]
            )
            for offset in range(GROUP_PARITY + 1)
        }
        with pytest.raises(MissingEmblemError):
            open_restore(damaged_copy(archive, erased)).read()

    def test_segmented_channel_roundtrip(self, segmented):
        archive, payload = segmented
        result = open_restore(archive).read_via_channel(seed=8)
        assert result.payload == payload
