"""Tests for the archived DynaRisc decoder programs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dbcoder.dbcoder import DBCoder, Profile
from repro.dbcoder.lz77 import lzss_compress
from repro.dynarisc.emulator import DynaRiscEmulator
from repro.dynarisc.programs import get_program, get_source, program_names
from repro.mocoder.manchester import manchester_encode_fast
from repro.util.bits import bytes_to_bits


def run_program(name: str, input_data: bytes, step_limit: int = 200_000_000) -> bytes:
    program = get_program(name)
    emulator = DynaRiscEmulator(program.code, input_data=input_data, step_limit=step_limit)
    return emulator.run(program.entry)


class TestRegistry:
    def test_all_programs_assemble(self):
        for name in program_names():
            assert len(get_program(name).code) > 0

    def test_unknown_program_raises(self):
        with pytest.raises(KeyError):
            get_source("no_such_program")

    def test_expected_decoders_are_archived(self):
        names = program_names()
        assert "lzss_decoder" in names          # the DBCoder decoder
        assert "manchester_unpack" in names     # the MOCoder cell decoder


class TestXorStream:
    def test_xor_is_involution(self):
        payload = b"universal layout emulation"
        once = run_program("xor_stream", bytes([0x37]) + payload)
        twice = run_program("xor_stream", bytes([0x37]) + once)
        assert twice == payload

    def test_empty_input(self):
        assert run_program("xor_stream", b"") == b""


class TestChecksum:
    def test_matches_python_sum(self):
        data = bytes(range(200))
        assert run_program("checksum", data) == (sum(data) & 0xFFFF).to_bytes(2, "little")

    def test_wraps_modulo_65536(self):
        data = b"\xff" * 300
        assert run_program("checksum", data) == (sum(data) & 0xFFFF).to_bytes(2, "little")


class TestRLEDecoder:
    def test_decodes_pairs(self):
        assert run_program("rle_decoder", bytes([3, 65, 1, 66, 2, 67])) == b"AAABCC"

    def test_empty_stream(self):
        assert run_program("rle_decoder", b"") == b""


class TestLZSSDecoder:
    """The archived DBCoder decoder must agree with the Python reference."""

    def test_decodes_compressed_sql(self, sql_sample):
        compressed = DBCoder(Profile.PORTABLE).compress_payload(sql_sample)
        assert run_program("lzss_decoder", compressed) == sql_sample

    def test_decodes_incompressible_data(self, rng):
        data = bytes(rng.integers(0, 256, size=600, dtype=np.uint8))
        compressed = lzss_compress(data)
        assert run_program("lzss_decoder", compressed) == data

    def test_handles_overlapping_matches(self):
        data = b"ab" * 300
        compressed = lzss_compress(data)
        assert len(compressed) < len(data) // 4
        assert run_program("lzss_decoder", compressed) == data

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=0, max_size=400))
    def test_agrees_with_reference_on_arbitrary_data(self, data):
        compressed = lzss_compress(data)
        assert run_program("lzss_decoder", compressed) == data


class TestManchesterUnpack:
    """The archived MOCoder cell decoder must agree with the Python reference."""

    def test_unpacks_cells_back_to_bytes(self, rng):
        payload = bytes(rng.integers(0, 256, size=64, dtype=np.uint8))
        cells = manchester_encode_fast(bytes_to_bits(payload))
        output = run_program("manchester_unpack", cells.tobytes())
        assert output == payload

    def test_partial_final_byte_is_dropped(self):
        cells = manchester_encode_fast(np.array([1, 0, 1], dtype=np.uint8))
        assert run_program("manchester_unpack", cells.tobytes()) == b""
