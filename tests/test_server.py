"""The archive service: cache, repository concurrency, and the HTTP surface.

Three layers, tested mostly through their public faces:

* :class:`repro.server.SegmentCache` — LRU behaviour under a byte budget,
  and the content-addressing contract (a cached read is byte-for-byte the
  uncached read, across appends: hypothesis checks it);
* :class:`repro.server.ArchiveRepository` — writer-lock serialization
  (queue or fail fast), reader pooling across committed generations,
  concurrent readers over both storage backends;
* :class:`repro.server.ReproServer` — the full HTTP round trip must be
  byte-identical to the in-process session API, honour ``Range``, map
  library errors onto 400/404/409/416, and report cache hits in ``/stats``.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import open_restore
from repro.errors import ArchiveBusyError, ArchiveNotFoundError, BadRequestError
from repro.server import ArchiveRepository, ReproServer, SegmentCache
from repro.server.http import HTTPError, parse_range
from repro.server.repository import validate_archive_name

# --------------------------------------------------------------------------- #
# SegmentCache
# --------------------------------------------------------------------------- #
class TestSegmentCache:
    def test_roundtrip_and_counters(self):
        cache = SegmentCache(budget_bytes=1024)
        assert cache.get("k") is None
        cache.put("k", b"payload")
        assert cache.get("k") == b"payload"
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1 and stats["current_bytes"] == 7
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_evicts_least_recently_used_under_budget(self):
        cache = SegmentCache(budget_bytes=100)
        cache.put("a", b"x" * 40)
        cache.put("b", b"y" * 40)
        assert cache.get("a") is not None  # refresh "a": now "b" is LRU
        cache.put("c", b"z" * 40)  # 120 bytes > 100: one eviction
        assert cache.get("b") is None
        assert cache.get("a") == b"x" * 40
        assert cache.get("c") == b"z" * 40
        assert cache.current_bytes <= 100
        assert cache.stats()["evictions"] == 1

    def test_oversized_entry_is_declined(self):
        cache = SegmentCache(budget_bytes=10)
        cache.put("big", b"x" * 11)
        assert len(cache) == 0
        assert cache.get("big") is None

    def test_zero_budget_disables_caching_but_keeps_counters(self):
        cache = SegmentCache(budget_bytes=0)
        cache.put("k", b"data")
        assert cache.get("k") is None
        assert cache.stats()["misses"] == 1

    def test_replacing_a_key_accounts_bytes_once(self):
        cache = SegmentCache(budget_bytes=100)
        cache.put("k", b"x" * 60)
        cache.put("k", b"y" * 30)
        assert cache.current_bytes == 30
        assert cache.get("k") == b"y" * 30

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            SegmentCache(budget_bytes=-1)


# --------------------------------------------------------------------------- #
# HTTP Range parsing
# --------------------------------------------------------------------------- #
class TestParseRange:
    def test_forms(self):
        assert parse_range("bytes=0-9", 100) == (0, 10)
        assert parse_range("bytes=90-", 100) == (90, 10)
        assert parse_range("bytes=-4", 100) == (96, 4)
        assert parse_range("bytes=-400", 100) == (0, 100)  # suffix clamps
        assert parse_range("bytes=50-9999", 100) == (50, 50)  # end clamps

    @pytest.mark.parametrize("header", ["bytes=100-", "bytes=2000-2100", "bytes=-0"])
    def test_unsatisfiable_is_416(self, header):
        with pytest.raises(HTTPError) as excinfo:
            parse_range(header, 100)
        assert excinfo.value.status == 416

    @pytest.mark.parametrize("header", ["bytes=9-5", "bytes=-", "octets=1-2", "1-2"])
    def test_malformed_is_400(self, header):
        with pytest.raises(HTTPError) as excinfo:
            parse_range(header, 100)
        assert excinfo.value.status == 400


# --------------------------------------------------------------------------- #
# Archive naming
# --------------------------------------------------------------------------- #
class TestArchiveNames:
    @pytest.mark.parametrize("name", ["db", "a-b_c.d", "X" * 64, "7zip"])
    def test_legal(self, name):
        assert validate_archive_name(name) == name

    @pytest.mark.parametrize(
        "name", ["", "../evil", "a/b", ".hidden", "-dash", "X" * 65, "a b"]
    )
    def test_illegal(self, name):
        with pytest.raises(BadRequestError):
            validate_archive_name(name)


# --------------------------------------------------------------------------- #
# ArchiveRepository
# --------------------------------------------------------------------------- #
@pytest.fixture
def repository(tmp_path):
    repo = ArchiveRepository(tmp_path / "root", cache_bytes=1 << 20, lock_timeout=10.0)
    yield repo
    repo.close()


def _upload(repo, name, payload, *, store="container", **extra):
    session = repo.begin_upload(name, store=store, media="test", segment_size=2048, **extra)
    try:
        session.write(payload)
    except BaseException:
        session.abort()
        raise
    return session.commit()


class TestRepository:
    @pytest.mark.parametrize("store", ["container", "directory"])
    def test_upload_then_ranged_reads(self, repository, make_payload, store):
        payload = make_payload(20_000, seed=11)
        summary = _upload(repository, f"arc-{store}", payload, store=store)
        assert summary["payload_bytes"] == len(payload)
        name = f"arc-{store}"
        data, total = repository.read_range(name, 0, None)
        assert data == payload and total == len(payload)
        data, _ = repository.read_range(name, 5000, 1234)
        assert data == payload[5000:6234]
        # beyond-the-end reads clamp like slicing
        data, _ = repository.read_range(name, len(payload) - 10, 10_000)
        assert data == payload[-10:]

    def test_missing_archive_raises(self, repository):
        with pytest.raises(ArchiveNotFoundError):
            repository.read_range("nope", 0, 1)
        with pytest.raises(ArchiveNotFoundError):
            repository.begin_append("nope")

    def test_existing_archive_needs_replace(self, repository, make_payload):
        payload = make_payload(4_000, seed=3)
        _upload(repository, "dup", payload)
        with pytest.raises(ArchiveBusyError):
            _upload(repository, "dup", payload)
        replaced = make_payload(6_000, seed=4)
        _upload(repository, "dup", replaced, replace=True)
        data, _ = repository.read_range("dup", 0, None)
        assert data == replaced

    def test_directory_layout_refuses_replace(self, repository, make_payload):
        _upload(repository, "dirarc", make_payload(2_000, seed=5), store="directory")
        with pytest.raises(BadRequestError):
            _upload(repository, "dirarc", b"x", store="directory", replace=True)
        with pytest.raises(BadRequestError):
            _upload(repository, "dirarc", b"x", store="container", replace=True)

    def test_append_visible_to_later_reads(self, repository, make_payload):
        base = make_payload(10_000, seed=6)
        tail = make_payload(3_000, seed=7)
        _upload(repository, "grow", base)
        # Warm the reader pool and the cache on generation 0 first.
        data, _ = repository.read_range("grow", 0, None)
        assert data == base
        session = repository.begin_append("grow")
        session.write(tail)
        summary = session.commit()
        assert summary["generation"] == 1
        data, total = repository.read_range("grow", 0, None)
        assert data == base + tail and total == len(base) + len(tail)
        # The cache served generation-0 segments only by content hash, so
        # nothing stale can have crossed the append; the straddling slice
        # proves it.
        straddle, _ = repository.read_range("grow", len(base) - 100, 200)
        assert straddle == (base + tail)[len(base) - 100 : len(base) + 100]

    def test_repeated_reads_hit_the_cache(self, repository, make_payload):
        payload = make_payload(16_000, seed=8)
        _upload(repository, "hot", payload)
        first, _ = repository.read_range("hot", 4096, 2048)
        before = repository.cache.stats()
        second, _ = repository.read_range("hot", 4096, 2048)
        after = repository.cache.stats()
        assert first == second == payload[4096:6144]
        assert after["hits"] > before["hits"]

    def test_append_nowait_fails_fast_then_recovers(self, repository, make_payload):
        _upload(repository, "busy", make_payload(4_000, seed=9))
        holder = repository.begin_append("busy")
        try:
            with pytest.raises(ArchiveBusyError):
                repository.begin_append("busy", wait=False)
        finally:
            holder.abort()
        # The lock was released by abort: a new writer gets in.
        session = repository.begin_append("busy", wait=False)
        session.write(b"tail")
        session.commit()
        assert repository.verify("busy").ok

    def test_concurrent_appends_serialize(self, repository, make_payload):
        base = make_payload(6_000, seed=10)
        _upload(repository, "race", base)
        tails = {"one": make_payload(2_000, seed=21), "two": make_payload(2_000, seed=22)}
        errors: list[BaseException] = []

        def append(tail: bytes) -> None:
            try:
                session = repository.begin_append("race")
                session.write(tail)
                session.commit()
            except BaseException as exc:  # re-raised in the main thread below
                errors.append(exc)

        threads = [threading.Thread(target=append, args=(t,)) for t in tails.values()]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        data, _ = repository.read_range("race", 0, None)
        assert data in (
            base + tails["one"] + tails["two"],
            base + tails["two"] + tails["one"],
        )
        report = repository.verify("race")
        assert report.ok, report.errors

    def test_concurrent_reads_two_archives_two_backends(self, repository, make_payload):
        payloads = {
            "cont": make_payload(24_000, seed=31),
            "dirs": make_payload(24_000, seed=32),
        }
        _upload(repository, "cont", payloads["cont"], store="container")
        _upload(repository, "dirs", payloads["dirs"], store="directory")
        jobs = [
            (name, offset)
            for name in payloads
            for offset in range(0, 24_000, 1_500)
        ]

        def read(job: "tuple[str, int]") -> bool:
            name, offset = job
            data, total = repository.read_range(name, offset, 1_000)
            return total == 24_000 and data == payloads[name][offset : offset + 1_000]

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(read, jobs))
        assert all(results)

    def test_list_and_stats(self, repository, make_payload):
        _upload(repository, "one", make_payload(2_000, seed=41))
        _upload(repository, "two", make_payload(2_000, seed=42), store="directory")
        listing = {entry["name"]: entry for entry in repository.list_archives()}
        assert set(listing) == {"one", "two"}
        assert listing["one"]["store"] == "container"
        assert listing["two"]["store"] == "directory"
        stats = repository.stats()
        assert stats["archives"] == 2
        assert stats["segment_cache"]["budget_bytes"] == 1 << 20


# --------------------------------------------------------------------------- #
# Cached reads == uncached reads, byte for byte (the content-address contract)
# --------------------------------------------------------------------------- #
_HYPO_TOTAL = 20_000


@pytest.fixture(scope="module")
def cached_and_plain_readers(tmp_path_factory, write_archive, make_payload):
    """One archive, one cache-backed reader, one plain reader, one truth."""
    target = tmp_path_factory.mktemp("server-hypo") / "hypo.ule"
    payload = make_payload(_HYPO_TOTAL, seed=77)
    write_archive(target, payload, store="container", segment_size=1024)
    cache = SegmentCache(budget_bytes=256 * 1024)
    cached = open_restore(target, segment_cache=cache)
    plain = open_restore(target)
    yield cached, plain, payload
    cached.close()
    plain.close()


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    offset=st.integers(min_value=0, max_value=_HYPO_TOTAL + 64),
    length=st.integers(min_value=0, max_value=4096),
)
def test_cached_reads_equal_uncached_reads(cached_and_plain_readers, offset, length):
    cached, plain, payload = cached_and_plain_readers
    expected = payload[offset : offset + length]
    assert cached.read_range(offset, length) == expected
    assert plain.read_range(offset, length) == expected


def test_cache_is_actually_exercised(cached_and_plain_readers):
    cached, _plain, _payload = cached_and_plain_readers
    cached.read_range(0, _HYPO_TOTAL)
    before = cached.segments_cached
    cached.read_range(0, _HYPO_TOTAL)
    assert cached.segments_cached > before


# --------------------------------------------------------------------------- #
# The HTTP surface
# --------------------------------------------------------------------------- #
@pytest.fixture
def served(tmp_path):
    repository = ArchiveRepository(tmp_path / "root", cache_bytes=1 << 20, lock_timeout=10.0)
    server = ReproServer(repository, port=0)
    handle = server.start_in_thread()
    yield server
    handle.stop()


def _request(server, method, path, body=None, headers=None):
    """(status, headers, body) for one request against the test server."""
    request = urllib.request.Request(
        f"{server.base_url}{path}", data=body, method=method, headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


class TestHTTP:
    def test_roundtrip_is_byte_identical_to_session_api(
        self, served, make_payload, tmp_path
    ):
        payload = make_payload(30_000, seed=51)
        status, _, body = _request(
            served, "PUT", "/archives/demo?media=test&segment_size=2048", body=payload
        )
        assert status == 201, body
        summary = json.loads(body)
        assert summary["payload_bytes"] == len(payload)
        assert summary["generation"] == 0

        # Full read over HTTP == the original bytes.
        status, headers, data = _request(served, "GET", "/archives/demo/data")
        assert status == 200 and data == payload
        assert headers["X-Archive-Bytes"] == str(len(payload))

        # ...and == what the in-process session API restores from the same
        # on-disk artefact the server wrote.
        with open_restore(served.repository.root / "demo.ule") as reader:
            assert reader.read_range(0, len(payload)) == payload

        # Ranged read: correct status, header and bytes.
        status, headers, part = _request(
            served, "GET", "/archives/demo/data", headers={"Range": "bytes=1000-2999"}
        )
        assert status == 206
        assert headers["Content-Range"] == f"bytes 1000-2999/{len(payload)}"
        assert part == payload[1000:3000]

        # Append over HTTP, then read the combined payload back.
        tail = make_payload(5_000, seed=52)
        status, _, body = _request(served, "POST", "/archives/demo/append", body=tail)
        assert status == 200, body
        assert json.loads(body)["generation"] == 1
        status, _, combined = _request(served, "GET", "/archives/demo/data")
        assert combined == payload + tail

        # Verify + inspect agree with what we uploaded.
        status, _, body = _request(served, "GET", "/archives/demo/verify")
        report = json.loads(body)
        assert status == 200 and report["ok"], report
        status, _, body = _request(served, "GET", "/archives/demo/inspect")
        summary = json.loads(body)
        assert summary["generation"] == 1
        assert summary["payload_bytes"] == len(payload) + len(tail)

        # Listing names it; stats show cache traffic from the reads above.
        status, _, body = _request(served, "GET", "/archives")
        names = [entry["name"] for entry in json.loads(body)["archives"]]
        assert names == ["demo"]
        _request(served, "GET", "/archives/demo/data", headers={"Range": "bytes=1000-2999"})
        status, _, body = _request(served, "GET", "/stats")
        stats = json.loads(body)
        assert stats["repository"]["segment_cache"]["hits"] > 0
        assert stats["requests"]["routes"]["GET /archives/{name}/data"]["requests"] >= 3

    def test_error_mapping(self, served, make_payload):
        status, _, _ = _request(served, "GET", "/archives/missing/data")
        assert status == 404
        status, _, _ = _request(served, "GET", "/archives/missing/inspect")
        assert status == 404
        status, _, body = _request(served, "PUT", "/archives/bad?media=no-such-media", body=b"x")
        assert status == 400, body
        status, _, _ = _request(served, "GET", "/nowhere")
        assert status == 404
        status, _, _ = _request(served, "DELETE", "/archives/missing/data")
        assert status == 405

        payload = make_payload(4_000, seed=53)
        assert _request(served, "PUT", "/archives/ok", body=payload)[0] == 201
        status, _, _ = _request(
            served, "GET", "/archives/ok/data", headers={"Range": "bytes=999999-"}
        )
        assert status == 416
        status, _, _ = _request(
            served, "GET", "/archives/ok/data", headers={"Range": "elephants=1-2"}
        )
        assert status == 400
        # A second upload without replace=1 conflicts.
        status, _, _ = _request(served, "PUT", "/archives/ok", body=payload)
        assert status == 409

    def test_path_traversal_is_rejected(self, served):
        connection = http.client.HTTPConnection("127.0.0.1", served.port, timeout=30)
        try:
            connection.request("PUT", "/archives/%2e%2e%2fevil", body=b"x")
            response = connection.getresponse()
            assert response.status in (400, 404)
            response.read()
        finally:
            connection.close()
        assert not (served.repository.root.parent / "evil.ule").exists()

    def test_append_nowait_conflict_is_409(self, served, make_payload):
        payload = make_payload(4_000, seed=54)
        assert _request(served, "PUT", "/archives/locked", body=payload)[0] == 201
        holder = served.repository.begin_append("locked")
        try:
            status, _, body = _request(
                served, "POST", "/archives/locked/append?nowait=1", body=b"tail"
            )
            assert status == 409, body
        finally:
            holder.abort()
        status, _, _ = _request(served, "POST", "/archives/locked/append", body=b"tail")
        assert status == 200

    def test_concurrent_http_appends_serialize(self, served, make_payload):
        base = make_payload(6_000, seed=55)
        assert _request(served, "PUT", "/archives/multi", body=base)[0] == 201
        tails = [make_payload(1_500, seed=60 + i) for i in range(2)]

        def append(tail: bytes) -> int:
            return _request(served, "POST", "/archives/multi/append", body=tail)[0]

        with ThreadPoolExecutor(max_workers=2) as pool:
            statuses = list(pool.map(append, tails))
        assert statuses == [200, 200]
        _, _, data = _request(served, "GET", "/archives/multi/data")
        assert data in (base + tails[0] + tails[1], base + tails[1] + tails[0])
        _, _, body = _request(served, "GET", "/archives/multi/verify")
        assert json.loads(body)["ok"]

    def test_concurrent_http_reads_across_archives(self, served, make_payload):
        payloads = {
            "r1": make_payload(20_000, seed=71),
            "r2": make_payload(20_000, seed=72),
        }
        for name, payload in payloads.items():
            query = "?media=test&segment_size=2048" + ("&store=directory" if name == "r2" else "")
            assert _request(served, "PUT", f"/archives/{name}{query}", body=payload)[0] == 201

        def read(job: "tuple[str, int]") -> bool:
            name, offset = job
            status, _, data = _request(
                served,
                "GET",
                f"/archives/{name}/data",
                headers={"Range": f"bytes={offset}-{offset + 999}"},
            )
            return status == 206 and data == payloads[name][offset : offset + 1000]

        jobs = [(name, offset) for name in payloads for offset in range(0, 20_000, 1_250)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(read, jobs))
        assert all(results)

    def test_chunked_upload(self, served, make_payload):
        payload = make_payload(10_000, seed=81)
        connection = http.client.HTTPConnection("127.0.0.1", served.port, timeout=60)
        try:
            connection.putrequest("PUT", "/archives/chunked?media=test&segment_size=2048")
            connection.putheader("Transfer-Encoding", "chunked")
            connection.endheaders()
            for start in range(0, len(payload), 3_000):
                piece = payload[start : start + 3_000]
                connection.send(f"{len(piece):x}\r\n".encode() + piece + b"\r\n")
            connection.send(b"0\r\n\r\n")
            response = connection.getresponse()
            body = response.read()
            assert response.status == 201, body
        finally:
            connection.close()
        _, _, data = _request(served, "GET", "/archives/chunked/data")
        assert data == payload


# --------------------------------------------------------------------------- #
# Slowloris defense: request timeouts
# --------------------------------------------------------------------------- #
@pytest.fixture
def served_with_timeout(tmp_path):
    repository = ArchiveRepository(tmp_path / "root", cache_bytes=1 << 20, lock_timeout=10.0)
    server = ReproServer(repository, port=0, request_timeout=0.5)
    handle = server.start_in_thread()
    yield server
    handle.stop()


class TestRequestTimeouts:
    def test_default_timeout_is_enabled(self):
        from repro.server.app import DEFAULT_REQUEST_TIMEOUT

        assert DEFAULT_REQUEST_TIMEOUT == 30.0

    def test_stalled_headers_get_408_and_a_close(self, served_with_timeout):
        import socket

        with socket.create_connection(
            ("127.0.0.1", served_with_timeout.port), timeout=10
        ) as client:
            client.sendall(b"GET /stats HTTP/1.1\r\nHost: loca")  # ...and stall
            client.settimeout(10)
            blob = b""
            while True:
                chunk = client.recv(4096)
                if not chunk:
                    break  # server closed the connection
                blob += chunk
        assert b"408" in blob.split(b"\r\n", 1)[0]
        assert b"timed out waiting for request headers" in blob

    def test_stalled_body_gets_408(self, served_with_timeout):
        import socket

        with socket.create_connection(
            ("127.0.0.1", served_with_timeout.port), timeout=10
        ) as client:
            client.sendall(
                b"PUT /archives/slow?media=test HTTP/1.1\r\n"
                b"Host: localhost\r\n"
                b"Content-Length: 50000\r\n"
                b"\r\n"
                b"only a few bytes arrive"  # ...then the body stalls
            )
            client.settimeout(10)
            blob = b""
            while True:
                chunk = client.recv(4096)
                if not chunk:
                    break
                blob += chunk
        assert b"408" in blob.split(b"\r\n", 1)[0]
        assert b"timed out waiting for request body bytes" in blob

    def test_prompt_requests_are_unaffected(self, served_with_timeout, make_payload):
        payload = make_payload(5_000, seed=83)
        status, _, body = _request(
            served_with_timeout,
            "PUT",
            "/archives/prompt?media=test&segment_size=2048",
            body=payload,
        )
        assert status == 201, body
        status, _, data = _request(served_with_timeout, "GET", "/archives/prompt/data")
        assert status == 200
        assert data == payload

    def test_timeout_can_be_disabled(self, tmp_path):
        repository = ArchiveRepository(tmp_path / "root", cache_bytes=1 << 20, lock_timeout=10.0)
        server = ReproServer(repository, port=0, request_timeout=None)
        assert server.request_timeout is None
