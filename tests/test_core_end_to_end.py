"""End-to-end tests of the Micr'Olonys archival / restoration flows (Figure 2)."""

import numpy as np
import pytest

from repro import (
    Archiver,
    MicrOlonysArchive,
    Restorer,
    TEST_PROFILE,
    generate_tpch,
)
from repro.core.profiles import PROFILES, get_profile
from repro.core.restorer import restore_archive_directory
from repro.dbcoder import Profile
from repro.errors import RestorationError


@pytest.fixture(scope="module")
def tiny_database():
    return generate_tpch(0.00002, seed=11)


@pytest.fixture(scope="module")
def tiny_archive(tiny_database):
    return Archiver(TEST_PROFILE).archive_database(tiny_database)


class TestProfiles:
    def test_all_profiles_have_positive_capacity(self):
        for profile in PROFILES.values():
            assert profile.spec.payload_capacity > 0

    def test_paper_profile_hits_the_50kb_per_page_density(self):
        """E1: ~1.2 MB on ~26 pages is ~50 kB per page."""
        profile = get_profile("paper-a4-600dpi")
        assert 55_000 < profile.spec.payload_capacity < 70_000

    def test_emblems_fit_their_channel_frames(self):
        for profile in PROFILES.values():
            channel = profile.channel()
            assert profile.spec.pixels_y <= channel.frame_shape[0]
            assert profile.spec.pixels_x <= channel.frame_shape[1]

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            get_profile("punch-cards")


class TestArchiver:
    def test_archive_contains_all_artifacts(self, tiny_archive):
        assert tiny_archive.data_emblem_images
        assert tiny_archive.system_emblem_images
        assert "VERISC" in tiny_archive.bootstrap_text.upper()
        assert tiny_archive.manifest.data_emblem_count == len(tiny_archive.data_emblem_images)

    def test_emblem_count_estimate_close_to_actual(self, tiny_database, tiny_archive):
        archiver = Archiver(TEST_PROFILE)
        # The estimate ignores compression, so it upper-bounds the actual count.
        from repro.dbms import db_dump
        estimate = archiver.estimate_emblems(len(db_dump(tiny_database).encode()))
        assert estimate >= tiny_archive.manifest.data_emblem_count


class TestRestorer:
    def test_direct_restore_is_bit_exact(self, tiny_database, tiny_archive):
        result = Restorer(TEST_PROFILE).restore(tiny_archive)
        assert result.database == tiny_database
        assert result.archive_text.startswith("--")

    def test_restore_through_the_scanner(self, tiny_database, tiny_archive):
        result = Restorer(TEST_PROFILE).restore_via_channel(tiny_archive, seed=5)
        assert result.database == tiny_database
        assert result.data_report.emblems_failed == 0

    def test_restore_with_emulated_decoder(self, tiny_database, tiny_archive):
        result = Restorer(TEST_PROFILE, decode_mode="dynarisc").restore(tiny_archive)
        assert result.database == tiny_database
        assert result.emulator_steps > 0

    def test_restore_with_missing_emblems(self, tiny_database, tiny_archive):
        damaged = MicrOlonysArchive(
            manifest=tiny_archive.manifest,
            data_emblem_images=tiny_archive.data_emblem_images[1:],
            system_emblem_images=tiny_archive.system_emblem_images,
            bootstrap_text=tiny_archive.bootstrap_text,
        )
        result = Restorer(TEST_PROFILE).restore(damaged)
        assert result.database == tiny_database
        assert result.data_report.groups_reconstructed >= 1

    def test_dense_profile_requires_reference_decoder(self, tiny_database):
        archive = Archiver(TEST_PROFILE, dbcoder_profile=Profile.DENSE).archive_database(
            tiny_database
        )
        assert Restorer(TEST_PROFILE).restore(archive).database == tiny_database
        with pytest.raises(RestorationError):
            Restorer(TEST_PROFILE, decode_mode="dynarisc").restore(archive)

    def test_invalid_decode_mode(self):
        with pytest.raises(ValueError):
            Restorer(TEST_PROFILE, decode_mode="magic")

    def test_raw_byte_payload_archive(self, rng):
        """The microfilm/cinema experiments archive an image file, not SQL."""
        payload = bytes(rng.integers(0, 256, size=2000, dtype=np.uint8))
        archive = Archiver(TEST_PROFILE).archive_bytes(payload, payload_kind="tiff")
        result = Restorer(TEST_PROFILE).restore(archive)
        assert result.payload == payload
        assert result.database is None


class TestArchivePersistence:
    def test_save_and_load_directory(self, tiny_database, tiny_archive, tmp_path):
        directory = tiny_archive.save(tmp_path / "archive")
        loaded = MicrOlonysArchive.load(directory)
        assert loaded.manifest == tiny_archive.manifest
        assert len(loaded.data_emblem_images) == len(tiny_archive.data_emblem_images)
        result = restore_archive_directory(str(directory), "test-small")
        assert result.database == tiny_database

    def test_loading_a_non_archive_directory_fails(self, tmp_path):
        from repro.errors import ArchiveError
        with pytest.raises(ArchiveError):
            MicrOlonysArchive.load(tmp_path)
