"""End-to-end tests of the Micr'Olonys archival / restoration flows (Figure 2).

Exercises the flows through the :mod:`repro.api` facade (the canonical entry
point); the deprecated ``Archiver`` / ``Restorer`` shims have their own
round-trip coverage in ``tests/test_api.py``.
"""

import numpy as np
import pytest

from repro import (
    ArchiveConfig,
    MicrOlonysArchive,
    TEST_PROFILE,
    db_dump,
    generate_tpch,
    open_archive,
    open_restore,
)
from repro.core.profiles import PROFILES, get_profile
from repro.core.restorer import restore_archive_directory
from repro.errors import ConfigError, RestorationError, UnknownNameError


@pytest.fixture(scope="module")
def tiny_database():
    return generate_tpch(0.00002, seed=11)


@pytest.fixture(scope="module")
def tiny_archive(tiny_database):
    with open_archive(ArchiveConfig(media="test", payload_kind="sql")) as writer:
        writer.write(db_dump(tiny_database).encode("utf-8"))
    return writer.archive


class TestProfiles:
    def test_all_profiles_have_positive_capacity(self):
        for profile in PROFILES.values():
            assert profile.spec.payload_capacity > 0

    def test_paper_profile_hits_the_50kb_per_page_density(self):
        """E1: ~1.2 MB on ~26 pages is ~50 kB per page."""
        profile = get_profile("paper-a4-600dpi")
        assert 55_000 < profile.spec.payload_capacity < 70_000

    def test_emblems_fit_their_channel_frames(self):
        for profile in PROFILES.values():
            channel = profile.channel()
            assert profile.spec.pixels_y <= channel.frame_shape[0]
            assert profile.spec.pixels_x <= channel.frame_shape[1]

    def test_profile_aliases_resolve(self):
        assert get_profile("paper") is get_profile("paper-a4-600dpi")
        assert get_profile("test") is TEST_PROFILE

    def test_unknown_profile(self):
        # UnknownNameError subclasses both ReproError and KeyError.
        with pytest.raises(UnknownNameError):
            get_profile("punch-cards")
        with pytest.raises(KeyError):
            get_profile("punch-cards")


class TestArchiveSession:
    def test_archive_contains_all_artifacts(self, tiny_archive):
        assert tiny_archive.data_emblem_images
        assert tiny_archive.system_emblem_images
        assert "VERISC" in tiny_archive.bootstrap_text.upper()
        assert tiny_archive.manifest.data_emblem_count == len(tiny_archive.data_emblem_images)

    def test_emblem_count_estimate_close_to_actual(self, tiny_database, tiny_archive):
        config = ArchiveConfig(media="test")
        # The estimate ignores compression, so it upper-bounds the actual count.
        estimate = config.estimate_emblems(len(db_dump(tiny_database).encode("utf-8")))
        assert estimate >= tiny_archive.manifest.data_emblem_count


class TestRestoreSession:
    def test_direct_restore_is_bit_exact(self, tiny_database, tiny_archive):
        result = open_restore(tiny_archive).read()
        assert result.database == tiny_database
        assert result.archive_text.startswith("--")

    def test_restore_through_the_scanner(self, tiny_database, tiny_archive):
        result = open_restore(tiny_archive).read_via_channel(seed=5)
        assert result.database == tiny_database
        assert result.data_report.emblems_failed == 0

    def test_restore_with_emulated_decoder(self, tiny_database, tiny_archive):
        result = open_restore(tiny_archive, decode_mode="dynarisc").read()
        assert result.database == tiny_database
        assert result.emulator_steps > 0

    def test_restore_with_missing_emblems(self, tiny_database, tiny_archive):
        damaged = MicrOlonysArchive(
            manifest=tiny_archive.manifest,
            data_emblem_images=tiny_archive.data_emblem_images[1:],
            system_emblem_images=tiny_archive.system_emblem_images,
            bootstrap_text=tiny_archive.bootstrap_text,
        )
        result = open_restore(damaged).read()
        assert result.database == tiny_database
        assert result.data_report.groups_reconstructed >= 1

    def test_dense_codec_requires_reference_decoder(self, tiny_database):
        config = ArchiveConfig(media="test", codec="dense", payload_kind="sql")
        with open_archive(config) as writer:
            writer.write(db_dump(tiny_database).encode("utf-8"))
        archive = writer.archive
        assert open_restore(archive).read().database == tiny_database
        with pytest.raises(RestorationError):
            open_restore(archive, decode_mode="dynarisc").read()

    def test_invalid_decode_mode(self, tiny_archive):
        with pytest.raises(ConfigError):
            open_restore(tiny_archive, decode_mode="magic")

    def test_raw_byte_payload_archive(self, rng):
        """The microfilm/cinema experiments archive an image file, not SQL."""
        payload = bytes(rng.integers(0, 256, size=2000, dtype=np.uint8))
        with open_archive(ArchiveConfig(media="test"), payload_kind="tiff") as writer:
            writer.write(payload)
        result = open_restore(writer.archive).read()
        assert result.payload == payload
        assert result.database is None


class TestArchivePersistence:
    def test_save_and_load_directory(self, tiny_database, tiny_archive, tmp_path):
        directory = tiny_archive.save(tmp_path / "archive")
        loaded = MicrOlonysArchive.load(directory)
        assert loaded.manifest == tiny_archive.manifest
        assert len(loaded.data_emblem_images) == len(tiny_archive.data_emblem_images)
        result = restore_archive_directory(str(directory), "test-small")
        assert result.database == tiny_database

    def test_open_restore_from_directory(self, tiny_database, tiny_archive, tmp_path):
        directory = tiny_archive.save(tmp_path / "archive-api")
        # The manifest supplies media + codec: the archive is self-describing.
        result = open_restore(directory).read()
        assert result.database == tiny_database

    def test_loading_a_non_archive_directory_fails(self, tmp_path):
        from repro.errors import ArchiveError
        with pytest.raises(ArchiveError):
            MicrOlonysArchive.load(tmp_path)
