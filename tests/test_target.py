"""The unified target-URI grammar: one parser for every archive spelling.

:func:`repro.store.parse_target` is the single front door through which
``open_archive`` / ``open_restore`` / the CLI / the server route every
target.  These tests pin the grammar itself: each scheme parses to the
right backend, legacy bare-path spellings keep working behind a
:class:`DeprecationWarning`, unknown schemes raise the registry-style
did-you-mean error, contradictions between a URI scheme and an explicit
``store=`` override fail loudly, and the ``vol:`` sub-grammar validates
its geometry eagerly.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

from repro.errors import StoreError, UnknownNameError
from repro.store import TargetSpec, VolumeSetSpec, parse_target
from repro.store.target import parse_member


# --------------------------------------------------------------------------- #
# Explicit schemes
# --------------------------------------------------------------------------- #
class TestSchemes:
    def test_dir_scheme(self):
        spec = parse_target("dir:/tmp/archive")
        assert spec.scheme == "dir"
        assert spec.store == "directory"
        assert spec.target == "/tmp/archive"
        assert not spec.is_remote
        assert spec.uri() == "dir:/tmp/archive"

    def test_file_scheme(self):
        spec = parse_target("file:/tmp/archive.ule")
        assert spec.store == "container"
        assert spec.target == "/tmp/archive.ule"
        assert spec.uri() == "file:/tmp/archive.ule"

    def test_mem_scheme_keeps_full_key(self):
        spec = parse_target("mem:scratch")
        assert spec.store == "memory"
        # The memory backend's native target *is* the mem:-prefixed key.
        assert spec.target == "mem:scratch"
        assert spec.uri() == "mem:scratch"

    @pytest.mark.parametrize("url", [
        "http://localhost:8080/archives/demo",
        "https://archive.example.org/archives/demo",
    ])
    def test_http_is_remote_with_no_local_backend(self, url):
        spec = parse_target(url)
        assert spec.is_remote
        assert spec.store is None
        assert spec.target == url
        assert spec.uri() == url

    def test_schemes_are_case_insensitive(self):
        assert parse_target("DIR:/tmp/x").store == "directory"
        assert parse_target("MEM:x").store == "memory"

    def test_specs_pass_through(self):
        spec = parse_target("dir:/tmp/archive")
        assert parse_target(spec) is spec

    def test_unknown_scheme_suggests_a_close_match(self):
        with pytest.raises(UnknownNameError) as excinfo:
            parse_target("dri:/tmp/archive")
        message = str(excinfo.value)
        assert "dri" in message
        assert "dir" in message  # did-you-mean suggestion

    def test_unknown_scheme_lists_choices(self):
        with pytest.raises(UnknownNameError) as excinfo:
            parse_target("zzq:/tmp/archive")
        for scheme in ("dir", "file", "mem", "vol"):
            assert scheme in str(excinfo.value)


# --------------------------------------------------------------------------- #
# Legacy spellings: bare strings warn, Paths stay silent
# --------------------------------------------------------------------------- #
class TestLegacySpellings:
    def test_bare_string_warns_and_infers_directory(self, tmp_path):
        target = tmp_path / "archive"
        target.mkdir()
        with pytest.warns(DeprecationWarning, match="bare target path"):
            spec = parse_target(str(target))
        assert spec.store == "directory"
        assert spec.target == str(target)

    def test_bare_string_warns_and_infers_container(self, tmp_path):
        target = tmp_path / "archive.ule"
        target.write_bytes(b"stub")
        with pytest.warns(DeprecationWarning):
            spec = parse_target(str(target))
        assert spec.store == "container"

    def test_missing_bare_string_falls_back_to_default_store(self, tmp_path):
        with pytest.warns(DeprecationWarning):
            spec = parse_target(str(tmp_path / "new"), default_store="directory")
        assert spec.store == "directory"

    def test_missing_bare_string_without_default_has_no_store(self, tmp_path):
        with pytest.warns(DeprecationWarning):
            spec = parse_target(str(tmp_path / "new"))
        assert spec.store is None

    def test_path_objects_do_not_warn(self, tmp_path):
        target = tmp_path / "archive"
        target.mkdir()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            spec = parse_target(target)
        assert spec.store == "directory"
        assert spec.target == str(target)

    def test_explicit_store_suppresses_the_warning(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            spec = parse_target(str(tmp_path / "new"), store="directory")
        assert spec.store == "directory"

    def test_store_aliases_resolve(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert parse_target(str(tmp_path), store="dir").store == "directory"
            assert parse_target(str(tmp_path), store="file").store == "container"


# --------------------------------------------------------------------------- #
# store= override interactions
# --------------------------------------------------------------------------- #
class TestStoreOverride:
    def test_matching_override_is_accepted(self):
        spec = parse_target("dir:/tmp/archive", store="directory")
        assert spec.store == "directory"

    def test_conflicting_override_is_rejected(self):
        with pytest.raises(StoreError, match="drop one of the two spellings"):
            parse_target("dir:/tmp/archive", store="container")

    def test_remote_target_rejects_any_store(self):
        with pytest.raises(StoreError, match="served over HTTP"):
            parse_target("http://localhost/archives/x", store="directory")

    def test_volumes_store_needs_a_vol_uri(self, tmp_path):
        with pytest.raises(StoreError, match="needs a vol: target URI"):
            parse_target(str(tmp_path / "set"), store="volumes")


# --------------------------------------------------------------------------- #
# The vol: sub-grammar
# --------------------------------------------------------------------------- #
class TestVolumeGrammar:
    def test_full_spelling(self):
        spec = parse_target("vol:k=4,m=2,stripe=3:/mnt/a,/mnt/b,/mnt/c,/mnt/d,/mnt/e,/mnt/f")
        assert spec.store == "volumes"
        volumes = spec.volumes
        assert isinstance(volumes, VolumeSetSpec)
        assert volumes.data == 4
        assert volumes.parity == 2
        assert volumes.stripe == 3
        assert volumes.members == (
            "/mnt/a", "/mnt/b", "/mnt/c", "/mnt/d", "/mnt/e", "/mnt/f",
        )
        # The canonical URI round-trips through the parser unchanged.
        assert parse_target(spec.uri()).volumes == volumes

    def test_options_are_optional(self):
        spec = parse_target("vol:/mnt/a,/mnt/b,/mnt/c")
        assert spec.volumes is not None
        assert spec.volumes.data is None
        assert spec.volumes.parity is None
        assert spec.volumes.stripe is None

    def test_with_volume_defaults_resolves_geometry(self):
        spec = parse_target("vol:/mnt/a,/mnt/b,/mnt/c")
        resolved = spec.with_volume_defaults(parity=1, stripe=2)
        assert resolved.volumes is not None
        assert resolved.volumes.data == 2
        assert resolved.volumes.parity == 1
        assert resolved.volumes.stripe == 2

    def test_partial_options_fill_from_member_count(self):
        spec = parse_target("vol:m=2:/a,/b,/c,/d,/e").with_volume_defaults(1, 1)
        assert spec.volumes is not None
        assert (spec.volumes.data, spec.volumes.parity) == (3, 2)
        spec = parse_target("vol:k=3:/a,/b,/c,/d").with_volume_defaults(1, 1)
        assert spec.volumes is not None
        assert (spec.volumes.data, spec.volumes.parity) == (3, 1)

    def test_count_mismatch_is_rejected_eagerly(self):
        with pytest.raises(StoreError, match="must match the member list"):
            parse_target("vol:k=4,m=2:/a,/b,/c")

    def test_too_few_members(self):
        with pytest.raises(StoreError, match="at least 2 member volumes"):
            parse_target("vol:k=1,m=1:/only")

    def test_unknown_option(self):
        with pytest.raises(StoreError, match="unknown volume-set option"):
            parse_target("vol:q=3:/a,/b")

    def test_non_integer_option(self):
        with pytest.raises(StoreError, match="must be an integer"):
            parse_target("vol:k=four,m=2:/a,/b,/c,/d,/e,/f")

    @pytest.mark.parametrize("member", [
        "vol:/x,/y", "http://host/archives/x", "https://host/archives/x",
    ])
    def test_nested_remote_or_vol_members_rejected(self, member):
        with pytest.raises(StoreError, match="must be local"):
            parse_target(f"vol:{member},/mnt/b")

    def test_zero_parity_rejected_on_resolve(self):
        with pytest.raises(StoreError, match="at least 1 data and 1 parity"):
            parse_target("vol:k=2,m=0:/a,/b")

    def test_members_may_carry_their_own_schemes(self):
        spec = parse_target("vol:k=2,m=1:dir:/mnt/a,file:/mnt/b.ule,mem:c")
        assert spec.volumes is not None
        assert parse_member(spec.volumes.members[0]) == ("directory", "/mnt/a")
        assert parse_member(spec.volumes.members[1]) == ("container", "/mnt/b.ule")
        assert parse_member(spec.volumes.members[2]) == ("memory", "mem:c")

    def test_bare_members_sniff_by_shape(self, tmp_path):
        existing_dir = tmp_path / "a"
        existing_dir.mkdir()
        existing_file = tmp_path / "b"
        existing_file.write_bytes(b"stub")
        assert parse_member(str(existing_dir)) == ("directory", str(existing_dir))
        assert parse_member(str(existing_file)) == ("container", str(existing_file))
        assert parse_member(str(tmp_path / "new.ule")) == ("container", str(tmp_path / "new.ule"))
        assert parse_member(str(tmp_path / "new")) == ("directory", str(tmp_path / "new"))


# --------------------------------------------------------------------------- #
# The high-level API routes every spelling through the parser
# --------------------------------------------------------------------------- #
class TestApiIntegration:
    def test_uri_targets_round_trip_through_open_archive(self, tmp_path, make_payload):
        from repro.api import ArchiveConfig, open_archive, open_restore

        payload = make_payload(4_000, seed=77)
        uri = f"dir:{tmp_path / 'archive'}"
        config = ArchiveConfig(media="test", segment_size=1024)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with open_archive(config, target=uri) as writer:
                writer.write(payload)
            with open_restore(uri) as reader:
                assert reader.read().payload == payload

    def test_legacy_bare_string_still_works_but_warns(self, tmp_path, make_payload):
        from repro.api import ArchiveConfig, open_archive, open_restore

        payload = make_payload(3_000, seed=78)
        target = str(tmp_path / "archive")
        config = ArchiveConfig(media="test", segment_size=1024)
        with pytest.warns(DeprecationWarning, match="bare target path"):
            with open_archive(config, target=target) as writer:
                writer.write(payload)
        with pytest.warns(DeprecationWarning, match="bare target path"):
            with open_restore(target) as reader:
                assert reader.read().payload == payload

    def test_path_objects_stay_silent_in_open_archive(self, tmp_path, make_payload):
        from repro.api import ArchiveConfig, open_archive, open_restore

        payload = make_payload(3_000, seed=79)
        target = tmp_path / "archive"
        config = ArchiveConfig(media="test", segment_size=1024)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with open_archive(config, target=target) as writer:
                writer.write(payload)
            with open_restore(target) as reader:
                assert reader.read().payload == payload

    def test_open_restore_rejects_remote_targets(self):
        from repro.api import open_restore
        from repro.errors import StoreError

        with pytest.raises(StoreError, match="remote target"):
            open_restore("http://localhost:1/archives/demo")
