"""Tests for Manchester coding, emblem geometry, the outer code and MOCoder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    EmblemDetectionError,
    EmblemFormatError,
    MissingEmblemError,
)
from repro.mocoder import (
    Emblem,
    EmblemKind,
    EmblemSpec,
    MOCoder,
    OuterCode,
    manchester_decode,
    manchester_encode,
)
from repro.mocoder.emblem import (
    EmblemHeader,
    build_emblem,
    otsu_threshold,
    render_emblem_batch,
)
from repro.mocoder.manchester import (
    manchester_decode_analog,
    manchester_encode_fast,
    manchester_encode_rows,
)


class TestManchester:
    def test_two_cells_per_bit(self):
        bits = np.array([1, 0, 1], dtype=np.uint8)
        assert manchester_encode(bits).size == 6

    def test_every_bit_boundary_has_a_transition(self, rng):
        bits = rng.integers(0, 2, size=500, dtype=np.uint8)
        cells = manchester_encode(bits)
        boundaries = cells[2::2] != cells[1:-1:2]
        assert boundaries.all()

    def test_fast_encoder_matches_reference(self, rng):
        bits = rng.integers(0, 2, size=777, dtype=np.uint8)
        assert np.array_equal(manchester_encode(bits), manchester_encode_fast(bits))

    def test_decode_is_inverse(self, rng):
        bits = rng.integers(0, 2, size=333, dtype=np.uint8)
        assert np.array_equal(manchester_decode(manchester_encode(bits)), bits)

    def test_analog_decode_survives_brightness_drift(self, rng):
        bits = rng.integers(0, 2, size=400, dtype=np.uint8)
        cells = manchester_encode(bits).astype(np.float64)
        values = np.where(cells == 1, 40.0, 210.0)
        values += np.linspace(0, 60, values.size)       # slow fading gradient
        assert np.array_equal(manchester_decode_analog(values), bits)

    @given(st.lists(st.integers(0, 1), max_size=300))
    def test_roundtrip_property(self, bit_list):
        bits = np.array(bit_list, dtype=np.uint8)
        assert np.array_equal(manchester_decode(manchester_encode_fast(bits)), bits)

    def test_row_batched_encoder_matches_fast(self, rng):
        """Each row of the batched encoder equals the single-row encoder."""
        for rows, width in [(1, 1), (4, 7), (5, 257), (3, 0)]:
            bits = rng.integers(0, 2, size=(rows, width), dtype=np.uint8)
            for level in (0, 1):
                batched = manchester_encode_rows(bits, level)
                assert batched.shape == (rows, 2 * width)
                for row in range(rows):
                    assert np.array_equal(
                        batched[row], manchester_encode_fast(bits[row], level)
                    )

    def test_row_batched_encoder_rejects_non_matrix_input(self):
        with pytest.raises(ValueError, match="rows, bits"):
            manchester_encode_rows(np.zeros(8, dtype=np.uint8))


class TestOuterCode:
    def test_parameters_match_the_paper(self):
        code = OuterCode()
        assert code.data_shards == 17 and code.parity_shards == 3

    def test_any_three_missing_emblems_recovered(self, rng):
        code = OuterCode()
        payloads = [bytes(rng.integers(0, 256, size=90, dtype=np.uint8)) for _ in range(17)]
        shards = payloads + code.encode_group(payloads)
        for missing in ([0, 1, 2], [5, 16, 19], [17, 18, 19], [0, 10, 18]):
            trial = [None if index in missing else shards[index] for index in range(20)]
            assert code.reconstruct_group(trial) == payloads

    def test_four_missing_is_too_many(self, rng):
        code = OuterCode()
        payloads = [bytes(rng.integers(0, 256, size=40, dtype=np.uint8)) for _ in range(17)]
        shards = payloads + code.encode_group(payloads)
        for index in (0, 1, 2, 3):
            shards[index] = None
        with pytest.raises(MissingEmblemError):
            code.reconstruct_group(shards)

    def test_short_group_with_absent_shards(self, rng):
        code = OuterCode()
        payloads = [bytes(rng.integers(0, 256, size=30, dtype=np.uint8)) for _ in range(5)]
        parity = code.encode_group(payloads)
        shards = payloads + [b""] * 12 + parity
        shards[2] = None
        recovered = code.reconstruct_group(shards, payload_length=30)
        assert recovered[:5] == payloads

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**16), missing=st.sets(st.integers(0, 19), min_size=0, max_size=3))
    def test_property_any_loss_pattern_up_to_three(self, seed, missing):
        rng = np.random.default_rng(seed)
        code = OuterCode()
        payloads = [bytes(rng.integers(0, 256, size=25, dtype=np.uint8)) for _ in range(17)]
        shards = payloads + code.encode_group(payloads)
        trial = [None if index in missing else shards[index] for index in range(20)]
        assert code.reconstruct_group(trial) == payloads


class TestOuterCodeParityPaths:
    def test_encode_group_matches_rs_reference_on_long_payloads(self, rng):
        """Long groups take the bit-sliced product; short ones the gather.

        Every byte position of a group is one row of the outer RS code's
        parity computation, so the LFSR reference encoder (run row-wise on
        the transposed payload matrix) is the ground truth for both regimes.
        """
        code = OuterCode()
        for length in (5, 700):
            payloads = [
                bytes(rng.integers(0, 256, size=length, dtype=np.uint8))
                for _ in range(code.data_shards)
            ]
            parity = code.encode_group(payloads)
            matrix = np.stack([np.frombuffer(p, dtype=np.uint8) for p in payloads])
            reference = code._rs._encode_blocks_reference(
                matrix.T.astype(np.int32)
            )[:, code.data_shards:].astype(np.uint8)
            assert parity == [
                reference[:, i].tobytes() for i in range(code.parity_shards)
            ]


class TestBatchedRender:
    def test_batch_matches_per_emblem_render(self, small_spec, rng):
        """Every slice of the batched render is bit-identical to to_image."""
        coder = MOCoder(spec=small_spec)
        payload = bytes(rng.integers(0, 256, size=900, dtype=np.uint8))
        stream = coder.encode(payload)
        assert len(stream.emblems) > 1
        batch = render_emblem_batch(stream.emblems)
        assert batch.shape[0] == len(stream.emblems)
        for index, emblem in enumerate(stream.emblems):
            assert np.array_equal(batch[index], emblem.to_image())

    def test_empty_batch(self):
        assert render_emblem_batch([]).size == 0

    def test_mixed_specs_rejected(self, small_spec, rng):
        coder = MOCoder(spec=small_spec)
        emblems = coder.encode(b"mixed-spec batch").emblems
        other_spec = EmblemSpec(
            name="other", data_cells_x=small_spec.data_cells_x + 8,
            data_cells_y=small_spec.data_cells_y, cell_pixels=small_spec.cell_pixels,
        )
        foreign = MOCoder(spec=other_spec).encode(b"foreign emblem").emblems
        with pytest.raises(EmblemFormatError, match="single shared spec"):
            render_emblem_batch(list(emblems) + list(foreign))


class TestEmblem:
    def test_figure1_structure(self, small_spec):
        """The rendered emblem has the structure of Figure 1: a thick black
        frame around the data field, with large-scale dots inside."""
        emblem = build_emblem(small_spec, EmblemKind.DATA, 0, 1, 0, 0, b"x" * 10, 10, 0)
        image = emblem.to_image()
        q = small_spec.quiet_cells * small_spec.cell_pixels
        border = small_spec.border_cells * small_spec.cell_pixels
        assert (image[:q] == 255).all()                      # quiet zone
        assert (image[q:q + border, q:-q] == 0).all()        # top frame band
        assert image.shape == (small_spec.pixels_y, small_spec.pixels_x)

    def test_roundtrip_pristine(self, small_spec, rng):
        payload = bytes(rng.integers(0, 256, size=small_spec.payload_capacity, dtype=np.uint8))
        emblem = build_emblem(small_spec, EmblemKind.SYSTEM, 7, 9, 0, 7, payload, 123, 456)
        decoded, corrections = Emblem.from_image(small_spec, emblem.to_image())
        assert decoded.payload == payload
        assert decoded.header.kind == EmblemKind.SYSTEM
        assert decoded.header.index == 7
        assert corrections == 0

    def test_roundtrip_with_margins_and_dust(self, small_spec, rng):
        payload = bytes(rng.integers(0, 256, size=100, dtype=np.uint8))
        emblem = build_emblem(small_spec, EmblemKind.DATA, 1, 2, 0, 1, payload, 100, 0)
        image = emblem.to_image()
        framed = np.full((image.shape[0] + 80, image.shape[1] + 60), 255, dtype=np.uint8)
        framed[40:40 + image.shape[0], 30:30 + image.shape[1]] = image
        for _ in range(10):                                  # dust specks
            y, x = rng.integers(45, framed.shape[0] - 45), rng.integers(35, framed.shape[1] - 35)
            framed[y:y + 2, x:x + 2] = 0
        decoded, corrections = Emblem.from_image(small_spec, framed)
        assert decoded.payload == payload

    def test_blank_scan_rejected(self, small_spec):
        with pytest.raises(EmblemDetectionError):
            Emblem.from_image(small_spec, np.full((300, 300), 255, dtype=np.uint8))

    def test_oversized_payload_rejected(self, small_spec):
        with pytest.raises(EmblemFormatError):
            build_emblem(small_spec, EmblemKind.DATA, 0, 1, 0, 0,
                         b"x" * (small_spec.payload_capacity + 1), 1, 0)

    def test_header_pack_unpack(self):
        header = EmblemHeader(EmblemKind.PARITY, 3, 20, 0, 18, 150, 3000, 0xDEADBEEF)
        assert EmblemHeader.unpack(header.pack()) == header

    def test_spec_capacity_arithmetic(self, small_spec):
        assert small_spec.raw_byte_capacity == 256
        assert small_spec.rs_block_count == 1
        assert small_spec.payload_capacity == 223 - EmblemHeader.SIZE

    def test_spec_too_small_rejected(self):
        with pytest.raises(EmblemFormatError):
            EmblemSpec(data_cells_x=16, data_cells_y=16)

    def test_otsu_threshold_separates_modes(self):
        image = np.concatenate([np.full(500, 30), np.full(500, 220)]).reshape(20, 50)
        threshold = otsu_threshold(image)
        assert 30 < threshold < 220


class TestMOCoder:
    def test_emblem_counts_match_capacity(self, small_spec):
        mocoder = MOCoder(small_spec)
        stream = mocoder.encode(b"z" * (small_spec.payload_capacity * 3 + 5))
        assert stream.data_emblem_count == 4
        assert stream.parity_emblem_count == 3

    def test_roundtrip(self, small_spec, rng):
        mocoder = MOCoder(small_spec)
        data = bytes(rng.integers(0, 256, size=small_spec.payload_capacity * 6 + 17, dtype=np.uint8))
        recovered, report = mocoder.decode(mocoder.encode_to_images(data))
        assert recovered == data
        assert report.emblems_failed == 0

    def test_three_lost_emblems_per_group_are_recovered(self, small_spec, rng):
        mocoder = MOCoder(small_spec)
        data = bytes(rng.integers(0, 256, size=small_spec.payload_capacity * 10, dtype=np.uint8))
        images = mocoder.encode_to_images(data)
        survivors = [image for index, image in enumerate(images) if index not in (0, 4, 9)]
        recovered, report = mocoder.decode(survivors)
        assert recovered == data
        assert report.groups_reconstructed == 1

    def test_four_lost_emblems_fail(self, small_spec, rng):
        mocoder = MOCoder(small_spec)
        data = bytes(rng.integers(0, 256, size=small_spec.payload_capacity * 10, dtype=np.uint8))
        images = mocoder.encode_to_images(data)
        survivors = [image for index, image in enumerate(images) if index not in (0, 1, 2, 3)]
        with pytest.raises(MissingEmblemError):
            mocoder.decode(survivors)

    def test_without_outer_code_any_loss_fails(self, small_spec, rng):
        mocoder = MOCoder(small_spec, outer_code=False)
        data = bytes(rng.integers(0, 256, size=small_spec.payload_capacity * 4, dtype=np.uint8))
        images = mocoder.encode_to_images(data)
        assert len(images) == 4
        with pytest.raises(MissingEmblemError):
            mocoder.decode(images[1:])

    def test_emblems_decode_in_any_order(self, small_spec, rng):
        mocoder = MOCoder(small_spec)
        data = bytes(rng.integers(0, 256, size=small_spec.payload_capacity * 5, dtype=np.uint8))
        images = mocoder.encode_to_images(data)
        recovered, _ = mocoder.decode(list(reversed(images)))
        assert recovered == data

    def test_empty_stream_roundtrip(self, small_spec):
        mocoder = MOCoder(small_spec)
        recovered, _ = mocoder.decode(mocoder.encode_to_images(b""))
        assert recovered == b""
