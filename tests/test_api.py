"""Tests for the unified :mod:`repro.api` facade and :mod:`repro.registry`.

Covers the ArchiveConfig JSON contract (round-trip + rejection of unknown
names/keys), the registry register/duplicate/unregister/did-you-mean paths,
session-based streaming I/O, the one-call end-to-end flow across media
channels and codecs selected purely by name, the deprecation shims, and a
``python -m repro`` CLI smoke test via subprocess.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import (
    ArchiveConfig,
    Archiver,
    Restorer,
    TEST_PROFILE,
    open_archive,
    open_restore,
    registry,
    run_end_to_end,
)
from repro.errors import (
    ArchiveError,
    ConfigError,
    RegistryError,
    ReproError,
    UnknownNameError,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def random_payload(size: int, seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    return bytes(rng.integers(0, 256, size=size, dtype=np.uint8))


# --------------------------------------------------------------------------- #
# ArchiveConfig: the JSON contract
# --------------------------------------------------------------------------- #
class TestArchiveConfig:
    def test_defaults_validate(self):
        config = ArchiveConfig()
        assert config.media == "test-small"
        assert config.codec == "portable"

    def test_aliases_canonicalise(self):
        config = ArchiveConfig(media="paper", codec="DENSE")
        assert config.media == "paper-a4-600dpi"
        assert config.codec == "dense"

    def test_json_roundtrip(self):
        config = ArchiveConfig(
            media="microfilm",
            codec="store",
            executor="thread:2",
            segment_size=4096,
            distortion="pristine",
            scan_seed=42,
            payload_kind="sql",
            outer_code=False,
        )
        assert ArchiveConfig.from_json(config.to_json()) == config
        assert ArchiveConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize("field,value", [
        ("media", "wax-cylinder"),
        ("codec", "lzma"),
        ("executor", "quantum"),
        ("distortion", "volcanic-ash"),
    ])
    def test_unknown_names_rejected(self, field, value):
        with pytest.raises(ConfigError):
            ArchiveConfig(**{field: value})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown config keys"):
            ArchiveConfig.from_dict({"media": "test", "compression": "dense"})

    def test_bad_values_rejected(self):
        with pytest.raises(ConfigError):
            ArchiveConfig(segment_size=0)
        with pytest.raises(ConfigError):
            ArchiveConfig(decode_mode="magic")
        with pytest.raises(ConfigError):
            ArchiveConfig(executor="thread:zero")
        with pytest.raises(ConfigError):
            ArchiveConfig.from_json("{not json")

    def test_distortion_override_reaches_the_channel(self):
        config = ArchiveConfig(media="test", distortion="pristine")
        assert config.channel().distortion.name == "pristine"
        # The base registry entry is untouched.
        assert registry.get_media("test").channel().distortion.name != "pristine"


# --------------------------------------------------------------------------- #
# Registries
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_register_get_unregister(self):
        reg = registry.Registry("widget")
        reg.register("alpha", 1)
        assert reg.get("ALPHA") == 1 and "alpha" in reg
        reg.alias("a", "alpha")
        assert reg.get("a") == 1
        reg.unregister("alpha")
        assert "alpha" not in reg and "a" not in reg

    def test_duplicate_registration_rejected(self):
        reg = registry.Registry("widget")
        reg.register("alpha", 1)
        with pytest.raises(RegistryError, match="already registered"):
            reg.register("alpha", 2)
        assert reg.register("alpha", 2, overwrite=True) == 2

    def test_unknown_name_error_carries_suggestion(self):
        with pytest.raises(UnknownNameError) as excinfo:
            registry.get_codec("portble")
        error = excinfo.value
        assert error.suggestion == "portable"
        assert "did you mean 'portable'?" in str(error)
        assert isinstance(error, ReproError) and isinstance(error, KeyError)

    def test_unregister_unknown_raises(self):
        reg = registry.Registry("widget")
        with pytest.raises(UnknownNameError):
            reg.unregister("ghost")

    def test_custom_codec_roundtrips_through_the_facade(self):
        name = "xor-55-test"
        if name in registry.codecs:
            registry.codecs.unregister(name)
        registry.register_codec(name, _xor55, _xor55, "XOR with 0x55 (test codec)")
        try:
            payload = b"custom codec payload " * 64
            result = run_end_to_end(
                ArchiveConfig(media="test", codec=name, scan_seed=5), payload
            )
            assert result.payload == payload
            assert result.archive.manifest.dbcoder_profile == name
        finally:
            registry.codecs.unregister(name)


def _xor55(data: bytes) -> bytes:
    return bytes(byte ^ 0x55 for byte in data)


# --------------------------------------------------------------------------- #
# Sessions
# --------------------------------------------------------------------------- #
class TestSessions:
    def test_chunked_writes_match_one_shot(self):
        payload = random_payload(9_000, seed=3)
        config = ArchiveConfig(media="test", segment_size=2048)
        with open_archive(config) as writer:
            for start in range(0, len(payload), 700):
                writer.write(payload[start:start + 700])
        chunked = writer.archive
        with open_archive(config) as writer:
            writer.write(payload)
        oneshot = writer.archive
        assert chunked.manifest == oneshot.manifest
        assert all(
            np.array_equal(a, b)
            for a, b in zip(chunked.data_emblem_images, oneshot.data_emblem_images)
        )
        assert open_restore(chunked).read().payload == payload

    def test_progress_callback_sees_every_segment(self):
        payload = random_payload(8_192, seed=8)
        records = []
        with open_archive(
            ArchiveConfig(media="test", segment_size=2048), progress=records.append
        ) as writer:
            writer.write(payload)
        assert [record.index for record in records] == [0, 1, 2, 3]
        assert sum(record.length for record in records) == len(payload)

    def test_write_after_close_raises(self):
        with open_archive(ArchiveConfig(media="test")) as writer:
            writer.write(b"x")
        with pytest.raises(ArchiveError):
            writer.write(b"y")

    def test_empty_archive_roundtrips(self):
        with open_archive(ArchiveConfig(media="test")) as writer:
            pass
        assert open_restore(writer.archive).read().payload == b""

    def test_keyword_overrides(self):
        writer = open_archive(codec="store", media="test")
        try:
            assert writer.config.codec == "store"
        finally:
            writer.abort()


# --------------------------------------------------------------------------- #
# run_end_to_end: two media x two codecs, selected purely by name
# --------------------------------------------------------------------------- #
class TestRunEndToEnd:
    @pytest.mark.parametrize("media", ["test", "dna"])
    @pytest.mark.parametrize("codec", ["store", "portable"])
    def test_media_codec_matrix(self, media, codec):
        """Archive -> record -> scan -> restore across channels and codecs."""
        payload = (b"SELECT * FROM lineitem; -- " * 40)[:1_000]
        config = ArchiveConfig(media=media, codec=codec, scan_seed=21)
        result = run_end_to_end(config, payload)
        assert result.ok
        assert result.payload == payload
        assert result.frames_recorded >= result.archive.manifest.data_emblem_count
        assert result.config.media == registry.media.resolve_name(media)

    def test_end_to_end_records_channel_name(self):
        result = run_end_to_end(ArchiveConfig(media="dna", scan_seed=2), b"abc" * 50)
        assert "DNA" in result.channel_name.upper()


# --------------------------------------------------------------------------- #
# Deprecation shims
# --------------------------------------------------------------------------- #
class TestDeprecatedShims:
    def test_archiver_restorer_still_roundtrip_but_warn(self):
        payload = b"shim payload " * 100
        with pytest.warns(DeprecationWarning, match="open_archive"):
            archiver = Archiver(TEST_PROFILE)
        archive = archiver.archive_bytes(payload)
        with pytest.warns(DeprecationWarning, match="open_restore"):
            restorer = Restorer(TEST_PROFILE)
        assert restorer.restore(archive).payload == payload

    def test_shims_importable_from_the_package_root(self):
        import repro

        assert repro.Archiver is Archiver
        assert repro.Restorer is Restorer


# --------------------------------------------------------------------------- #
# CLI smoke test
# --------------------------------------------------------------------------- #
class TestCLI:
    def _run(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=300,
        )

    def test_archive_inspect_restore_cycle(self, tmp_path):
        payload = b"INSERT INTO nation VALUES (1, 'FRANCE');\n" * 120
        payload_path = tmp_path / "payload.sql"
        payload_path.write_bytes(payload)
        archive_dir = tmp_path / "arch"

        proc = self._run(
            "archive", "-i", str(payload_path), "-o", str(archive_dir),
            "--media", "test", "--codec", "portable",
            "--segment-size", "2048", "--json",
        )
        assert proc.returncode == 0, proc.stderr
        summary = json.loads(proc.stdout)
        assert summary["payload_bytes"] == len(payload)
        assert (archive_dir / "config.json").exists()
        assert ArchiveConfig.from_json(
            (archive_dir / "config.json").read_text()
        ).codec == "portable"

        proc = self._run("inspect", str(archive_dir), "--json")
        assert proc.returncode == 0, proc.stderr
        inspected = json.loads(proc.stdout)
        assert inspected["codec"] == "PORTABLE"
        assert inspected["payload_bytes"] == len(payload)

        restored_path = tmp_path / "restored.sql"
        proc = self._run(
            "restore", "-i", str(archive_dir), "-o", str(restored_path),
            "--via-channel", "--seed", "9", "--json",
        )
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout)["bit_exact"] is True
        assert restored_path.read_bytes() == payload

    def test_profiles_json_is_valid(self):
        proc = self._run("profiles", "--json")
        assert proc.returncode == 0, proc.stderr
        listing = json.loads(proc.stdout)
        assert {"media", "codecs", "executors", "distortions"} <= set(listing)
        names = {entry["name"] for entry in listing["media"]}
        assert {"paper-a4-600dpi", "dna-oligo", "test-small"} <= names

    def test_unknown_codec_fails_with_suggestion(self, tmp_path):
        payload_path = tmp_path / "p.bin"
        payload_path.write_bytes(b"x" * 10)
        proc = self._run(
            "archive", "-i", str(payload_path), "-o", str(tmp_path / "a"),
            "--codec", "portble",
        )
        assert proc.returncode == 2
        assert "did you mean 'portable'?" in proc.stderr
