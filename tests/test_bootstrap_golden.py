"""Golden regression test for the rendered Bootstrap document.

The Bootstrap is the one artefact a future user holds with *no* software to
check it against: its text embeds the VeRisc pseudocode and the
letter-encoded DynaRisc emulator + MOCoder decoder images.  Any change to
the emulator image, the decoder programs, the letter codec or the document
layout changes what would be printed on paper — that must only ever happen
deliberately.

The golden copy is checked in at ``tests/golden/bootstrap_test_profile.txt``.
When a decoder-image change is intentional, regenerate it with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_bootstrap_golden.py

and review the resulting diff like any other code change.
"""

import os
from pathlib import Path

from repro import TEST_PROFILE
from repro.bootstrap.document import BootstrapDocument
from repro.pipeline.pipeline import build_system_artifacts

GOLDEN_PATH = Path(__file__).parent / "golden" / "bootstrap_test_profile.txt"


def rendered_bootstrap() -> str:
    _, bootstrap_text = build_system_artifacts(TEST_PROFILE)
    return bootstrap_text


def test_bootstrap_matches_golden_copy():
    rendered = rendered_bootstrap()
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_PATH.write_text(rendered)
    golden = GOLDEN_PATH.read_text()
    assert rendered == golden, (
        "the rendered Bootstrap document changed — the archived decoder "
        "images or the document layout differ from the checked-in golden "
        "copy.  If this is deliberate, regenerate with "
        "REPRO_REGEN_GOLDEN=1 and review the diff."
    )


def test_golden_copy_is_a_valid_bootstrap():
    """The checked-in text still parses and passes every section CRC."""
    document = BootstrapDocument.parse(GOLDEN_PATH.read_text())
    names = [section.name for section in document.sections]
    assert names == ["DYNARISC-EMULATOR", "MOCODER-DECODER"]
    assert all(section.payload for section in document.sections)


def test_bootstrap_is_profile_independent():
    """System artefacts depend on the decoder images, not the media profile."""
    from repro.core.profiles import MICROFILM_PROFILE

    _, other = build_system_artifacts(MICROFILM_PROFILE)
    assert other == rendered_bootstrap()
