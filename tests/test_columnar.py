"""Tests for the columnar layout extension of DBCoder."""

from repro.dbcoder.columnar import ColumnarCoder, encode_table, decode_table
from repro.dbcoder.dbcoder import DBCoder, Profile
from repro.dbms import db_dump, generate_tpch
from repro.dbms.database import Column, ColumnType, Database, Table


def make_table():
    table = Table(
        name="orders",
        columns=[
            Column("o_orderkey", ColumnType.INTEGER),
            Column("o_totalprice", ColumnType.DECIMAL),
            Column("o_orderdate", ColumnType.DATE),
            Column("o_status", ColumnType.VARCHAR),
            Column("o_comment", ColumnType.VARCHAR),
        ],
    )
    for key in range(1, 400):
        table.insert((
            key,
            f"{key * 3.5 + 0.25:.2f}",
            f"199{key % 8}-0{key % 9 + 1}-1{key % 9}",
            ["OPEN", "FILLED", "PENDING"][key % 3],
            f"comment number {key % 11} carefully final",
        ))
    return table


class TestTableRoundtrip:
    def test_single_table(self):
        table = make_table()
        decoded, _ = decode_table(encode_table(table))
        assert decoded == table

    def test_empty_table(self):
        table = Table("empty", [Column("a", ColumnType.INTEGER)])
        decoded, _ = decode_table(encode_table(table))
        assert decoded == table

    def test_database_roundtrip(self):
        database = Database()
        database.add_table(make_table())
        coder = ColumnarCoder()
        assert coder.decode(coder.encode(database)) == database

    def test_tpch_roundtrip(self):
        database = generate_tpch(0.0001)
        coder = ColumnarCoder()
        assert coder.decode(coder.encode(database)) == database


class TestColumnarCompression:
    def test_beats_generic_compression_on_tpch(self):
        """§5: columnar layouts should clearly beat compressing the text dump."""
        database = generate_tpch(0.0001)
        dump = db_dump(database).encode("utf-8")
        generic = len(DBCoder(Profile.PORTABLE).encode(dump))
        columnar = len(ColumnarCoder().encode(database))
        assert columnar < generic

    def test_dictionary_encoding_kicks_in_for_low_cardinality(self):
        table = Table("flags", [Column("f", ColumnType.VARCHAR)])
        for index in range(2000):
            table.insert((["YES", "NO"][index % 2],))
        encoded = encode_table(table)
        assert len(encoded) < 2000  # far below one byte per row of raw text
