"""Appendable archives: multi-generation manifests, append sessions, fsck.

The cross-layer property suite locking down the incremental-append tentpole:

* **equivalence** — for random payload splits across 2 media × 2 codecs ×
  directory/container backends, ``archive(a); append(b)`` restores
  bit-identically to ``archive(a+b)``, and ``read_range`` spanning the
  generation boundary equals the slice of the original payload (hypothesis
  properties over the split point);
* **lineage** — the superseding manifest is cumulative and monotone, pins
  its parent's digest, and survives a third generation;
* **fault injection** — a container truncated at points throughout the
  second generation's records/index/trailer falls back to the last complete
  generation on ``open_restore``, refuses further appends, and
  ``verify``/``repair_container`` restores a loadable, verifiable state for
  every cut in the matrix;
* **fsck** — ``verify`` walks generations, re-checks per-segment hashes
  (catching a corrupted frame the shallow pass misses), and reports
  superseded/orphaned records; plus the CLI face of all of the above
  (``archive --append`` / ``verify --repair``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import warnings
import zlib
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ArchiveConfig, open_archive, open_restore
from repro.core.archive import ArchiveManifest
from repro.errors import ArchiveError, StoreError
from repro.store import (
    MemoryBackend,
    manifest_digest,
    manifest_record_name,
    open_source,
    repair_container,
    scan_container,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _quiet_restore(target, **overrides):
    """open_restore with v1/v2 shim warnings silenced (fault tests reread
    archives whose superseding manifest may be an older generation's)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return open_restore(target, **overrides)


# --------------------------------------------------------------------------- #
# Equivalence: archive(a); append(b) == archive(a+b)
# --------------------------------------------------------------------------- #
class TestAppendEquivalence:
    #: The issue's matrix: 2 media × 2 codecs × directory/container (each
    #: combo with its own deterministic payload seed).
    MATRIX = [
        ("test", "store", "directory", 101),
        ("test", "portable", "container", 102),
        ("dna", "store", "container", 103),
        ("dna", "portable", "directory", 104),
    ]

    @pytest.mark.parametrize("media,codec,store,seed", MATRIX)
    @settings(max_examples=3, deadline=None)
    @given(split=st.integers(min_value=1, max_value=3_999))
    def test_append_restores_bit_identical(self, media, codec, store, seed, split,
                                           make_payload, write_archive,
                                           tmp_path_factory):
        """For any split point, the appended archive restores the original
        payload and ``read_range`` across the generation boundary equals the
        corresponding slice."""
        payload = make_payload(4_000, seed=seed)
        a, b = payload[:split], payload[split:]
        tmp = tmp_path_factory.mktemp("append-eq")
        target = tmp / ("arch.ule" if store == "container" else "arch")
        write_archive(target, a, store=store, media=media, codec=codec)
        write_archive(target, b, append=True)

        manifest = open_source(target).manifest()
        assert manifest.generation == 1
        assert manifest.archive_bytes == len(payload)
        assert manifest.archive_crc32 == zlib.crc32(payload) & 0xFFFFFFFF

        assert open_restore(target).read().payload == payload
        # A range spanning the generation boundary decodes seamlessly.
        lo = max(0, split - 400)
        hi = min(len(payload), split + 400)
        assert open_restore(target).read_range(lo, hi - lo) == payload[lo:hi]

    @pytest.mark.parametrize("store", ["directory", "container"])
    def test_appended_equals_single_shot_archive(self, store, tmp_path, make_payload,
                                                 write_archive):
        """The explicit reference comparison: both write paths restore the
        same bytes and agree on the whole-archive CRC."""
        payload = make_payload(7_000, seed=77)
        a, b = payload[:4_100], payload[4_100:]
        suffix = ".ule" if store == "container" else ""
        appended = tmp_path / f"appended{suffix}"
        oneshot = tmp_path / f"oneshot{suffix}"
        write_archive(appended, a, store=store)
        write_archive(appended, b, append=True)
        write_archive(oneshot, payload, store=store)

        one = open_restore(oneshot)
        two = open_restore(appended)
        assert one.read().payload == two.read().payload == payload
        assert one.manifest.archive_crc32 == two.manifest.archive_crc32
        # Partial restore agrees segment by covering segment.
        for offset, length in ((0, 500), (4_000, 300), (6_500, 10**6)):
            assert (_quiet_restore(appended).read_range(offset, length)
                    == payload[offset:offset + length])

    def test_memory_backend_appends(self, make_payload, write_archive):
        payload = make_payload(4_000, seed=9)
        target = "mem:append-test"
        try:
            write_archive(target, payload[:2_500])
            write_archive(target, payload[2_500:], append=True)
            assert open_restore(target).read().payload == payload
            assert open_restore(target).read_range(2_000, 1_000) == payload[2_000:3_000]
        finally:
            MemoryBackend.discard(target)


# --------------------------------------------------------------------------- #
# Lineage: generations, parents, cumulative segment lists
# --------------------------------------------------------------------------- #
class TestManifestLineage:
    def test_three_generations_chain(self, tmp_path, make_payload, write_archive):
        payload = make_payload(6_000, seed=31)
        parts = (payload[:2_500], payload[2_500:4_200], payload[4_200:])
        target = tmp_path / "arch.ule"
        write_archive(target, parts[0], store="container")
        write_archive(target, parts[1], append=True)
        write_archive(target, parts[2], append=True)

        source = open_source(target)
        manifest = source.manifest()
        assert manifest.generation == 2
        # Every generation's manifest record is still on the medium, and
        # each parent digest pins the manifest it superseded.
        names = source.names()
        chain = [
            ArchiveManifest.from_json(source.get_text(manifest_record_name(generation)))
            for generation in range(3)
        ]
        assert all(manifest_record_name(g) in names for g in range(3))
        assert chain[0].parent is None
        assert chain[1].parent == manifest_digest(chain[0])
        assert chain[2].parent == manifest_digest(chain[1])
        # Cumulative, monotonically renumbered segments.
        assert chain[2].segments[: len(chain[1].segments)] == chain[1].segments
        assert chain[1].segments[: len(chain[0].segments)] == chain[0].segments
        offset = frame = 0
        for index, record in enumerate(manifest.segments):
            assert record.index == index
            assert record.offset == offset and record.emblem_start == frame
            offset += record.length
            frame += record.emblem_count
        assert offset == len(payload) == manifest.archive_bytes
        assert frame == manifest.data_emblem_count

        assert open_restore(target).read().payload == payload
        # restore_segment addresses segments of any generation uniformly.
        reader = open_restore(target)
        last = manifest.segments[-1]
        assert reader.restore_segment(last.index) == payload[last.offset:last.end]

    def test_append_requires_matching_stack(self, tmp_path, make_payload, write_archive):
        target = tmp_path / "arch"
        write_archive(target, make_payload(2_000, seed=41), media="test", codec="portable")
        with pytest.raises(ArchiveError, match="codec"):
            open_archive(target=target, append=True, codec="store")
        with pytest.raises(ArchiveError, match="media"):
            open_archive(target=target, append=True, media="dna")
        with pytest.raises(ArchiveError, match="outer_code"):
            open_archive(target=target, append=True, outer_code=False)

    def test_append_needs_an_existing_archive(self, tmp_path):
        with pytest.raises(ArchiveError, match="needs a target"):
            open_archive(append=True)
        with pytest.raises(StoreError):
            open_archive(target=tmp_path / "ghost.ule", store="container", append=True)

    def test_append_onto_a_v2_archive(self, tmp_path, make_payload, write_archive):
        """A pre-lineage (v2) archive appends through the shim: the new
        generation's parent pins the *upgraded* parent manifest."""
        payload = make_payload(4_000, seed=51)
        target = tmp_path / "arch"
        write_archive(target, payload[:2_500])
        manifest_path = target / "manifest.json"
        fields = json.loads(manifest_path.read_text())
        fields["format_version"] = 2
        del fields["generation"], fields["parent"]
        manifest_path.write_text(json.dumps(fields))

        with pytest.warns(DeprecationWarning, match="v2 archive manifest"):
            write_archive(target, payload[2_500:], append=True)
        manifest = _quiet_restore(target).manifest
        assert manifest.generation == 1 and manifest.parent is not None
        assert _quiet_restore(target).read().payload == payload


# --------------------------------------------------------------------------- #
# Fault injection: torn appends on the container backend
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="class")
def torn_fixture(tmp_path_factory):
    """A two-generation container plus its payloads and layout landmarks."""
    rng = np.random.default_rng(20260729)
    a = bytes(rng.integers(0, 256, 5_000, dtype=np.uint8))
    b = bytes(rng.integers(0, 256, 3_700, dtype=np.uint8))
    tmp = tmp_path_factory.mktemp("torn")
    target = tmp / "arch.ule"
    config = ArchiveConfig(media="test", codec="portable", segment_size=2048)
    with open_archive(config, target=target, store="container") as writer:
        writer.write(a)
    size_gen0 = target.stat().st_size
    with open_archive(target=target, append=True) as writer:
        writer.write(b)
    return {
        "dir": tmp,
        "data": target.read_bytes(),
        "a": a,
        "b": b,
        "size_gen0": size_gen0,
    }


class TestTornAppends:
    #: Cut positions as fractions of the appended region (records), plus
    #: absolute cuts inside the final index record and the final trailer.
    FRACTIONS = (0.02, 0.2, 0.45, 0.7, 0.9, 0.995)

    def _cut(self, torn_fixture, position: int) -> Path:
        data = torn_fixture["data"]
        path = torn_fixture["dir"] / f"cut_{position}.ule"
        path.write_bytes(data[:position])
        return path

    @pytest.mark.parametrize("fraction", FRACTIONS)
    def test_cut_inside_records_falls_back_then_repairs(self, torn_fixture, fraction):
        """A cut inside the second generation's records loses that
        generation — and only it."""
        # Stay well inside the appended *frame records*: the trailing
        # manifest + index + trailer occupy only the last few KB.
        lo, hi = torn_fixture["size_gen0"], len(torn_fixture["data"])
        path = self._cut(torn_fixture, lo + int((hi - lo - 8_000) * fraction) + 1)
        a, b = torn_fixture["a"], torn_fixture["b"]

        assert _quiet_restore(path).read().payload == a  # generation-0 fallback
        with pytest.raises(StoreError, match="torn tail"):
            open_archive(target=path, append=True)

        report = repair_container(path)
        assert report["action"] == "truncated"
        assert scan_container(path).intact
        assert _quiet_restore(path).read().payload == a
        fsck = _quiet_restore(path).verify()
        assert fsck.ok, fsck.errors
        # ... and the repaired archive accepts the append again.
        with open_archive(target=path, append=True) as writer:
            writer.write(b)
        assert open_restore(path).read().payload == a + b

    @pytest.mark.parametrize("tail_offset", [4, 12, 17, 300])
    def test_cut_inside_index_or_trailer_keeps_both_generations(self, torn_fixture,
                                                                tail_offset):
        """Cuts past the appended manifest (inside the new index/trailer)
        lose no data: repair finishes the index instead of truncating."""
        path = self._cut(torn_fixture, len(torn_fixture["data"]) - tail_offset)
        whole = torn_fixture["a"] + torn_fixture["b"]

        # The scan fallback already serves both generations...
        assert _quiet_restore(path).read().payload == whole
        report = repair_container(path)
        assert report["action"] == "completed-index"
        assert scan_container(path).intact
        # ... and after repair the trailer index does, with a clean fsck.
        assert open_restore(path).read().payload == whole
        fsck = open_restore(path).verify()
        assert fsck.ok, fsck.errors

    def test_verify_reports_torn_tail_orphans(self, torn_fixture):
        lo, hi = torn_fixture["size_gen0"], len(torn_fixture["data"])
        path = self._cut(torn_fixture, (lo + hi) // 2)
        fsck = _quiet_restore(path).verify(deep=False)
        # Complete generation-1 frames before the cut are orphans: present
        # on the medium but unreferenced by the superseding (gen 0) manifest.
        assert fsck.active_generation == 0
        assert fsck.orphaned, "expected orphaned generation-1 frame records"
        assert fsck.ok  # orphans alone are warnings, not integrity errors

    def test_repair_is_idempotent(self, torn_fixture):
        path = self._cut(torn_fixture, len(torn_fixture["data"]))
        assert repair_container(path)["action"] == "intact"


    def test_cut_on_a_record_boundary_is_still_detected(self, torn_fixture):
        """Zero dangling bytes is not intact: a cut exactly at a record end
        leaves no trailer at EOF, so verify must flag it and repair fix it."""
        full = torn_fixture["dir"] / "full-scan.ule"
        full.write_bytes(torn_fixture["data"])
        scan = scan_container(full)
        boundary = next(
            start + length
            for name, start, length in scan.records
            if start > torn_fixture["size_gen0"] and name.startswith("data_emblem_")
        )
        path = self._cut(torn_fixture, boundary)
        cut = scan_container(path)
        assert not cut.intact and cut.torn_bytes == 0
        with pytest.raises(StoreError, match="torn tail"):
            open_archive(target=path, append=True)
        from repro.api.cli import main as cli_main

        assert cli_main(["verify", str(path), "--shallow"]) == 1
        assert repair_container(path)["action"] == "truncated"
        assert cli_main(["verify", str(path), "--shallow"]) == 0
        assert _quiet_restore(path).read().payload == torn_fixture["a"]

    def test_aborted_append_rolls_back_byte_identically(self, torn_fixture):
        """A failed/aborted append session must not finalise a half-written
        generation: the container returns to its exact pre-append bytes and
        a retried append succeeds."""
        data0 = torn_fixture["data"][: torn_fixture["size_gen0"]]
        path = torn_fixture["dir"] / "abort.ule"
        path.write_bytes(data0)
        writer = open_archive(target=path, append=True)
        writer.write(torn_fixture["b"][:1_000])
        writer.abort()
        assert path.read_bytes() == data0
        with open_archive(target=path, append=True) as retried:
            retried.write(torn_fixture["b"])
        assert open_restore(path).read().payload == (
            torn_fixture["a"] + torn_fixture["b"]
        )


class TestScanDegenerateFiles:
    """scan/repair on degenerate files: clean StoreError, never a crash."""

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.ule"
        path.write_bytes(b"")
        with pytest.raises(StoreError, match="bad magic"):
            scan_container(path)
        with pytest.raises(StoreError, match="bad magic"):
            repair_container(path)

    def test_magic_only_file(self, tmp_path):
        from repro.store.backends import CONTAINER_MAGIC

        path = tmp_path / "bare.ule"
        path.write_bytes(CONTAINER_MAGIC)
        scan = scan_container(path)
        assert not scan.records and not scan.intact
        # Nothing loadable to repair back to -> an explanatory StoreError.
        with pytest.raises(StoreError, match="no.*(trailer|manifest)"):
            repair_container(path)

    @pytest.mark.parametrize("tail", [b"\x14", b"\x14\x00", b"\x14\x00dat",
                                      b"\x14\x00" + b"x" * 20])
    def test_record_header_truncated_at_eof(self, tmp_path, tail):
        """A record header cut mid-bytes ends the scan cleanly: everything
        before it is served, the dangling bytes count as torn, and repair
        truncates back to the intact generation."""
        from repro.store import open_sink

        path = tmp_path / "torn-header.ule"
        with open_sink(path, "container") as sink:
            sink.put_text("note", "complete record before the torn header")
        intact_size = path.stat().st_size
        path.write_bytes(path.read_bytes() + tail)

        scan = scan_container(path)
        assert list(scan.index()) == ["note"]
        assert not scan.intact
        assert scan.torn_bytes == len(tail)

        report = repair_container(path)
        assert report["action"] == "truncated"
        assert report["size_after"] == intact_size
        assert scan_container(path).intact


# --------------------------------------------------------------------------- #
# fsck: RestoreEngine.verify via the reader session
# --------------------------------------------------------------------------- #
class TestVerify:
    def test_clean_multi_generation_archive_verifies(self, tmp_path, make_payload,
                                                     write_archive):
        payload = make_payload(5_000, seed=61)
        target = tmp_path / "arch.ule"
        write_archive(target, payload[:3_000], store="container")
        write_archive(target, payload[3_000:], append=True)
        report = open_restore(target).verify()
        assert report.ok
        assert report.active_generation == 1
        assert [info.status for info in report.generations] == ["superseded", "active"]
        assert report.superseded == ["manifest.json"]
        assert report.segments_checked == len(open_source(target).manifest().segments)
        assert not report.orphaned

    def test_deep_verify_catches_a_corrupted_frame(self, tmp_path, make_payload,
                                                   write_archive):
        """A blanked frame parses fine (shallow passes) but fails the
        per-segment hash re-decode (deep catches it)."""
        from repro.media.image import pgm_bytes, pgm_from_bytes

        payload = make_payload(6_000, seed=62)
        target = tmp_path / "arch"
        write_archive(target, payload)
        manifest = open_source(target).manifest()
        victim = manifest.segments[1]
        for index in range(victim.emblem_start,
                           victim.emblem_start + victim.emblem_count):
            frame_path = target / f"data_emblem_{index:04d}.pgm"
            image = pgm_from_bytes(frame_path.read_bytes())
            frame_path.write_bytes(pgm_bytes(np.full_like(image, 255)))

        shallow = open_restore(target).verify(deep=False)
        assert shallow.ok
        deep = open_restore(target).verify()
        assert not deep.ok
        assert any("segment 1" in message for message in deep.errors)
        # The other segments still verified independently.
        assert deep.segments_checked == len(manifest.segments) - 1

    def test_verify_catches_a_broken_lineage(self, tmp_path, make_payload,
                                             write_archive):
        payload = make_payload(4_000, seed=63)
        target = tmp_path / "arch"
        write_archive(target, payload[:2_500])
        write_archive(target, payload[2_500:], append=True)
        gen1_path = target / manifest_record_name(1)
        fields = json.loads(gen1_path.read_text())
        fields["parent"] = "0" * 64
        gen1_path.write_text(json.dumps(fields))
        report = open_restore(target).verify(deep=False)
        assert not report.ok
        assert any("parent digest" in message for message in report.errors)

    def test_verify_needs_a_store_backed_session(self, make_payload, build_archive):
        archive = build_archive(ArchiveConfig(media="test", segment_size=2048),
                                make_payload(2_000, seed=64))
        with pytest.raises(ArchiveError, match="store-backed"):
            open_restore(archive).verify()


# --------------------------------------------------------------------------- #
# CLI: archive --append and verify --repair
# --------------------------------------------------------------------------- #
class TestAppendCLI:
    def _run(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=300,
        )

    def test_archive_append_verify_repair_flow(self, tmp_path):
        a = b"ULE append CLI payload A. " * 150
        b = b"ULE append CLI payload B! " * 100
        (tmp_path / "a.bin").write_bytes(a)
        (tmp_path / "b.bin").write_bytes(b)
        target = tmp_path / "arch.ule"

        proc = self._run("archive", "-i", str(tmp_path / "a.bin"), "-o", str(target),
                         "--store", "container", "--media", "test",
                         "--segment-size", "2048", "--json")
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout)["generation"] == 0

        proc = self._run("archive", "-i", str(tmp_path / "b.bin"), "-o", str(target),
                         "--append", "--json")
        assert proc.returncode == 0, proc.stderr
        appended = json.loads(proc.stdout)
        assert appended["generation"] == 1
        assert appended["payload_bytes"] == len(a) + len(b)

        proc = self._run("verify", str(target), "--json")
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        assert report["ok"] and report["active_generation"] == 1
        assert len(report["generations"]) == 2

        # Partial restore through the CLI spans the generation boundary.
        out = tmp_path / "slice.bin"
        offset = len(a) - 500
        proc = self._run("restore", "-i", str(target), "-o", str(out),
                         "--offset", str(offset), "--length", "1000")
        assert proc.returncode == 0, proc.stderr
        assert out.read_bytes() == (a + b)[offset:offset + 1000]

        # Tear the tail; verify flags it (exit 1), --repair recovers (exit 0).
        data = target.read_bytes()
        torn = tmp_path / "torn.ule"
        torn.write_bytes(data[: int(len(data) * 0.8)])
        proc = self._run("verify", str(torn), "--json")
        assert proc.returncode == 1, proc.stdout
        assert any("torn tail" in message for message in json.loads(proc.stdout)["errors"])
        proc = self._run("verify", str(torn), "--repair", "--json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        repaired = json.loads(proc.stdout)
        assert repaired["ok"] and repaired["repair"]["action"] in (
            "truncated", "completed-index"
        )

    def test_repair_rejects_directory_targets(self, tmp_path, make_payload,
                                              write_archive):
        target = tmp_path / "arch"
        write_archive(target, make_payload(2_000, seed=71))
        proc = self._run("verify", str(target), "--repair")
        assert proc.returncode == 2
        assert "--repair only applies to container archives" in proc.stderr
