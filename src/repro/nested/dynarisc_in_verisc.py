"""A DynaRisc emulator written in VeRisc.

This module programmatically assembles (with :class:`~repro.verisc.assembler.
MacroAssembler`, i.e. using nothing beyond the four VeRisc instructions plus
self-modifying-operand idioms) an interpreter for the full 23-instruction
DynaRisc ISA.  The assembled VeRisc image is what the Bootstrap document's
``DYNARISC-EMULATOR`` section carries, and what a future user loads into
their hand-written VeRisc implementation.

Memory map of the combined machine (VeRisc words):

====================  =====================================================
0x0000 .. 0x7FFF      the interpreter itself: code, variables, constants
0x8000 .. 0xFEFF      the hosted DynaRisc memory, one byte per word
                      (DynaRisc addresses 0x0000 .. 0x7EFF)
0xFFFB .. 0xFFFF      the VeRisc memory-mapped ports
====================  =====================================================

The hosted DynaRisc machine's memory-mapped input and output ports are
forwarded to the VeRisc machine's own ports, so an archived decoder running
three layers deep still just consumes the scanned byte stream and emits the
restored bytes.
"""

from __future__ import annotations

from repro.errors import MachineFault
from repro.dynarisc.isa import (
    DEFAULT_STACK_TOP,
    INPUT_PORT,
    OUTPUT_PORT,
    Opcode,
    Register,
)
from repro.verisc.assembler import MacroAssembler
from repro.verisc.machine import VeRiscMachine
from repro.verisc.program import VeRiscProgram

#: First VeRisc word that hosts DynaRisc memory (one byte per word).
HOST_BASE = 0x8000

#: Number of DynaRisc memory bytes the nested emulator can host.
HOSTED_MEMORY_BYTES = 0x7F00

_cached_program: VeRiscProgram | None = None


# --------------------------------------------------------------------------- #
# Builder
# --------------------------------------------------------------------------- #
def build_dynarisc_emulator() -> VeRiscProgram:
    """Assemble the DynaRisc interpreter as a VeRisc program."""
    m = MacroAssembler()

    # ------------------------------------------------------------------ #
    # Interpreter state (VeRisc data words)
    # ------------------------------------------------------------------ #
    def var(name: str, value: int = 0) -> None:
        m.place(name)
        m.word(value)

    # The variable block is emitted first (right after the scratch words), so
    # execution must start at the "boot" label, set below via set_entry.
    for register_index in range(13):
        var(f"reg{register_index}")
    for name in (
        "v_pc", "flag_z", "flag_n", "flag_c",
        "w", "op", "f_rd", "f_rs", "imm",
        "a", "b", "res", "t0", "t1", "t2", "cnt", "ptr",
        "lo", "hi", "addr", "val", "old_carry",
    ):
        var(name)
    var("regs_base", m._labels["reg0"])

    V = m.ref  # shorthand: reference to a named variable

    # ------------------------------------------------------------------ #
    # Emission helpers (these generate VeRisc code inline)
    # ------------------------------------------------------------------ #
    def set_var(name: str, value: int) -> None:
        m.store_imm(value, V(name))

    def copy(src: str, dst: str) -> None:
        m.move(V(src), V(dst))

    def add_vars(a: str, b: str, dst: str) -> None:
        """dst = a + b (mod 2**16)."""
        m.ld(V(a))
        m.add(V(b))
        m.st(V(dst))

    def add_const(name: str, value: int) -> None:
        m.ld(V(name))
        m.add_imm(value)
        m.st(V(name))

    def sub_vars(a: str, b: str, dst: str, borrow_to: str | None = None) -> None:
        """dst = a - b (mod 2**16); optionally store the borrow flag."""
        m.ld(V(a))
        m.sub(V(b))
        m.st(V(dst))
        if borrow_to is not None:
            m.ld(m.BORROW)
            m.st(V(borrow_to))

    def read_host_byte(addr_name: str, dst: str) -> None:
        """dst = hostedMemory[addr_name]."""
        m.ld(V(addr_name))
        m.add_imm(HOST_BASE)
        m.st(V("ptr"))
        m.load_indirect(V("ptr"))
        m.st(V(dst))

    def write_host_byte(addr_name: str, src: str) -> None:
        """hostedMemory[addr_name] = src (low byte is the caller's concern)."""
        m.ld(V(addr_name))
        m.add_imm(HOST_BASE)
        m.st(V("ptr"))
        m.ld(V(src))
        m.store_indirect(V("ptr"))

    def get_reg(index_name: str, dst: str) -> None:
        """dst = regs[index_name]."""
        m.ld(V("regs_base"))
        m.add(V(index_name))
        m.st(V("ptr"))
        m.load_indirect(V("ptr"))
        m.st(V(dst))

    def set_reg(index_name: str, src: str) -> None:
        """regs[index_name] = src."""
        m.ld(V("regs_base"))
        m.add(V(index_name))
        m.st(V("ptr"))
        m.ld(V(src))
        m.store_indirect(V("ptr"))

    def extract_bits(src: str, low_bit: int, count: int, dst: str) -> None:
        """dst = (src >> low_bit) & ((1 << count) - 1)   (emitted inline)."""
        set_var(dst, 0)
        for bit in range(count):
            skip = m.new_label()
            m.ld(V(src))
            m.and_(m.const(1 << (low_bit + bit)))
            m.st(V("t2"))
            m.jump_if_zero(V("t2"), skip)
            m.ld(V(dst))
            m.add_imm(1 << bit)
            m.st(V(dst))
            m.place(skip)

    def set_zn(result: str) -> None:
        """Update flag_z and flag_n from a 16-bit result variable."""
        z_one = m.new_label()
        z_done = m.new_label()
        m.jump_if_zero(V(result), z_one)
        set_var("flag_z", 0)
        m.jmp(z_done)
        m.place(z_one)
        set_var("flag_z", 1)
        m.place(z_done)
        n_one = m.new_label()
        n_done = m.new_label()
        m.ld(V(result))
        m.and_(m.const(0x8000))
        m.st(V("t2"))
        m.jump_if_nonzero(V("t2"), n_one)
        set_var("flag_n", 0)
        m.jmp(n_done)
        m.place(n_one)
        set_var("flag_n", 1)
        m.place(n_done)

    def load_word_host(addr_name: str, dst: str) -> None:
        """dst = 16-bit little-endian word at hosted address addr_name."""
        read_host_byte(addr_name, "lo")
        copy(addr_name, "t0")
        add_const("t0", 1)
        read_host_byte("t0", "hi")
        # hi * 256 by eight doublings, then add lo.
        for _ in range(8):
            m.ld(V("hi"))
            m.add(V("hi"))
            m.st(V("hi"))
        add_vars("hi", "lo", dst)

    def shift_right_one(name: str) -> None:
        """name = name >> 1 (logical), using bit extraction."""
        extract_bits(name, 1, 15, "t1")
        copy("t1", name)

    def binary_read_operands() -> None:
        """a = regs[rd]; b = regs[rs]."""
        get_reg("f_rd", "a")
        get_reg("f_rs", "b")

    def writeback_res_zn() -> None:
        """regs[rd] = res; update Z/N."""
        set_reg("f_rd", "res")
        set_zn("res")

    def xor_into_res() -> None:
        """res = a XOR b   (uses t0 for a AND b)."""
        m.ld(V("a"))
        m.and_(V("b"))
        m.st(V("t0"))
        sub_vars("a", "t0", "t1")
        sub_vars("b", "t0", "res")
        add_vars("t1", "res", "res")

    # ------------------------------------------------------------------ #
    # Boot: initialise registers and flags
    # ------------------------------------------------------------------ #
    boot = "boot"
    m.place(boot)
    m.set_entry(boot)
    for register_index in range(13):
        set_var(f"reg{register_index}", 0)
    set_var(f"reg{int(Register.SP)}", DEFAULT_STACK_TOP)
    set_var("flag_z", 0)
    set_var("flag_n", 0)
    set_var("flag_c", 0)
    # v_pc keeps whatever initial value the loader wrote (the program entry).

    # ------------------------------------------------------------------ #
    # Main fetch/decode/dispatch loop
    # ------------------------------------------------------------------ #
    main_loop = "main_loop"
    m.place(main_loop)
    load_word_host("v_pc", "w")
    add_const("v_pc", 2)
    extract_bits("w", 11, 5, "op")
    extract_bits("w", 7, 4, "f_rd")
    extract_bits("w", 3, 4, "f_rs")

    # Fetch the immediate word for the opcodes that have one.
    no_imm = m.new_label()
    fetch_imm = m.new_label()
    for opcode in (Opcode.LDI, Opcode.JUMP, Opcode.JCOND, Opcode.CALL):
        m.jump_if_equal(V("op"), int(opcode), fetch_imm)
    m.jmp(no_imm)
    m.place(fetch_imm)
    load_word_host("v_pc", "imm")
    add_const("v_pc", 2)
    m.place(no_imm)

    handlers = {opcode: f"op_{opcode.name.lower()}" for opcode in Opcode}
    for opcode in Opcode:
        m.jump_if_equal(V("op"), int(opcode), handlers[opcode])
    # Unknown opcode: halt rather than run off into the weeds.
    m.halt()

    # ------------------------------------------------------------------ #
    # Instruction handlers
    # ------------------------------------------------------------------ #
    # HALT -------------------------------------------------------------- #
    m.place(handlers[Opcode.HALT])
    m.halt()

    # MOVE -------------------------------------------------------------- #
    m.place(handlers[Opcode.MOVE])
    get_reg("f_rs", "res")
    writeback_res_zn()
    m.jmp(main_loop)

    # LDI --------------------------------------------------------------- #
    m.place(handlers[Opcode.LDI])
    copy("imm", "res")
    writeback_res_zn()
    m.jmp(main_loop)

    # LDM --------------------------------------------------------------- #
    m.place(handlers[Opcode.LDM])
    get_reg("f_rs", "addr")
    ldm_port = m.new_label()
    ldm_plain = m.new_label()
    ldm_store = m.new_label()
    m.jump_if_equal(V("addr"), INPUT_PORT, ldm_port)
    m.jmp(ldm_plain)
    m.place(ldm_port)
    m.input_byte()               # R = next input byte, borrow = end-of-input
    m.st(V("res"))
    m.ld(m.BORROW)
    m.st(V("flag_c"))
    m.jmp(ldm_store)
    m.place(ldm_plain)
    read_host_byte("addr", "res")
    m.place(ldm_store)
    writeback_res_zn()
    m.jmp(main_loop)

    # STM --------------------------------------------------------------- #
    m.place(handlers[Opcode.STM])
    get_reg("f_rd", "addr")
    get_reg("f_rs", "val")
    m.ld(V("val"))
    m.and_(m.const(0x00FF))
    m.st(V("val"))
    stm_port = m.new_label()
    stm_done = m.new_label()
    m.jump_if_equal(V("addr"), OUTPUT_PORT, stm_port)
    write_host_byte("addr", "val")
    m.jmp(stm_done)
    m.place(stm_port)
    m.ld(V("val"))
    m.output_byte()
    m.place(stm_done)
    m.jmp(main_loop)

    # ADD / ADC --------------------------------------------------------- #
    def emit_add(with_carry: bool) -> None:
        binary_read_operands()
        add_vars("a", "b", "res")
        # carry-out of a+b: res < a
        m.ld(V("res"))
        m.sub(V("a"))
        m.ld(m.BORROW)
        m.st(V("t0"))
        if with_carry:
            carry_done = m.new_label()
            m.jump_if_zero(V("flag_c"), carry_done)
            copy("res", "t1")
            add_const("res", 1)
            # second carry: res < t1 (only when t1 was 0xFFFF)
            m.ld(V("res"))
            m.sub(V("t1"))
            m.ld(m.BORROW)
            m.add(V("t0"))
            m.st(V("t0"))
            m.place(carry_done)
        copy("t0", "flag_c")
        writeback_res_zn()
        m.jmp(main_loop)

    m.place(handlers[Opcode.ADD])
    emit_add(with_carry=False)
    m.place(handlers[Opcode.ADC])
    emit_add(with_carry=True)

    # SUB / SBB / CMP --------------------------------------------------- #
    def emit_sub(with_borrow: bool, writeback: bool) -> None:
        binary_read_operands()
        sub_vars("a", "b", "res", borrow_to="t0")
        if with_borrow:
            borrow_done = m.new_label()
            m.jump_if_zero(V("flag_c"), borrow_done)
            copy("res", "t1")
            m.ld(V("res"))
            m.sub_imm(1)
            m.st(V("res"))
            m.ld(m.BORROW)
            m.add(V("t0"))
            m.st(V("t0"))
            m.place(borrow_done)
        # Normalise 2 -> 1 (both steps can borrow only in theory).
        normalise_done = m.new_label()
        m.jump_if_zero(V("t0"), normalise_done)
        set_var("t0", 1)
        m.place(normalise_done)
        copy("t0", "flag_c")
        if writeback:
            writeback_res_zn()
        else:
            set_zn("res")
        m.jmp(main_loop)

    m.place(handlers[Opcode.SUB])
    emit_sub(with_borrow=False, writeback=True)
    m.place(handlers[Opcode.SBB])
    emit_sub(with_borrow=True, writeback=True)
    m.place(handlers[Opcode.CMP])
    emit_sub(with_borrow=False, writeback=False)

    # MUL ---------------------------------------------------------------- #
    # 16 x 16 -> 32-bit shift-and-add; the low word is the result register,
    # a non-zero high word sets the carry flag (matching the reference
    # emulator's "product > 0xFFFF" rule).
    m.place(handlers[Opcode.MUL])
    binary_read_operands()
    set_var("res", 0)            # product, low word
    set_var("old_carry", 0)      # product, high word
    set_var("t0", 0)             # multiplicand, high word
    set_var("cnt", 16)
    mul_loop = m.new_label()
    mul_skip = m.new_label()
    mul_done = m.new_label()
    m.place(mul_loop)
    m.jump_if_zero(V("cnt"), mul_done)
    m.ld(V("b"))
    m.and_(m.const(1))
    m.st(V("t1"))
    m.jump_if_zero(V("t1"), mul_skip)
    # product += multiplicand (32-bit add)
    add_vars("res", "a", "res")
    m.ld(V("res"))
    m.sub(V("a"))
    m.ld(m.BORROW)
    m.st(V("t1"))                # carry out of the low-word addition
    m.ld(V("old_carry"))
    m.add(V("t0"))
    m.add(V("t1"))
    m.st(V("old_carry"))
    m.place(mul_skip)
    # multiplicand <<= 1 (32-bit), multiplier >>= 1
    m.ld(V("a"))
    m.and_(m.const(0x8000))
    m.st(V("t1"))
    add_vars("t0", "t0", "t0")
    mul_no_carry_in = m.new_label()
    m.jump_if_zero(V("t1"), mul_no_carry_in)
    add_const("t0", 1)
    m.place(mul_no_carry_in)
    add_vars("a", "a", "a")
    shift_right_one("b")
    m.ld(V("cnt"))
    m.sub_imm(1)
    m.st(V("cnt"))
    m.jmp(mul_loop)
    m.place(mul_done)
    mul_carry_one = m.new_label()
    mul_carry_done = m.new_label()
    m.jump_if_nonzero(V("old_carry"), mul_carry_one)
    set_var("flag_c", 0)
    m.jmp(mul_carry_done)
    m.place(mul_carry_one)
    set_var("flag_c", 1)
    m.place(mul_carry_done)
    writeback_res_zn()
    m.jmp(main_loop)

    # AND / OR / XOR / NOT ----------------------------------------------- #
    m.place(handlers[Opcode.AND])
    binary_read_operands()
    m.ld(V("a"))
    m.and_(V("b"))
    m.st(V("res"))
    writeback_res_zn()
    m.jmp(main_loop)

    m.place(handlers[Opcode.XOR])
    binary_read_operands()
    xor_into_res()
    writeback_res_zn()
    m.jmp(main_loop)

    m.place(handlers[Opcode.OR])
    binary_read_operands()
    xor_into_res()
    m.ld(V("a"))
    m.and_(V("b"))
    m.st(V("t0"))
    add_vars("res", "t0", "res")
    writeback_res_zn()
    m.jmp(main_loop)

    m.place(handlers[Opcode.NOT])
    get_reg("f_rd", "a")
    m.load_imm(0xFFFF)
    m.sub(V("a"))
    m.st(V("res"))
    writeback_res_zn()
    m.jmp(main_loop)

    # Shifts (LSL / LSR / ASR / ROR) -------------------------------------- #
    def emit_shift(opcode: Opcode) -> None:
        get_reg("f_rd", "a")
        get_reg("f_rs", "b")
        m.ld(V("b"))
        m.and_(m.const(0x000F))
        m.st(V("cnt"))
        loop = m.new_label()
        done = m.new_label()
        m.place(loop)
        m.jump_if_zero(V("cnt"), done)
        if opcode == Opcode.LSL:
            m.ld(V("a"))
            m.and_(m.const(0x8000))
            m.st(V("t0"))
            carry_set = m.new_label()
            carry_after = m.new_label()
            m.jump_if_nonzero(V("t0"), carry_set)
            set_var("flag_c", 0)
            m.jmp(carry_after)
            m.place(carry_set)
            set_var("flag_c", 1)
            m.place(carry_after)
            add_vars("a", "a", "a")
        else:
            # All right-going shifts move bit 0 into the carry flag first.
            m.ld(V("a"))
            m.and_(m.const(1))
            m.st(V("flag_c"))
            if opcode == Opcode.ASR:
                m.ld(V("a"))
                m.and_(m.const(0x8000))
                m.st(V("t0"))
            if opcode == Opcode.ROR:
                m.ld(V("a"))
                m.and_(m.const(1))
                m.st(V("t1"))
            shift_right_one("a")
            if opcode == Opcode.ASR:
                asr_done = m.new_label()
                m.jump_if_zero(V("t0"), asr_done)
                add_const("a", 0x8000)
                m.place(asr_done)
            if opcode == Opcode.ROR:
                ror_done = m.new_label()
                m.jump_if_zero(V("t1"), ror_done)
                add_const("a", 0x8000)
                m.place(ror_done)
        m.ld(V("cnt"))
        m.sub_imm(1)
        m.st(V("cnt"))
        m.jmp(loop)
        m.place(done)
        copy("a", "res")
        writeback_res_zn()
        m.jmp(main_loop)

    for opcode in (Opcode.LSL, Opcode.LSR, Opcode.ASR, Opcode.ROR):
        m.place(handlers[opcode])
        emit_shift(opcode)

    # JUMP / JCOND -------------------------------------------------------- #
    m.place(handlers[Opcode.JUMP])
    copy("imm", "v_pc")
    m.jmp(main_loop)

    m.place(handlers[Opcode.JCOND])
    take = m.new_label()
    skip = m.new_label()
    # Condition codes: 0 EQ, 1 NE, 2 CS, 3 CC, 4 MI, 5 PL.
    for condition, flag, wanted in (
        (0, "flag_z", 1), (1, "flag_z", 0),
        (2, "flag_c", 1), (3, "flag_c", 0),
        (4, "flag_n", 1), (5, "flag_n", 0),
    ):
        next_check = m.new_label()
        m.ld(V("op"))  # keep accumulator usage irrelevant; comparison below
        m.jump_if_equal(V("f_rd"), condition, f"cond_{condition}")
        m.jmp(next_check)
        m.place(f"cond_{condition}")
        if wanted == 1:
            m.jump_if_nonzero(V(flag), take)
        else:
            m.jump_if_zero(V(flag), take)
        m.jmp(skip)
        m.place(next_check)
    m.jmp(skip)
    m.place(take)
    copy("imm", "v_pc")
    m.place(skip)
    m.jmp(main_loop)

    # CALL / RET ----------------------------------------------------------- #
    m.place(handlers[Opcode.CALL])
    get_reg("f_rs", "t0")  # unused; keeps the pattern uniform
    m.load_imm(int(Register.SP))
    m.st(V("t0"))
    get_reg("t0", "addr")
    m.ld(V("addr"))
    m.sub_imm(2)
    m.st(V("addr"))
    set_reg("t0", "addr")
    # write return address (v_pc) little-endian at hosted [addr]
    m.ld(V("v_pc"))
    m.and_(m.const(0x00FF))
    m.st(V("val"))
    write_host_byte("addr", "val")
    extract_bits("v_pc", 8, 8, "val")
    copy("addr", "t1")
    add_const("t1", 1)
    write_host_byte("t1", "val")
    copy("imm", "v_pc")
    m.jmp(main_loop)

    m.place(handlers[Opcode.RET])
    m.load_imm(int(Register.SP))
    m.st(V("t0"))
    get_reg("t0", "addr")
    load_word_host("addr", "v_pc")
    m.ld(V("addr"))
    m.add_imm(2)
    m.st(V("addr"))
    # load_word_host clobbers t0, so the SP register index must be reloaded
    # before writing the updated stack pointer back.
    m.load_imm(int(Register.SP))
    m.st(V("t0"))
    set_reg("t0", "addr")
    m.jmp(main_loop)

    return m.assemble()


def dynarisc_emulator_image() -> VeRiscProgram:
    """Cached copy of the assembled DynaRisc-in-VeRisc emulator."""
    global _cached_program
    if _cached_program is None:
        _cached_program = build_dynarisc_emulator()
    return _cached_program


# --------------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------------- #
class NestedDynaRiscMachine:
    """Run a DynaRisc program inside the VeRisc-hosted DynaRisc emulator.

    This is the restoration-time stack of Figure 2b: the (future user's)
    VeRisc machine runs the archived DynaRisc emulator, which runs the
    archived decoder, which consumes the scanned byte stream.
    """

    def __init__(self, program: bytes, input_data: bytes = b"", entry: int = 0,
                 step_limit: int = 400_000_000):
        if len(program) > HOSTED_MEMORY_BYTES:
            raise MachineFault(
                f"program of {len(program)} bytes exceeds the nested emulator's "
                f"{HOSTED_MEMORY_BYTES}-byte hosted memory"
            )
        self.interpreter = dynarisc_emulator_image()
        self.program = bytes(program)
        self.entry = entry
        self.input_data = bytes(input_data)
        self.step_limit = step_limit

    def run(self) -> bytes:
        """Execute the nested stack and return the decoder's output bytes."""
        machine = VeRiscMachine(step_limit=self.step_limit, input_data=self.input_data)
        machine.load_image(self.interpreter.words, origin=self.interpreter.origin)
        machine.load_image(list(self.program), origin=HOST_BASE)
        # Tell the interpreter where the hosted program starts executing.
        machine.state.memory[self.interpreter.symbols["v_pc"]] = self.entry
        output = machine.run(start=self.interpreter.entry)
        self.steps = machine.state.steps
        return output
