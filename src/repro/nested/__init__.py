"""Nested universal emulation (§3.2 of the paper).

Olonys does not merely emulate DynaRisc: to minimise the work a future user
must do, it *nests* two emulators.  The user hand-implements only the
four-instruction VeRisc machine; an emulator for the 23-instruction DynaRisc
processor — itself written using nothing but the four VeRisc instructions —
is archived as Bootstrap letters, and the archived DynaRisc decoders then run
inside it.

This package builds that middle layer: :func:`build_dynarisc_emulator`
generates the DynaRisc-interpreter-as-a-VeRisc-program with the macro
assembler, and :class:`NestedDynaRiscMachine` wires a DynaRisc program, its
input stream and the generated interpreter into a plain VeRisc machine, so
the whole restoration stack exercises exactly the chain a future user would
run.
"""

from repro.nested.dynarisc_in_verisc import (
    HOSTED_MEMORY_BYTES,
    build_dynarisc_emulator,
    dynarisc_emulator_image,
    NestedDynaRiscMachine,
)

__all__ = [
    "HOSTED_MEMORY_BYTES",
    "build_dynarisc_emulator",
    "dynarisc_emulator_image",
    "NestedDynaRiscMachine",
]
