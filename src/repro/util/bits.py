"""Bit-level readers and writers.

The media coder works on bit streams (the paper's "compressed bit stream"),
while Python naturally deals in bytes.  ``BitWriter`` and ``BitReader`` provide
MSB-first bit access with explicit end-of-stream behaviour, and the module
offers vectorised helpers built on numpy for whole-buffer conversions.
"""

from __future__ import annotations

import numpy as np
from repro.util.nptypes import BitArray


class BitWriter:
    """Accumulates bits MSB-first and renders them as bytes.

    >>> w = BitWriter()
    >>> w.write_bits(0b101, 3)
    >>> w.write_bit(1)
    >>> w.to_bytes()
    b'\\xb0'
    """

    def __init__(self) -> None:
        self._bits: list[int] = []

    def __len__(self) -> int:
        return len(self._bits)

    def write_bit(self, bit: int) -> None:
        """Append a single bit (any truthy value counts as 1)."""
        self._bits.append(1 if bit else 0)

    def write_bits(self, value: int, count: int) -> None:
        """Append the ``count`` low-order bits of ``value``, MSB first."""
        if count < 0:
            raise ValueError("bit count must be non-negative")
        for shift in range(count - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes, each MSB first."""
        for byte in data:
            self.write_bits(byte, 8)

    def to_bitarray(self) -> BitArray:
        """Return the bits as a uint8 numpy array of 0/1 values."""
        return np.array(self._bits, dtype=np.uint8)

    def to_bytes(self) -> bytes:
        """Return the bits packed into bytes, zero-padded to a byte boundary."""
        return bits_to_bytes(self.to_bitarray())


class BitReader:
    """Reads bits MSB-first from a byte string or a 0/1 array.

    ``read_bit`` and ``read_bits`` raise :class:`EOFError` when the stream is
    exhausted, which lets decoders distinguish truncation from padding.
    """

    def __init__(self, data: bytes | BitArray):
        if isinstance(data, (bytes, bytearray, memoryview)):
            self._bits = bytes_to_bits(bytes(data))
        else:
            self._bits = np.asarray(data, dtype=np.uint8).ravel()
        self._pos = 0

    def __len__(self) -> int:
        return int(self._bits.size)

    @property
    def position(self) -> int:
        """Number of bits consumed so far."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Number of bits still available."""
        return int(self._bits.size) - self._pos

    def read_bit(self) -> int:
        """Read one bit, raising ``EOFError`` at end of stream."""
        if self._pos >= self._bits.size:
            raise EOFError("bit stream exhausted")
        bit = int(self._bits[self._pos])
        self._pos += 1
        return bit

    def read_bits(self, count: int) -> int:
        """Read ``count`` bits MSB-first and return them as an integer."""
        if count < 0:
            raise ValueError("bit count must be non-negative")
        if self._pos + count > self._bits.size:
            raise EOFError("bit stream exhausted")
        value = 0
        chunk = self._bits[self._pos:self._pos + count]
        self._pos += count
        for bit in chunk:
            value = (value << 1) | int(bit)
        return value

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` whole bytes."""
        return bytes(self.read_bits(8) for _ in range(count))


def bytes_to_bits(data: bytes) -> BitArray:
    """Expand bytes into a uint8 array of bits, MSB first.

    >>> bytes_to_bits(b'\\xf0').tolist()
    [1, 1, 1, 1, 0, 0, 0, 0]
    """
    if len(data) == 0:
        return np.zeros(0, dtype=np.uint8)
    arr = np.frombuffer(data, dtype=np.uint8)
    return np.unpackbits(arr)


def bits_to_bytes(bits: BitArray) -> bytes:
    """Pack a 0/1 array into bytes MSB first, zero-padding the final byte.

    >>> bits_to_bytes(np.array([1, 1, 1, 1], dtype=np.uint8))
    b'\\xf0'
    """
    bits = np.asarray(bits, dtype=np.uint8).ravel()
    if bits.size == 0:
        return b""
    return np.packbits(bits).tobytes()
