"""CRC helpers used by container formats to detect corrupt restorations."""

from __future__ import annotations

import zlib


def crc32_of(data: bytes) -> int:
    """Return the CRC-32 of ``data`` as an unsigned 32-bit integer.

    The DBCoder container stores this value so a restoration can prove that
    the archive was recovered bit-for-bit, mirroring the paper's
    "full bit-for-bit restoration" claim.
    """
    return zlib.crc32(data) & 0xFFFFFFFF
