"""Shared low-level utilities: bit streams, CRC, deterministic RNG helpers."""

from repro.util.bits import BitReader, BitWriter, bytes_to_bits, bits_to_bytes
from repro.util.crc import crc32_of
from repro.util.rng import deterministic_rng

__all__ = [
    "BitReader",
    "BitWriter",
    "bytes_to_bits",
    "bits_to_bytes",
    "crc32_of",
    "deterministic_rng",
]
