"""Deterministic random-number helpers.

Every stochastic component in the library (distortion injection, workload
generation, benchmarks) derives its randomness from an explicit seed so that
experiments are exactly reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np


def deterministic_rng(seed: int | None) -> np.random.Generator:
    """Return a numpy Generator seeded deterministically.

    ``None`` maps to a fixed default seed rather than entropy from the OS, so
    that "unseeded" library calls are still reproducible.
    """
    if seed is None:
        seed = 0x1D50  # fixed default so "unseeded" still means reproducible
    return np.random.default_rng(seed)
