"""Deterministic random-number helpers.

Every stochastic component in the library (distortion injection, workload
generation, benchmarks) derives its randomness from an explicit seed so that
experiments are exactly reproducible run-to-run.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Fixed default seed so "unseeded" still means reproducible.
_DEFAULT_SEED = 0x1D50


def deterministic_rng(seed: "int | Sequence[int | None] | None") -> np.random.Generator:
    """Return a numpy Generator seeded deterministically.

    ``None`` maps to a fixed default seed rather than entropy from the OS, so
    that "unseeded" library calls are still reproducible.  A tuple/list seed
    spawns an independent stream per distinct tuple (numpy's SeedSequence
    entropy), which is how per-frame scan streams are derived from a base
    seed without threading RNG state through the frames.
    """
    if seed is None:
        seed = _DEFAULT_SEED
    elif isinstance(seed, (tuple, list)):
        seed = [_DEFAULT_SEED if part is None else int(part) for part in seed]
    return np.random.default_rng(seed)
