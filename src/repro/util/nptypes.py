"""Dtype-precise numpy array aliases for the archive stack's hot boundaries.

Annotating a raster as a bare ``np.ndarray`` documents *that* a buffer
crosses the boundary but not *what* it holds; these aliases pin the dtype
contracts the codecs actually rely on:

* every emblem raster is 8-bit grayscale (``uint8``, 0 = ink, 255 = blank) —
  the PGM writer, the Manchester cell detector and the channel simulations
  all assume that range without rescaling;
* Reed-Solomon parity and codeword buffers are GF(2^8) *symbols*, one per
  ``uint8`` — arithmetic on wider dtypes would silently leave the field;
* bit vectors are ``uint8`` arrays of 0/1 (``np.packbits`` discipline).

The aliases deliberately do not encode shape: a :data:`GrayImage` is
``(H, W)`` and a :data:`ImageStack` is ``(count, H, W)`` by convention
(documented where produced), since numpy's typing cannot yet express that
without losing compatibility with slicing.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

__all__ = ["ByteArray", "GrayImage", "ImageStack", "SymbolArray", "BitArray", "FloatImage"]

#: Generic ``uint8`` buffer (serialised payload bytes as an array).
ByteArray = NDArray[np.uint8]

#: One 8-bit grayscale raster, shape ``(H, W)``; 0 = ink, 255 = blank.
GrayImage = NDArray[np.uint8]

#: A batch of grayscale rasters, shape ``(count, H, W)``.
ImageStack = NDArray[np.uint8]

#: GF(2^8) symbols (Reed-Solomon data/parity), one symbol per ``uint8``.
SymbolArray = NDArray[np.uint8]

#: A 0/1 bit vector stored one bit per ``uint8``.
BitArray = NDArray[np.uint8]

#: Intermediate float raster (channel physics before re-quantisation).
FloatImage = NDArray[np.float64]
