"""Developer tooling for the repro archive stack (stdlib-only).

``repro.devtools`` hosts the custom static checks that guard the repo's
correctness contracts — the invariants a generic linter or type checker
cannot express.  Run the invariant linter with::

    python -m repro.devtools.lint [paths...] [--explain REPxxx] [--list-rules]

Rule IDs (stable; see ``--explain`` for full rationales):

- ``REP000`` / ``REP001`` — meta: files must parse; inline suppressions
  (``# lint: disable=<id> -- <why>``) must carry a justification.
- ``REP101`` — no global-state randomness outside ``repro/util/rng.py``.
- ``REP102`` — no bare ``except:`` / silently swallowed broad excepts.
- ``REP201`` — on-media format literals (magics, struct formats) only in
  their owning module; everyone else imports the named constant.
- ``REP301`` — no lambdas/closures handed to executor-submitted jobs.
- ``REP401`` — every name registered in :mod:`repro.registry` resolves.
- ``REP601`` — benchmark ``*_vs_*`` ratio keys carry a "higher/lower is
  better" direction comment.
- ``REP501`` — fields annotated ``# lint: guarded-by(<lock>)`` are only
  touched under ``with self.<lock>:`` (or in methods annotated
  ``# lint: requires-lock(<lock>)``); ``__init__`` is exempt.

This package must stay dependency-light: plain stdlib only, no numpy/scipy
imports at module scope, so the linter can parse the tree in environments
where the library's runtime dependencies are absent.
"""

from __future__ import annotations

__all__: list[str] = []
