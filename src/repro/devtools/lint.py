"""AST-based invariant linter for the repository's correctness contracts.

``python -m repro.devtools.lint [paths...]`` parses every Python file under
the given paths (default: ``src/repro``) and enforces the domain rules a
generic checker cannot express — the conventions the archive's
decode-it-decades-later story actually rests on.  See the rule classes (or
``--explain REPxxx``) for the full rationale of each rule:

========  ====================================================================
Rule      Contract
========  ====================================================================
REP000    files must parse (meta: syntax errors)
REP001    inline suppressions must carry a justification (meta)
REP101    no global-state randomness outside ``repro/util/rng.py``
REP102    no bare ``except:`` and no silently swallowed broad excepts
REP201    on-media format literals live only in their owning module
REP301    no lambdas/closures handed to executor-submitted jobs
REP401    every name registered in :mod:`repro.registry` resolves at import
REP501    ``# lint: guarded-by(<lock>)`` fields touched only under their lock
REP601    benchmark ``*_vs_*`` ratio keys document their direction
========  ====================================================================

Annotation conventions (written in comments, parsed via :mod:`tokenize`):

``# lint: disable=REP101 -- <justification>``
    Suppress the named rule(s) on this line.  The justification text after
    ``--`` is **required**; an unjustified suppression is itself reported
    (REP001).
``# lint: guarded-by(_lock)``
    On an attribute assignment (``self._stream = ...``): declares that the
    field may only be touched while ``self._lock`` is held (checked
    lexically, see :class:`GuardedByRule`).
``# lint: requires-lock(_lock)``
    On a ``def`` line: declares that every caller holds ``self._lock``, so
    accesses to guarded fields inside this method count as guarded.

The module is deliberately stdlib-only (``ast`` + ``tokenize``); linting
never imports the code under analysis, so it runs without numpy/scipy
installed.  The single exception is REP401, which *does* import
:mod:`repro.registry` to prove the registered names resolve — when that
import fails (e.g. no numpy in a minimal checkout) the rule is skipped with
a notice instead of failing the run.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
import textwrap
from dataclasses import dataclass, field
from pathlib import Path
from tokenize import COMMENT, TokenError, generate_tokens
from typing import Iterable, Iterator

from repro.devtools.contracts import (
    EXECUTOR_SUBMIT_METHODS,
    OWNED_LITERALS,
    RNG_MODULE_SUFFIXES,
)

__all__ = [
    "Finding",
    "Linter",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "RngRule",
    "SilentExceptRule",
    "OwnedLiteralRule",
    "ExecutorPickleRule",
    "RegistryRule",
    "GuardedByRule",
    "default_rules",
    "main",
]

_DISABLE_RE = re.compile(
    r"lint:\s*disable=(?P<ids>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)(?P<rest>.*)"
)
_JUSTIFY_RE = re.compile(r"^\s*--\s*(?P<why>\S.*)$")
_GUARDED_RE = re.compile(r"lint:\s*guarded-by\((?P<lock>[A-Za-z_]\w*)\)")
_REQUIRES_RE = re.compile(r"lint:\s*requires-lock\((?P<lock>[A-Za-z_]\w*)\)")


@dataclass(frozen=True)
class Finding:
    """One rule violation, pointing at a file and line."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class ModuleInfo:
    """A parsed module plus the lint annotations found in its comments."""

    path: Path
    relpath: str
    tree: ast.Module
    #: line -> rule ids suppressed on that line (justified ones only).
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: (line, detail) pairs for malformed/unjustified suppressions.
    bad_suppressions: list[tuple[int, str]] = field(default_factory=list)
    #: line -> lock name declared via ``guarded-by(...)``.
    guarded_by: dict[int, str] = field(default_factory=dict)
    #: line -> lock name declared via ``requires-lock(...)``.
    requires_lock: dict[int, str] = field(default_factory=dict)
    #: line -> raw comment text (without the leading ``#``) for every comment.
    comment_lines: dict[int, str] = field(default_factory=dict)


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain rooted at a Name, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _scan_comments(source: str, info: ModuleInfo) -> None:
    """Populate ``info``'s annotation maps from the module's comments."""
    lines = iter(source.splitlines(keepends=True))
    try:
        tokens = list(generate_tokens(lambda: next(lines, "")))
    except (TokenError, IndentationError, SyntaxError):  # ast already parsed;
        return  # a tokenize-only failure just loses comment annotations
    for token in tokens:
        if token.type != COMMENT:
            continue
        text = token.string.lstrip("#").strip()
        line = token.start[0]
        info.comment_lines[line] = text
        match = _DISABLE_RE.search(text)
        if match:
            ids = {part.strip() for part in match.group("ids").split(",")}
            justify = _JUSTIFY_RE.match(match.group("rest"))
            if justify is None:
                info.bad_suppressions.append(
                    (line, f"suppression of {', '.join(sorted(ids))} lacks a "
                           "justification (write `# lint: disable=<id> -- why`)")
                )
            else:
                info.suppressions.setdefault(line, set()).update(ids)
        match = _GUARDED_RE.search(text)
        if match:
            info.guarded_by[line] = match.group("lock")
        match = _REQUIRES_RE.search(text)
        if match:
            info.requires_lock[line] = match.group("lock")


# --------------------------------------------------------------------------- #
# Rules
# --------------------------------------------------------------------------- #
class Rule:
    """Base class: one named, stable-ID invariant check."""

    id = "REP000"
    title = "base rule"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        return iter(())

    def check_project(self) -> Iterator[Finding]:
        """Yield project-wide findings (after all modules were scanned)."""
        return iter(())

    def notices(self) -> list[str]:
        """Informational messages (e.g. a skipped runtime check)."""
        return []

    @classmethod
    def explain(cls) -> str:
        doc = cls.__doc__ or "(no documentation)"
        return f"{cls.id} — {cls.title}\n\n{textwrap.dedent(doc).strip()}\n"


class RngRule(Rule):
    """No global-state randomness outside ``repro/util/rng.py``.

    Every stochastic component (distortion injection, channel scans, workload
    generation) must derive its randomness from an explicit seed via
    ``repro.util.rng.deterministic_rng`` — per-frame scan streams are seeded
    by ``(seed, lane, frame_index)`` tuples, which is what makes restoration
    batching-, order- and executor-invariant.  A single ``np.random.rand()``
    (or stdlib ``random.random()``) call reintroduces hidden global state and
    silently breaks that reproducibility, so this rule flags:

    * any ``import random`` / ``from random import ...`` of the stdlib module;
    * any *call* through ``numpy.random`` (``np.random.rand(...)``,
      ``np.random.seed(...)``, even ``np.random.default_rng(...)`` — use
      ``deterministic_rng`` instead), under any import alias.

    Type annotations such as ``np.random.Generator`` are attribute loads, not
    calls, and stay allowed.
    """

    id = "REP101"
    title = "no global-state randomness outside util/rng.py"

    def __init__(self, allowed_suffixes: tuple[str, ...] = RNG_MODULE_SUFFIXES):
        self.allowed_suffixes = allowed_suffixes

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.relpath.endswith(self.allowed_suffixes):
            return
        numpy_aliases = {"numpy"}
        numpy_random_aliases: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name == "numpy":
                        numpy_aliases.add(name.asname or "numpy")
                    elif name.name == "numpy.random":
                        numpy_random_aliases.add(name.asname or "numpy")
                    elif name.name == "random" or name.name.startswith("random."):
                        yield Finding(
                            self.id, module.relpath, node.lineno,
                            "import of the stdlib `random` module (global RNG "
                            "state); seed explicitly via "
                            "repro.util.rng.deterministic_rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield Finding(
                        self.id, module.relpath, node.lineno,
                        "import from the stdlib `random` module (global RNG "
                        "state); seed explicitly via "
                        "repro.util.rng.deterministic_rng",
                    )
                elif node.module == "numpy" and node.level == 0:
                    for name in node.names:
                        if name.name == "random":
                            numpy_random_aliases.add(name.asname or "random")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            via_numpy = (
                len(parts) >= 3 and parts[0] in numpy_aliases and parts[1] == "random"
            )
            via_alias = len(parts) >= 2 and parts[0] in numpy_random_aliases and (
                parts[0] != "numpy" or parts[1] != "random"
            )
            if parts[0] in numpy_random_aliases and parts[0] == "numpy":
                via_alias = via_numpy  # plain `import numpy.random` binds `numpy`
            if via_numpy or via_alias:
                yield Finding(
                    self.id, module.relpath, node.lineno,
                    f"call to `{dotted}` uses numpy's global/ad-hoc RNG; derive "
                    "a Generator from an explicit seed via "
                    "repro.util.rng.deterministic_rng",
                )


class SilentExceptRule(Rule):
    """No bare ``except:`` and no silently swallowed broad excepts.

    An archival stack must fail loudly: a swallowed exception during encode
    can stamp a manifest that disagrees with what reached the medium, and one
    during restore can return plausible-but-wrong bytes.  Flagged:

    * ``except:`` with no exception type (also catches ``SystemExit`` /
      ``KeyboardInterrupt``);
    * ``except Exception:`` / ``except BaseException:`` (alone or in a
      tuple) whose body is only ``pass`` / ``...`` — a handler that broad
      must *do* something: log, annotate, re-raise, or convert the error.
    """

    id = "REP102"
    title = "no bare or silently swallowed broad excepts"

    _BROAD = ("Exception", "BaseException")

    @classmethod
    def _is_broad(cls, node: ast.expr | None) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.Tuple):
            return any(cls._is_broad(element) for element in node.elts)
        return isinstance(node, ast.Name) and node.id in cls._BROAD

    @staticmethod
    def _is_silent(body: list[ast.stmt]) -> bool:
        for statement in body:
            if isinstance(statement, ast.Pass):
                continue
            if (
                isinstance(statement, ast.Expr)
                and isinstance(statement.value, ast.Constant)
                and statement.value.value is Ellipsis
            ):
                continue
            return False
        return True

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    self.id, module.relpath, node.lineno,
                    "bare `except:` (catches SystemExit/KeyboardInterrupt too); "
                    "name the exceptions you can actually handle",
                )
            elif self._is_broad(node.type) and self._is_silent(node.body):
                yield Finding(
                    self.id, module.relpath, node.lineno,
                    "broad except silently swallows the error; handle it, "
                    "convert it, or narrow the exception type",
                )


class OwnedLiteralRule(Rule):
    """On-media format literals live only in their owning module.

    Struct format strings and magic/version byte constants define frozen
    on-media layouts (the container record stream, the DBCoder header, the
    emblem header).  Re-typing one of those literals inline in another module
    creates a duplicate that silently drifts when the owner changes — so each
    literal in :data:`repro.devtools.contracts.OWNED_LITERALS` may only
    appear in its owning module; everyone else imports the named constant.
    (:mod:`repro.devtools` itself is exempt — the contracts table is the
    declaration point.)
    """

    id = "REP201"
    title = "on-media format literals only in their owning module"

    def __init__(
        self,
        owned: dict[bytes | str, str] | None = None,
        exempt_suffixes: tuple[str, ...] = ("repro/devtools/contracts.py",
                                            "repro/devtools/lint.py"),
    ):
        self.owned = dict(OWNED_LITERALS if owned is None else owned)
        self.exempt_suffixes = exempt_suffixes

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.relpath.endswith(self.exempt_suffixes):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if not isinstance(value, (bytes, str)):
                continue
            owner = None
            for literal, literal_owner in self.owned.items():
                # bytes and str never compare equal, so the type check rides
                # on the `in`/== comparison directly.
                if type(literal) is type(value) and literal == value:
                    owner = literal_owner
                    break
            if owner is None or module.relpath.endswith(owner):
                continue
            yield Finding(
                self.id, module.relpath, node.lineno,
                f"inline duplicate of on-media format literal {value!r}; "
                f"import the named constant from its owner ({owner})",
            )


class ExecutorPickleRule(Rule):
    """No lambdas or closures handed to executor-submitted jobs.

    Work handed to ``submit(...)`` / ``map_ordered(...)`` may cross a
    process-pool pickle boundary, and the repo's contract is stronger than
    "it happens to work on threads today": every job callable must be a
    module-level function over plain data, so switching an executor name in
    a config never breaks a pipeline.  Flagged (lexically): passing a
    ``lambda`` or a function *defined inside the enclosing function* as the
    job callable.  Bound methods and module-level functions pass.
    """

    id = "REP301"
    title = "no lambdas/closures submitted as executor jobs"

    def __init__(self, submit_methods: tuple[str, ...] = EXECUTOR_SUBMIT_METHODS):
        self.submit_methods = submit_methods

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        findings: list[Finding] = []
        submit_methods = self.submit_methods
        rule_id = self.id
        relpath = module.relpath

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                #: One set of locally-defined function names per enclosing
                #: function scope (module scope is deliberately absent).
                self.scopes: list[set[str]] = []

            def _visit_function(
                self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
            ) -> None:
                if self.scopes:
                    self.scopes[-1].add(node.name)
                self.scopes.append(set())
                self.generic_visit(node)
                self.scopes.pop()

            visit_FunctionDef = _visit_function
            visit_AsyncFunctionDef = _visit_function

            def visit_Call(self, node: ast.Call) -> None:
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in submit_methods
                    and node.args
                ):
                    job = node.args[0]
                    if isinstance(job, ast.Lambda):
                        findings.append(Finding(
                            rule_id, relpath, job.lineno,
                            f"lambda passed to `{func.attr}(...)`; executor "
                            "jobs must be module-level functions (picklable "
                            "into process-pool workers)",
                        ))
                    elif isinstance(job, ast.Name) and any(
                        job.id in scope for scope in self.scopes
                    ):
                        findings.append(Finding(
                            rule_id, relpath, job.lineno,
                            f"closure `{job.id}` passed to `{func.attr}(...)`; "
                            "executor jobs must be module-level functions "
                            "(picklable into process-pool workers)",
                        ))
                self.generic_visit(node)

        Visitor().visit(module.tree)
        yield from findings


class RegistryRule(Rule):
    """Every name registered in :mod:`repro.registry` resolves at import time.

    The registries are the in-process half of the paper's self-description
    contract: an archive manifest names its codec/media/store purely by
    string, so a name that registers but does not resolve (a dangling alias,
    an entry whose factory raises) is a latent restore failure.  This rule
    *imports* ``repro.registry`` and resolves every registered name and
    alias in every registry.

    Unlike the other rules this requires the library's runtime dependencies;
    when the import fails (e.g. numpy is not installed) the check is skipped
    with a notice, never a finding — the parse-only rules still run.
    """

    id = "REP401"
    title = "registered registry names must resolve"

    def __init__(self) -> None:
        self._notices: list[str] = []

    def check_project(self) -> Iterator[Finding]:
        try:
            from repro import registry
        except Exception as exc:  # noqa: BLE001 — any import failure means
            # the runtime check cannot run here; parse-only rules still did.
            self._notices.append(
                f"{self.id} skipped: repro.registry not importable ({exc})"
            )
            return
        for reg in (
            registry.codecs,
            registry.media,
            registry.executors,
            registry.distortions,
            registry.stores,
        ):
            names = set(reg.names())
            for name in sorted(names):
                try:
                    reg.get(name)
                except Exception as exc:  # noqa: BLE001 — report, don't crash
                    yield Finding(
                        self.id, f"repro.registry[{reg.kind}]", 0,
                        f"registered name {name!r} does not resolve: {exc}",
                    )
            for alias, target in sorted(reg.aliases().items()):
                if target not in names:
                    yield Finding(
                        self.id, f"repro.registry[{reg.kind}]", 0,
                        f"alias {alias!r} points at unregistered name {target!r}",
                    )

    def notices(self) -> list[str]:
        return list(self._notices)


class GuardedByRule(Rule):
    """Fields declared ``# lint: guarded-by(<lock>)`` are touched only under
    their lock.

    Shared handles crossed by threads (the container source's seek+read
    stream under prefetching, the archive writer's encoder-thread error slot,
    the prefetcher's in-flight queue) carry an explicit annotation on the
    assignment that creates them::

        self._stream = open(path, "rb")  # lint: guarded-by(_lock)

    Every *other* lexical access to ``self._stream`` in that class must then
    sit inside ``with self._lock:`` — or inside a method whose ``def`` line
    is annotated ``# lint: requires-lock(_lock)``, which documents (and
    shifts to the callers) the lock obligation.  ``__init__`` is exempt: the
    object is not shared before construction completes.  The check is
    lexical, not a race detector — it proves the *convention* is followed,
    and makes every deliberate exception visible in the diff.
    """

    id = "REP501"
    title = "guarded-by fields accessed only under their lock"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleInfo, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        guarded: dict[str, str] = {}
        for node in ast.walk(cls):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            else:
                continue
            lock = None
            for line in range(node.lineno, (node.end_lineno or node.lineno) + 1):
                if line in module.guarded_by:
                    lock = module.guarded_by[line]
                    break
            if lock is None:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    guarded[target.attr] = lock
        if not guarded:
            return
        for statement in cls.body:
            if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if statement.name == "__init__":
                continue
            held: frozenset[str] = frozenset()
            lock = module.requires_lock.get(statement.lineno)
            if lock is not None:
                held = frozenset({lock})
            yield from self._check_body(
                module, statement.body, guarded, held, statement.name
            )

    def _check_body(
        self,
        module: ModuleInfo,
        body: Iterable[ast.stmt],
        guarded: dict[str, str],
        held: frozenset[str],
        method: str,
    ) -> Iterator[Finding]:
        for statement in body:
            yield from self._check_node(module, statement, guarded, held, method)

    def _check_node(
        self,
        module: ModuleInfo,
        node: ast.AST,
        guarded: dict[str, str],
        held: frozenset[str],
        method: str,
    ) -> Iterator[Finding]:
        if isinstance(node, ast.With):
            acquired = set()
            for item in node.items:
                dotted = _dotted_name(item.context_expr)
                if dotted is not None and dotted.startswith("self."):
                    acquired.add(dotted[len("self."):])
            for item in node.items:
                yield from self._check_node(
                    module, item.context_expr, guarded, held, method
                )
            inner = held | frozenset(acquired)
            for statement in node.body:
                yield from self._check_node(module, statement, guarded, inner, method)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested function runs later, possibly without the lock.
            inner = frozenset()
            children = node.body if isinstance(node.body, list) else [node.body]
            for child in children:
                yield from self._check_node(module, child, guarded, inner, method)
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in guarded
            and guarded[node.attr] not in held
        ):
            lock = guarded[node.attr]
            yield Finding(
                self.id, module.relpath, node.lineno,
                f"field `self.{node.attr}` is guarded by `self.{lock}` but "
                f"`{method}()` touches it outside `with self.{lock}:` "
                f"(annotate the method `# lint: requires-lock({lock})` if "
                "every caller holds it)",
            )
        for child in ast.iter_child_nodes(node):
            yield from self._check_node(module, child, guarded, held, method)

class RatioDirectionRule(Rule):
    """Benchmark ratio keys named ``*_vs_*`` must document their direction.

    The committed benchmark trajectory gates on JSON fields, and a ratio
    named ``a_vs_b`` reads plausibly in either orientation — the
    ``penalty_vs_healthy`` field was recorded *inverted* for two releases
    because nothing said whether bigger meant faster or slower.  Any string
    literal containing ``_vs_`` used as a dict key (or subscript target) in
    benchmark code must therefore carry a comment within the three lines
    above it (or on its own line) saying ``higher is better`` or ``lower is
    better``.

    Only modules under a ``benchmarks`` directory are checked.
    """

    id = "REP601"
    title = "benchmark *_vs_* ratio keys document their direction"

    #: How far above the key a direction comment may sit.
    LOOKBACK_LINES = 3

    _DIRECTION_RE = re.compile(r"(higher|lower)\s+is\s+better", re.IGNORECASE)

    def _is_benchmark_module(self, module: ModuleInfo) -> bool:
        parts = Path(module.relpath).parts
        return "benchmarks" in parts[:-1]

    def _has_direction_comment(self, module: ModuleInfo, line: int) -> bool:
        for candidate in range(line - self.LOOKBACK_LINES, line + 1):
            text = module.comment_lines.get(candidate)
            if text and self._DIRECTION_RE.search(text):
                return True
        return False

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self._is_benchmark_module(module):
            return
        for node in ast.walk(module.tree):
            keys: list[ast.expr] = []
            if isinstance(node, ast.Dict):
                keys = [key for key in node.keys if key is not None]
            elif isinstance(node, ast.Subscript) and isinstance(
                getattr(node, "ctx", None), ast.Store
            ):
                keys = [node.slice]
            for key in keys:
                if not (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and "_vs_" in key.value
                ):
                    continue
                if not self._has_direction_comment(module, key.lineno):
                    yield Finding(
                        self.id, module.relpath, key.lineno,
                        f"ratio key {key.value!r} has no direction comment; "
                        "add `# ... higher is better` or `# ... lower is "
                        "better` within the three lines above it",
                    )


def default_rules() -> list[Rule]:
    """The rule set ``python -m repro.devtools.lint`` runs with."""
    return [
        RngRule(),
        SilentExceptRule(),
        OwnedLiteralRule(),
        ExecutorPickleRule(),
        RegistryRule(),
        GuardedByRule(),
        RatioDirectionRule(),
    ]


_ALL_RULE_CLASSES: tuple[type[Rule], ...] = (
    RngRule,
    SilentExceptRule,
    OwnedLiteralRule,
    ExecutorPickleRule,
    RegistryRule,
    GuardedByRule,
    RatioDirectionRule,
)


# --------------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------------- #
@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding]
    notices: list[str]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.findings


class Linter:
    """Run a rule set over a file tree, applying inline suppressions."""

    def __init__(self, rules: "list[Rule] | None" = None, root: "Path | None" = None):
        self.rules = default_rules() if rules is None else list(rules)
        self.root = Path.cwd() if root is None else Path(root)

    # ------------------------------------------------------------------ #
    def _relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def _collect(self, paths: Iterable["str | Path"]) -> list[Path]:
        files: list[Path] = []
        for entry in paths:
            path = Path(entry)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            else:
                files.append(path)
        return files

    def _parse(self, path: Path) -> "ModuleInfo | Finding":
        relpath = self._relpath(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            return Finding("REP000", relpath, 0, f"cannot read file: {exc}")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return Finding("REP000", relpath, exc.lineno or 0, f"syntax error: {exc.msg}")
        info = ModuleInfo(path=path, relpath=relpath, tree=tree)
        _scan_comments(source, info)
        return info

    # ------------------------------------------------------------------ #
    def run(self, paths: Iterable["str | Path"]) -> LintResult:
        findings: list[Finding] = []
        files = self._collect(paths)
        for path in files:
            parsed = self._parse(path)
            if isinstance(parsed, Finding):
                findings.append(parsed)
                continue
            for line, detail in parsed.bad_suppressions:
                findings.append(Finding("REP001", parsed.relpath, line, detail))
            for rule in self.rules:
                for finding in rule.check_module(parsed):
                    suppressed = parsed.suppressions.get(finding.line, set())
                    if finding.rule not in suppressed:
                        findings.append(finding)
        for rule in self.rules:
            findings.extend(rule.check_project())
        notices = [notice for rule in self.rules for notice in rule.notices()]
        findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return LintResult(findings=findings, notices=notices, files_checked=len(files))


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def _explain(rule_id: str) -> int:
    for rule_cls in _ALL_RULE_CLASSES:
        if rule_cls.id == rule_id:
            print(rule_cls.explain())
            return 0
    known = ", ".join(cls.id for cls in _ALL_RULE_CLASSES)
    print(f"unknown rule {rule_id!r} (known rules: {known})", file=sys.stderr)
    return 2


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Invariant linter for the repo's correctness contracts.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--explain", metavar="RULE",
        help="print the rationale of one rule (e.g. --explain REP101) and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule IDs and titles",
    )
    parser.add_argument(
        "--no-registry-check", action="store_true",
        help="skip REP401 (the only rule that imports the library)",
    )
    args = parser.parse_args(argv)

    if args.explain:
        return _explain(args.explain)
    if args.list_rules:
        for rule_cls in _ALL_RULE_CLASSES:
            print(f"{rule_cls.id}  {rule_cls.title}")
        return 0

    paths = args.paths or ["src/repro"]
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    rules = default_rules()
    if args.no_registry_check:
        rules = [rule for rule in rules if rule.id != RegistryRule.id]
    result = Linter(rules=rules).run(paths)
    for finding in result.findings:
        print(finding.render())
    for notice in result.notices:
        print(f"note: {notice}", file=sys.stderr)
    if result.findings:
        print(
            f"{len(result.findings)} finding(s) in {result.files_checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"ok: {result.files_checked} file(s) clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
