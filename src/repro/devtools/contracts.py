"""The repository's machine-checked correctness contracts (pure data).

This module is the single place where the invariant linter's *domain
knowledge* lives: which on-media magic numbers and struct format strings are
owned by which module, and which modules are allowed to touch global
randomness.  Keeping the tables here (and not inside the rule classes) makes
the contracts reviewable at a glance and lets tests substitute their own.

Everything in :mod:`repro.devtools` is deliberately dependency-light: plain
stdlib only, so ``python -m repro.devtools.lint`` parses the tree without
numpy/scipy ever loading.
"""

from __future__ import annotations

__all__ = ["OWNED_LITERALS", "RNG_MODULE_SUFFIXES", "EXECUTOR_SUBMIT_METHODS"]

#: On-media format literals and the module that *owns* each one.  A literal
#: listed here may only appear in its owning module (matched by path suffix);
#: any other occurrence is an inline duplicate of a frozen format constant —
#: the kind that silently drifts when the owner changes.  Owners export the
#: constant by name instead.
OWNED_LITERALS: dict[bytes | str, str] = {
    # Container archive layout (repro.store.backends)
    b"ULEARC02": "repro/store/backends.py",  # container file magic
    b"ULEIDX02": "repro/store/backends.py",  # trailer index magic
    "<Q8s": "repro/store/backends.py",  # trailer struct format
    # DBCoder container header (repro.dbcoder.formats)
    b"ULEA": "repro/dbcoder/formats.py",  # container magic
    "<4sBBHIII": "repro/dbcoder/formats.py",  # header struct format
    # Emblem header (repro.mocoder.emblem)
    b"EM": "repro/mocoder/emblem.py",  # emblem header magic
    "<2sBBHHHBBIII": "repro/mocoder/emblem.py",  # header struct format
}

#: Modules (path suffixes) allowed to construct numpy/stdlib RNGs.  All other
#: code must derive randomness from an explicit seed via
#: ``repro.util.rng.deterministic_rng`` so that per-frame scan streams stay
#: reproducible and batching/order-invariant.
RNG_MODULE_SUFFIXES: tuple[str, ...] = ("repro/util/rng.py",)

#: Method names that hand a callable to an executor.  The callable crosses a
#: (potential) pickle boundary, so lambdas and closures are forbidden — jobs
#: must be module-level functions over plain data.
EXECUTOR_SUBMIT_METHODS: tuple[str, ...] = ("submit", "map_ordered")
