"""The unified archival configuration: one dataclass describes a whole run.

An :class:`ArchiveConfig` names every pluggable choice of the seven-step
flow — media channel, compression codec, outer code, segment size, executor,
restoration decode mode, scanner distortion — by *string* through
:mod:`repro.registry`, so a config is plain data: it JSON round-trips, ships
alongside an archive, and fully reproduces a run on another machine.  This
is the paper's self-describing-contract idea applied to the library's own
surface area.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any

from repro import registry
from repro.core.profiles import MediaProfile
from repro.core.restorer import DECODE_MODES
from repro.dbcoder.formats import HEADER_SIZE as CONTAINER_HEADER_SIZE
from repro.errors import ConfigError, UnknownNameError
from repro.media.channel import MediaChannel
from repro.mocoder.mocoder import MOCoder
from repro.pipeline.executors import parse_executor_spec
from repro.pipeline.segmenter import segment_count

__all__ = ["ArchiveConfig"]

#: Whether a media profile's channel applies raster distortion profiles,
#: memoised per profile object so config validation doesn't rebuild a
#: channel on every construction.  Values hold a strong reference to the
#: profile so ids are never reused.
_DISTORTION_SUPPORT: dict[int, tuple[MediaProfile, bool]] = {}


def _channel_supports_distortion(profile: MediaProfile) -> bool:
    cached = _DISTORTION_SUPPORT.get(id(profile))
    if cached is not None and cached[0] is profile:
        return cached[1]
    supports = getattr(profile.channel(), "supports_distortion", True)
    _DISTORTION_SUPPORT[id(profile)] = (profile, supports)
    return supports


@dataclass(frozen=True)
class ArchiveConfig:
    """Everything needed to archive (and restore) a payload, by name.

    Parameters
    ----------
    media:
        Media channel name from :data:`repro.registry.media`
        (``"paper"``, ``"microfilm"``, ``"cinema"``, ``"dna"``, ``"test"``,
        or a canonical profile name).  Canonicalised on construction.
    codec:
        Compression codec name from :data:`repro.registry.codecs`
        (``"store"`` / ``"portable"`` / ``"dense"`` or a user codec).
    executor:
        Pipeline executor spec: a registry name optionally suffixed with a
        worker count (``"serial"``, ``"thread:4"``, ``"process"``, ``"auto"``).
    outer_code:
        Whether MOCoder adds the 17+3 inter-emblem parity groups.
    segment_size:
        Payload bytes per pipeline segment; ``None`` keeps the whole payload
        in one segment (the historical one-shot layout).
    decode_mode:
        Restoration fidelity: ``"python"`` (reference decoders),
        ``"dynarisc"`` or ``"nested"`` (emulated decoders).
    decode_parallelism:
        Sub-segment restore parallelism: each segment's emblem-image
        decoding is split into up to this many contiguous chunks mapped
        through the executor, so even a single huge segment decodes in
        parallel.  ``1`` (the default) keeps one decode job per segment.
    readahead:
        Partial-restore prefetch depth: during
        :meth:`~repro.api.ArchiveReader.read_range` /
        :meth:`~repro.api.ArchiveReader.restore_segment`, up to this many
        segments' frames are fetched from the storage backend on background
        threads while earlier segments decode.  ``0`` (the default) fetches
        lazily inline.
    distortion:
        Optional distortion-profile name from
        :data:`repro.registry.distortions` overriding the channel's default
        scanner model; ``None`` keeps the channel default.
    store:
        Optional storage-backend name from :data:`repro.registry.stores`
        (``"directory"``, ``"container"``, ``"memory"``, ``"volumes"``) used
        when a session is given a ``target`` to persist to / read from;
        ``None`` lets the session infer the backend from the target.
    volume_parity:
        Default M (parity volume count) applied when a ``vol:`` target URI
        omits ``m=``; ignored for non-volume targets.
    volume_stripe:
        Default stripe depth (frames per shard per stripe) applied when a
        ``vol:`` target URI omits ``stripe=``; ignored otherwise.
    scan_seed:
        Seed for the simulated record/scan cycle (reproducible damage).
    payload_kind:
        Recorded in the manifest; ``"sql"`` payloads are reloaded into the
        miniature DBMS at restore time.
    """

    media: str = "test-small"
    codec: str = "portable"
    executor: str = "serial"
    outer_code: bool = True
    segment_size: int | None = None
    decode_mode: str = "python"
    decode_parallelism: int = 1
    readahead: int = 0
    distortion: str | None = None
    scan_seed: int | None = None
    payload_kind: str = "binary"
    store: str | None = None
    volume_parity: int = 1
    volume_stripe: int = 1

    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        try:
            object.__setattr__(self, "media", registry.media.resolve_name(self.media))
            object.__setattr__(self, "codec", registry.codecs.resolve_name(self.codec))
            name, workers = parse_executor_spec(self.executor)
            registry.executors.resolve_name(name)
            if self.distortion is not None:
                object.__setattr__(
                    self, "distortion", registry.distortions.resolve_name(self.distortion)
                )
            if self.store is not None:
                object.__setattr__(
                    self, "store", registry.stores.resolve_name(self.store)
                )
        except UnknownNameError as exc:
            raise ConfigError(str(exc)) from exc
        except ValueError as exc:
            raise ConfigError(str(exc)) from exc
        if self.segment_size is not None and self.segment_size <= 0:
            raise ConfigError(
                f"segment_size must be a positive byte count or None, got {self.segment_size}"
            )
        if self.distortion is not None:
            # Reject overrides the channel would silently ignore (e.g. the
            # DNA channel, whose error model is strand-level).
            if not _channel_supports_distortion(registry.get_media(self.media)):
                raise ConfigError(
                    f"media channel {self.media!r} does not apply raster "
                    "distortion profiles; its degradation is configured on "
                    "the channel itself"
                )
        if self.decode_mode not in DECODE_MODES:
            raise ConfigError(
                f"decode_mode must be one of {DECODE_MODES}, got {self.decode_mode!r}"
            )
        if not isinstance(self.decode_parallelism, int) or self.decode_parallelism < 1:
            raise ConfigError(
                f"decode_parallelism must be an integer >= 1, got {self.decode_parallelism!r}"
            )
        if not isinstance(self.readahead, int) or self.readahead < 0:
            raise ConfigError(
                f"readahead must be an integer >= 0, got {self.readahead!r}"
            )
        if not isinstance(self.volume_parity, int) or self.volume_parity < 1:
            raise ConfigError(
                f"volume_parity must be an integer >= 1, got {self.volume_parity!r}"
            )
        if not isinstance(self.volume_stripe, int) or self.volume_stripe < 1:
            raise ConfigError(
                f"volume_stripe must be an integer >= 1, got {self.volume_stripe!r}"
            )
        if workers is None and ":" in self.executor:
            # "thread:" with an empty count normalises to the bare name.
            object.__setattr__(self, "executor", name)

    # ------------------------------------------------------------------ #
    # Serialisation: a config is plain data and must survive JSON exactly.
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """The config as a JSON-serialisable dict."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, fields: dict[str, Any]) -> "ArchiveConfig":
        """Build (and validate) a config from :meth:`to_dict` output.

        Raises
        ------
        ConfigError
            On unknown keys, unknown registry names, or invalid values.
        """
        if not isinstance(fields, dict):
            raise ConfigError(f"config must be a JSON object, got {type(fields).__name__}")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(fields) - known)
        if unknown:
            raise ConfigError(
                f"unknown config keys: {', '.join(unknown)} "
                f"(valid keys: {', '.join(sorted(known))})"
            )
        return cls(**fields)

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise the config as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ArchiveConfig":
        """Parse a config from JSON text (inverse of :meth:`to_json`)."""
        try:
            fields = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"config is not valid JSON: {exc}") from exc
        return cls.from_dict(fields)

    def replace(self, **changes: Any) -> "ArchiveConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Resolution: names -> live objects.
    # ------------------------------------------------------------------ #
    def media_profile(self) -> MediaProfile:
        """The resolved media profile, with any distortion override applied."""
        base = registry.get_media(self.media)
        if self.distortion is None:
            return base
        distortion = registry.get_distortion(self.distortion)

        def channel_with_override() -> MediaChannel:
            channel = base.channel()
            channel.distortion = distortion
            return channel

        return dataclasses.replace(base, channel_factory=channel_with_override)

    def resolve_codec(self) -> "registry.Codec":
        """The resolved compression codec."""
        return registry.get_codec(self.codec)

    def channel(self) -> MediaChannel:
        """A fresh media channel instance for step 7 (record/scan)."""
        return self.media_profile().channel()

    # ------------------------------------------------------------------ #
    def estimate_emblems(self, payload_bytes: int) -> int:
        """Estimate the data-emblem count for a payload of ``payload_bytes``.

        Exact for the ``store`` codec; an upper bound for compressible
        payloads under the compressing codecs (compression is not modelled).
        """
        profile = self.media_profile()
        mocoder = MOCoder(profile.spec, outer_code=self.outer_code)
        segments = segment_count(payload_bytes, self.segment_size)
        total = 0
        remaining = payload_bytes
        for _ in range(segments):
            if self.segment_size is None:
                length = remaining
            else:
                length = min(self.segment_size, remaining)
            total += mocoder.total_emblems_needed(length + CONTAINER_HEADER_SIZE)
            remaining -= length
        return total

    def describe(self) -> str:
        """One-line human description (used by the CLI)."""
        parts = [f"media={self.media}", f"codec={self.codec}", f"executor={self.executor}"]
        parts.append(f"segment_size={self.segment_size if self.segment_size else 'one-shot'}")
        parts.append(f"outer_code={'on' if self.outer_code else 'off'}")
        if self.distortion:
            parts.append(f"distortion={self.distortion}")
        if self.decode_mode != "python":
            parts.append(f"decode_mode={self.decode_mode}")
        if self.decode_parallelism != 1:
            parts.append(f"decode_parallelism={self.decode_parallelism}")
        if self.readahead:
            parts.append(f"readahead={self.readahead}")
        return " ".join(parts)
