"""Session-based streaming I/O over the archival pipeline.

:func:`open_archive` returns an :class:`ArchiveWriter` — a context manager
that accepts payload chunks of any size via :meth:`~ArchiveWriter.write` and
encodes them *while they arrive*: a background thread drives the streaming
pipeline over a bounded queue, so segments encode (optionally in parallel)
concurrently with the caller producing data, and per-segment progress
callbacks fire as emblem batches complete.  :func:`open_restore` is the
reading half, and :func:`run_end_to_end` runs all seven steps of Figure 2a —
including step 7's channel ``record``/``scan``, which no previous entry
point covered — in one call.
"""

from __future__ import annotations

import bisect
import dataclasses
import queue
import threading
from types import TracebackType
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Protocol

import numpy as np

from repro.api.config import ArchiveConfig
from repro.core.archive import ArchiveManifest, MicrOlonysArchive, SegmentRecord
from repro.core.restorer import RestorationResult, RestoreEngine, VerifyReport
from repro.errors import ArchiveError, RestorationError, StoreError
from repro.pipeline.pipeline import (
    ArchivePipeline,
    EncodedSegment,
    RestorePipeline,
    build_system_artifacts,
)
from repro.store import (
    BOOTSTRAP_NAME,
    ArchiveSource,
    FramePrefetcher,
    TargetSpec,
    load_archive,
    manifest_digest,
    open_append_sink,
    open_sink,
    open_source,
    parse_target,
)

__all__ = [
    "ArchiveWriter",
    "ArchiveReader",
    "EndToEndResult",
    "SegmentCacheLike",
    "open_archive",
    "open_restore",
    "run_end_to_end",
]

#: Sentinel closing the writer's chunk queue.
_EOF = object()


class SegmentCacheLike(Protocol):
    """What :class:`ArchiveReader` needs from a shared decoded-segment cache.

    Keys are the manifest-v3 per-segment SHA-256 hex digests — *content*
    addresses, so an appended generation or a re-uploaded archive can never
    serve stale bytes through a matching key: different payload bytes hash
    to a different key.  Implementations must be safe for concurrent calls
    from multiple threads (:class:`repro.server.SegmentCache`, shared across
    request handlers, is the canonical one).
    """

    def get(self, key: str) -> bytes | None:
        """The cached payload for ``key``, or ``None`` on a miss."""
        ...  # pragma: no cover - protocol

    def put(self, key: str, data: bytes) -> None:
        """Admit ``data`` under ``key`` (the cache may decline or evict)."""
        ...  # pragma: no cover - protocol


class ArchiveWriter:
    """A streaming archival session (returned by :func:`open_archive`).

    Usage::

        with open_archive(config) as writer:
            for chunk in source:
                writer.write(chunk)
        archive = writer.archive        # or the return value of close()

    Chunks are re-segmented by the pipeline's segmenter, so ``write`` calls
    need not align with segment boundaries.  Encoding runs on a background
    thread while the caller keeps writing; at most a bounded window of
    chunks and in-flight segments exist at once.  ``progress`` (if given) is
    called with each completed :class:`~repro.core.archive.SegmentRecord`,
    from the encoder thread.

    With a ``target`` the session also *persists* the archive through a
    :mod:`repro.store` backend: emblem frames stream onto the target as each
    batch completes, and ``close()`` writes the system emblems, the
    Bootstrap, the session config and the v3 manifest alongside them —
    ``collect`` then defaults to ``False``, so huge archives stay
    memory-bounded on the way to disk.

    With an ``append_base`` manifest (see ``open_archive(append=True)``)
    the session *extends* an existing target instead of creating one: frame
    numbering, segment indices and payload offsets resume where the base
    manifest left off, the whole-archive CRC-32 chains through the appended
    bytes, and ``close()`` writes a superseding manifest one generation up
    whose ``parent`` digest pins the base — the new manifest's segment list
    is cumulative, so readers address the whole multi-generation payload
    exactly as if it had been archived in one session.
    """

    def __init__(
        self,
        config: ArchiveConfig,
        *,
        payload_kind: str | None = None,
        progress: Callable[[SegmentRecord], None] | None = None,
        on_batch: Callable[[EncodedSegment], None] | None = None,
        collect: bool | None = None,
        target: "str | Path | None" = None,
        store: str | None = None,
        append_base: ArchiveManifest | None = None,
    ):
        self.config = config
        self.payload_kind = payload_kind if payload_kind is not None else config.payload_kind
        self.progress = progress
        self.on_batch = on_batch
        self.target = target
        self._store = store
        #: The parsed target spec every store operation of this session
        #: routes through — one :func:`repro.store.parse_target` call per
        #: session, so the bare-path deprecation warns once and ``vol:``
        #: geometry defaults (``config.volume_parity``/``volume_stripe``)
        #: apply only when *creating* a volume set (an appended set's
        #: geometry is read back from the medium instead).
        self._spec: TargetSpec | None = None
        if target is not None:
            self._spec = parse_target(
                target,
                store=store if store is not None else config.store,
                default_store=None if append_base is not None else "directory",
            )
            if append_base is None:
                self._spec = self._spec.with_volume_defaults(
                    config.volume_parity, config.volume_stripe
                )
        #: With ``collect=False`` emblem images are dropped after the
        #: callbacks (and any store sink) run — the bounded-memory mode; the
        #: closed archive then carries the manifest, system emblems and
        #: Bootstrap but an empty data-image list.  Defaults to ``False``
        #: when a ``target`` persists the frames, ``True`` otherwise.
        self.collect = collect if collect is not None else target is None
        self._base = append_base
        if append_base is not None:
            if target is None:
                raise ArchiveError("an append session needs a store target to extend")
            if not append_base.segments:
                raise ArchiveError(
                    "this archive has no segment records (pre-pipeline layout); "
                    "it cannot be appended to — re-archive it first"
                )
            assert self._spec is not None
            self._sink = open_append_sink(self._spec)
        else:
            self._sink = open_sink(self._spec) if self._spec is not None else None
        #: Rebasing offsets: an append session resumes the frame, segment and
        #: byte numbering of the superseded manifest, so the new manifest's
        #: cumulative segment list stays monotone across generations.
        self._base_frames = append_base.data_emblem_count if append_base else 0
        self._base_segments = len(append_base.segments) if append_base else 0
        self._base_bytes = append_base.archive_bytes if append_base else 0
        self._frames_written = self._base_frames
        self.archive: MicrOlonysArchive | None = None
        self._profile = config.media_profile()
        self._pipeline = ArchivePipeline(
            profile=self._profile,
            dbcoder_profile=config.resolve_codec(),
            outer_code=config.outer_code,
            segment_size=config.segment_size,
            executor=config.executor,
        )
        self._queue: "queue.Queue[bytes | object]" = queue.Queue(maxsize=8)
        self._records: list[SegmentRecord] = []
        self._images: list[np.ndarray] = []
        # The encoder thread stores a failure here; the caller's thread
        # consumes (reads *and clears*) it — that pair must be atomic or two
        # racing callers could both observe, or both miss, the error.
        self._state_lock = threading.Lock()
        self._error: BaseException | None = None  # lint: guarded-by(_state_lock)
        # zlib.crc32 chains: crc32(a + b) == crc32(b, crc32(a)), so seeding
        # with the base manifest's CRC makes the appended manifest's
        # archive_crc32 exactly the CRC of the concatenated payload.
        self._crc = append_base.archive_crc32 if append_base else 0
        self._length = self._base_bytes
        self._closed = False
        self._thread = threading.Thread(
            target=self._encode_loop, name="repro-archive-writer", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    def _chunks(self) -> Iterator[bytes]:
        while True:
            chunk = self._queue.get()
            if not isinstance(chunk, bytes):  # the _EOF sentinel
                return
            yield chunk

    def _rebase(self, record: SegmentRecord) -> SegmentRecord:
        """Renumber a pipeline-local record into the archive-wide sequence."""
        if self._base is None:
            return record
        return dataclasses.replace(
            record,
            index=record.index + self._base_segments,
            offset=record.offset + self._base_bytes,
            emblem_start=record.emblem_start + self._base_frames,
        )

    def _encode_loop(self) -> None:
        try:
            for batch in self._pipeline.iter_encode(self._chunks()):
                batch.record = self._rebase(batch.record)
                self._records.append(batch.record)
                if self._sink is not None:
                    # One batched call per segment: the container sink turns
                    # this into a single coalesced write instead of one
                    # stream write per frame.
                    self._sink.put_frames("data", self._frames_written, batch.images)
                    self._frames_written += len(batch.images)
                if self.collect:
                    self._images.extend(batch.images)
                if self.on_batch is not None:
                    self.on_batch(batch)
                if self.progress is not None:
                    self.progress(batch.record)
        except BaseException as exc:  # surfaced on the caller's thread
            with self._state_lock:
                self._error = exc
            # Unblock a writer stuck on a full queue, then discard the rest.
            while True:
                try:
                    if self._queue.get_nowait() is _EOF:
                        break
                except queue.Empty:
                    break

    def _check_error(self) -> None:
        with self._state_lock:
            error, self._error = self._error, None
        if error is not None:
            self._closed = True
            if self._sink is not None:
                self._sink.abort()
            raise error

    # ------------------------------------------------------------------ #
    def write(self, chunk: bytes) -> None:
        """Feed payload bytes into the archive (any chunk size)."""
        if self._closed:
            raise ArchiveError("this archive session is closed")
        self._check_error()
        chunk = bytes(chunk)
        if not chunk:
            return
        self._crc = zlib.crc32(chunk, self._crc) & 0xFFFFFFFF
        self._length += len(chunk)
        while True:
            try:
                self._queue.put(chunk, timeout=0.1)
                return
            except queue.Full:
                self._check_error()

    def close(self) -> MicrOlonysArchive:
        """Finish encoding and assemble the archive artefact (idempotent)."""
        if self._closed:
            if self.archive is None:
                raise ArchiveError("this archive session failed; nothing to return")
            return self.archive
        self._closed = True
        self._queue.put(_EOF)
        self._thread.join()
        with self._state_lock:
            error, self._error = self._error, None
        if error is not None:
            if self._sink is not None:
                self._sink.abort()
            raise error
        base = self._base
        if base is None:
            system_images, bootstrap_text = build_system_artifacts(
                self._profile, outer_code=self.config.outer_code
            )
            system_count = len(system_images)
        else:
            # The target already carries the system emblems and Bootstrap of
            # generation 0; re-deriving them here would be wasted work and —
            # worse — could stamp a count that disagrees with what is
            # physically on the medium, so the superseding manifest inherits
            # the base's count verbatim.
            system_images = []
            bootstrap_text = ""
            system_count = base.system_emblem_count
        segments = (base.segments if base else ()) + tuple(self._records)
        manifest = ArchiveManifest(
            profile_name=self._profile.name,
            dbcoder_profile=self._pipeline.codec.manifest_name,
            archive_bytes=self._length,
            archive_crc32=self._crc,
            data_emblem_count=sum(record.emblem_count for record in segments),
            system_emblem_count=system_count,
            payload_kind=self.payload_kind,
            segment_size=self.config.segment_size,
            segments=segments,
            config=self.config.to_dict(),
            generation=base.generation + 1 if base else 0,
            parent=manifest_digest(base) if base else None,
        )
        if self._sink is not None:
            if base is None:
                self._sink.put_frames("system", 0, system_images)
                self._sink.put_text(BOOTSTRAP_NAME, bootstrap_text)
                self._sink.put_text("config.json", self.config.to_json() + "\n")
            self._sink.put_manifest(manifest)
            self._sink.close()
        if base is not None:
            # Reflect the medium's Bootstrap in the returned artefact (the
            # sink is closed, so the superseding layout is fully readable).
            with open_source(self._spec) as source:
                bootstrap_text = source.get_text(BOOTSTRAP_NAME)
        self.archive = MicrOlonysArchive(
            manifest=manifest,
            data_emblem_images=self._images,
            system_emblem_images=system_images,
            bootstrap_text=bootstrap_text,
        )
        return self.archive

    def abort(self) -> None:
        """Drop the session without assembling an archive.

        An append session rolls its target back to the pre-append state
        (no half-written generation is ever finalised onto the medium).
        """
        if self._closed:
            return
        self._closed = True
        self._queue.put(_EOF)
        self._thread.join()
        with self._state_lock:
            self._error = None
        if self._sink is not None:
            self._sink.abort()

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "ArchiveWriter":
        return self

    def __exit__(
        self,
        exc_type: "type[BaseException] | None",
        exc: "BaseException | None",
        tb: "TracebackType | None",
    ) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


class ArchiveReader:
    """A restoration session (returned by :func:`open_restore`).

    Wraps :class:`~repro.core.restorer.RestoreEngine` with the config-driven
    profile/executor resolution of the facade; ``read()`` restores straight
    from the archive artefact, ``read_via_channel()`` re-runs the simulated
    record/scan cycle first.

    When the session was opened over a :mod:`repro.store` target (a saved
    directory, a container file, or a ``mem:`` key), the reader is
    **random-access**: :meth:`restore_segment` and :meth:`read_range` use
    the manifest to locate, fetch, decode and hash-verify only the segments
    covering the request — no other frame is read from the medium, and
    multi-segment requests decode in parallel through the configured
    executor.  ``on_segment`` (if given) is called with each
    :class:`~repro.core.archive.SegmentRecord` a partial restore decodes,
    and :attr:`segments_decoded` / :attr:`frames_decoded` tally the work
    done across the session's partial reads.
    """

    def __init__(
        self,
        archive: MicrOlonysArchive | None,
        config: ArchiveConfig,
        *,
        source: ArchiveSource | None = None,
        on_segment: Callable[[SegmentRecord], None] | None = None,
        via_channel: bool = False,
        segment_cache: SegmentCacheLike | None = None,
    ):
        if archive is None and source is None:
            raise ArchiveError("an ArchiveReader needs an archive artefact or a store source")
        self._archive = archive
        self._source = source
        self._manifest = archive.manifest if archive is not None else None
        self.config = config
        self.on_segment = on_segment
        #: When true, :meth:`read` routes through the simulated record/scan
        #: cycle (the streaming channel path) instead of reading the
        #: artefact's pristine rasters directly.
        self.via_channel = via_channel
        #: Shared decoded-segment cache consulted by partial restores; keys
        #: are per-segment SHA-256 digests, so it may be shared across
        #: readers, archives and (server) request threads.
        self.segment_cache = segment_cache
        #: Partial-restore work counters (full ``read()`` reports its own
        #: statistics through the returned :class:`RestorationResult`).
        #: ``segments_cached`` counts covering segments served from
        #: ``segment_cache`` without touching the medium; the ``on_segment``
        #: hook fires only for segments actually decoded.
        self.segments_decoded = 0
        self.frames_decoded = 0
        self.segments_cached = 0
        self._profile = config.media_profile()
        #: Lazily built, then reused across partial reads so repeated
        #: ``read_range`` calls don't respawn an executor (pool) each time;
        #: :meth:`close` releases them.
        self._partial_executor = None
        self._partial_pipeline: RestorePipeline | None = None
        self._engine = RestoreEngine(
            profile=self._profile,
            decode_mode=config.decode_mode,
            executor=config.executor,
            decode_parallelism=config.decode_parallelism,
        )

    # ------------------------------------------------------------------ #
    @property
    def manifest(self) -> ArchiveManifest:
        """The archive manifest (loaded without touching any frame)."""
        if self._manifest is None:
            self._manifest = self._source.manifest()
        return self._manifest

    @property
    def archive(self) -> MicrOlonysArchive:
        """The full archive artefact (materialises every frame on demand)."""
        if self._archive is None:
            self._archive = load_archive(self._source)
            self._manifest = self._archive.manifest
        return self._archive

    def _frames(self, record: SegmentRecord) -> list[np.ndarray]:
        """The data frames of one segment, from the source or the artefact."""
        if self._archive is not None:
            end = record.emblem_start + record.emblem_count
            frames = self._archive.data_emblem_images[record.emblem_start:end]
            if len(frames) != record.emblem_count:
                raise StoreError(
                    f"segment {record.index} expects {record.emblem_count} frames "
                    f"at {record.emblem_start}; the artefact holds {len(frames)}"
                )
            return list(frames)
        return self._source.get_frames("data", record.emblem_start, record.emblem_count)

    # ------------------------------------------------------------------ #
    def read(self) -> RestorationResult:
        """Restore the whole payload from the archive artefact.

        Sessions opened with ``via_channel=True`` re-run the simulated
        record/scan cycle (the streaming per-batch channel path) first.
        """
        if self.via_channel:
            return self.read_via_channel()
        return self._engine.restore(self.archive)

    def read_via_channel(
        self, seed: int | None = None, streaming: bool = True
    ) -> RestorationResult:
        """Record on the configured medium, scan back, then restore.

        The channel simulation *streams*: each segment's frames are
        recorded, scanned (per-frame seeded) and decoded as one job through
        the configured executor, so step 7 parallelises and overlaps with
        decoding instead of staging a whole-archive record/scan pass.
        ``streaming=False`` selects the deprecated whole-frame pass.
        """
        if seed is None:
            seed = self.config.scan_seed
        return self._engine.restore_via_channel(
            self.archive,
            seed=seed,
            streaming=streaming,
            distortion=self.config.distortion,
        )

    def read_from_scans(
        self,
        data_images: list[np.ndarray],
        system_images: "list[np.ndarray] | None" = None,
        bootstrap_text: str | None = None,
        payload_kind: str = "sql",
        manifest: ArchiveManifest | None = None,
    ) -> RestorationResult:
        """Restore from externally produced scans (engine pass-through)."""
        return self._engine.restore_from_scans(
            data_images,
            system_images=system_images,
            bootstrap_text=bootstrap_text,
            payload_kind=payload_kind,
            manifest=manifest,
        )

    def payload(self) -> bytes:
        """Convenience: the restored payload bytes."""
        return self.read().payload

    # ------------------------------------------------------------------ #
    # Random-access restore
    # ------------------------------------------------------------------ #
    def _decode_records(self, records: list[SegmentRecord]) -> list[bytes]:
        """Decode exactly ``records`` (in order), verifying every hash.

        With ``config.readahead`` > 0 and a store-backed session, up to that
        many segments' frames are prefetched from the backend on background
        threads while earlier segments decode — backend I/O overlaps MOCoder
        decode instead of serialising in front of it.

        With a :attr:`segment_cache`, segments whose SHA-256 digest is
        cached are served straight from memory (their frames are never
        fetched, their emblems never decoded); only the misses go through
        the pipeline, and their decoded — hash-verified — payloads are
        admitted to the cache on the way out.
        """
        cache = self.segment_cache
        parts_by_position: "list[bytes | None]" = [None] * len(records)
        misses: list[SegmentRecord] = []
        miss_positions: list[int] = []
        for position, record in enumerate(records):
            cached = (
                cache.get(record.sha256)
                if cache is not None and record.sha256 is not None
                else None
            )
            if cached is not None and len(cached) == record.length:
                parts_by_position[position] = cached
                self.segments_cached += 1
            else:
                misses.append(record)
                miss_positions.append(position)
        if misses:
            for job, payload in enumerate(self._decode_uncached(misses)):
                record = misses[job]
                parts_by_position[miss_positions[job]] = payload
                if cache is not None and record.sha256 is not None:
                    cache.put(record.sha256, payload)
        parts: list[bytes] = []
        for position, part in enumerate(parts_by_position):
            if part is None:  # a decode yielded short — never expected
                raise RestorationError(
                    f"segment {records[position].index} produced no payload"
                )
            parts.append(part)
        return parts

    def _decode_uncached(self, records: list[SegmentRecord]) -> Iterator[bytes]:
        """Pipeline-decode ``records`` (cache misses), yielding payloads in order."""
        if self._partial_pipeline is None:
            from repro.pipeline.executors import get_executor
            from repro.pipeline.pipeline import resolve_decode_executor

            # Passing an executor *instance* keeps the pool alive across
            # this session's partial reads (the pipeline only closes
            # executors it resolved from a name itself).
            self._partial_executor = get_executor(
                resolve_decode_executor(
                    self.config.executor, self.config.decode_parallelism
                )
            )
            self._partial_pipeline = RestorePipeline(
                self._profile,
                executor=self._partial_executor,
                decode_parallelism=self.config.decode_parallelism,
            )
        pipeline = self._partial_pipeline
        prefetcher = None
        frames_for = self._frames
        if self.config.readahead > 0 and self._archive is None:
            prefetcher = FramePrefetcher(self._frames, records, self.config.readahead)
            frames_for = prefetcher.frames_for
        try:
            for decoded in pipeline.iter_decode_selected(self.manifest, records, frames_for):
                self.segments_decoded += 1
                self.frames_decoded += decoded.record.emblem_count
                if self.on_segment is not None:
                    self.on_segment(decoded.record)
                yield decoded.payload
        finally:
            if prefetcher is not None:
                prefetcher.close()

    def restore_segment(self, index: int) -> bytes:
        """Decode and verify segment ``index`` alone, returning its bytes.

        Only that segment's frames are fetched and decoded; damage anywhere
        else on the medium is irrelevant to this call.
        """
        segments = self.manifest.segments
        if not segments:
            # Pre-pipeline (v1 one-shot) manifest: the whole payload is the
            # only addressable unit.
            if index != 0:
                raise ArchiveError(
                    f"this archive has no segment records; only segment 0 "
                    f"(the whole payload) exists, got {index}"
                )
            return self.read().payload
        if not 0 <= index < len(segments):
            raise ArchiveError(
                f"segment index {index} out of range (archive has {len(segments)} segments)"
            )
        return self._decode_records([segments[index]])[0]

    def read_range(self, offset: int, length: int) -> bytes:
        """Restore exactly ``payload[offset:offset + length]``.

        The manifest's logical byte ranges select the covering segments;
        only their frames are fetched and decoded (in parallel, through the
        configured executor), each verified against its archived CRC-32 and
        SHA-256 before the requested slice is cut out.  Out-of-range
        requests clamp exactly like Python byte slicing.
        """
        if offset < 0 or length < 0:
            raise ValueError("read_range offset and length must be non-negative")
        total = self.manifest.archive_bytes
        end = min(offset + length, total)
        if offset >= end:
            return b""
        segments = self.manifest.segments
        if not segments:
            return self.read().payload[offset:end]
        # Segments are contiguous and sorted by offset: bisect for the first
        # segment ending past `offset`, then take segments until `end`.
        starts = [record.offset for record in segments]
        first = bisect.bisect_right(starts, offset) - 1
        covering: list[SegmentRecord] = []
        for record in segments[max(first, 0):]:
            if record.offset >= end:
                break
            if record.end > offset:
                covering.append(record)
        parts = self._decode_records(covering)
        window = b"".join(parts)
        base = covering[0].offset
        return window[offset - base:end - base]

    # ------------------------------------------------------------------ #
    def verify(self, *, deep: bool = True) -> VerifyReport:
        """Integrity-check the archive on its store target (fsck).

        Walks every manifest generation (lineage, segment monotonicity),
        checks that every frame the superseding manifest references is
        present and parseable, reports superseded and orphaned records, and
        with ``deep=True`` (the default) re-decodes each segment
        independently to re-check its CRC-32/SHA-256 content hashes —
        without ever assembling the full payload.  See
        :meth:`~repro.core.restorer.RestoreEngine.verify`.
        """
        if self._source is None:
            raise ArchiveError(
                "verify needs a store-backed session (a saved directory, "
                "a container file, or a mem: target)"
            )
        return self._engine.verify(self._source, deep=deep)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the store source and any partial-decode executor (idempotent)."""
        if self._partial_executor is not None:
            self._partial_executor.close()
            self._partial_executor = None
            self._partial_pipeline = None
        if self._source is not None:
            self._source.close()

    def __enter__(self) -> "ArchiveReader":
        return self

    def __exit__(
        self,
        exc_type: "type[BaseException] | None",
        exc: "BaseException | None",
        tb: "TracebackType | None",
    ) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# Facade entry points
# --------------------------------------------------------------------------- #
def _resolve_config(
    config: ArchiveConfig | None, overrides: dict[str, object]
) -> ArchiveConfig:
    """Default config + keyword overrides, validated once."""
    config = config if config is not None else ArchiveConfig()
    return config.replace(**overrides) if overrides else config


def _resolve_append(
    target: "str | Path | TargetSpec",
    store: str | None,
    config: ArchiveConfig | None,
    overrides: dict[str, object],
) -> "tuple[ArchiveConfig, ArchiveManifest]":
    """The session config and superseding base manifest of an append.

    Without an explicit ``config`` the target describes itself, exactly as
    in :func:`open_restore`; either way the resolved config must name the
    same media profile, codec and outer-code choice the archive was written
    with — an appended generation has to decode under the stack the
    superseded generations already committed to the medium.
    """
    from repro import registry  # lazy: registry imports repro.store

    with open_source(target, store) as source:
        base = source.manifest()
    if config is None:
        if base.config is not None:
            config = ArchiveConfig.from_dict(base.config)
        else:
            config = ArchiveConfig(
                media=base.profile_name,
                codec=base.dbcoder_profile,
                payload_kind=base.payload_kind,
                segment_size=base.segment_size,
            )
    if overrides:
        config = config.replace(**overrides)
    if config.media != registry.media.resolve_name(base.profile_name):
        raise ArchiveError(
            f"cannot append with media {config.media!r} to an archive written "
            f"on {base.profile_name!r}; the emblem geometry must match"
        )
    if config.codec != registry.codecs.resolve_name(base.dbcoder_profile):
        raise ArchiveError(
            f"cannot append with codec {config.codec!r} to an archive written "
            f"with {base.dbcoder_profile!r}"
        )
    if base.config is not None and bool(base.config.get("outer_code", True)) != config.outer_code:
        raise ArchiveError(
            "cannot append with a different outer_code setting than the "
            "archive was written with"
        )
    return config, base


def open_archive(
    config: ArchiveConfig | None = None,
    *,
    payload_kind: str | None = None,
    progress: Callable[[SegmentRecord], None] | None = None,
    on_batch: Callable[[EncodedSegment], None] | None = None,
    collect: bool | None = None,
    target: "str | Path | None" = None,
    store: str | None = None,
    append: bool = False,
    **overrides: object,
) -> ArchiveWriter:
    """Open a streaming archival session.

    ``config`` defaults to ``ArchiveConfig()``; keyword ``overrides`` are
    applied on top (``open_archive(media="paper", codec="dense")``).
    ``progress`` receives each completed
    :class:`~repro.core.archive.SegmentRecord`; ``on_batch`` additionally
    receives the emblem images (an :class:`~repro.pipeline.EncodedSegment`),
    so a recorder-facing consumer can persist frames as they are emitted.
    Both callbacks run on the encoder thread.  ``collect=False`` drops each
    batch's images after the callbacks — peak memory then stays bounded by
    the executor window regardless of payload size.

    ``target`` persists the archive through a :mod:`repro.store` backend
    (``store`` names it explicitly: ``"directory"``, ``"container"``,
    ``"memory"``; otherwise ``config.store`` or the target's shape decides):
    frames stream onto the target as they encode and ``collect`` defaults to
    ``False``, so ``open_archive(..., target="backup.ule", store="container")``
    writes an arbitrarily large archive in bounded memory.

    ``append=True`` *extends* an existing target instead of creating one —
    true incremental backup: the session resumes frame numbering and
    payload offsets from the target's superseding manifest, streams the new
    payload through the same pipeline, and closes by writing a manifest one
    generation up (``parent``-pinned to the old one) whose cumulative
    segment list makes :meth:`ArchiveReader.read_range` /
    :meth:`~ArchiveReader.restore_segment` work transparently across the
    generation boundary.  When no ``config`` is given the target describes
    itself, exactly as in :func:`open_restore`; the media profile, codec and
    outer-code choice must match the archive being extended.
    """
    if append:
        if target is None:
            raise ArchiveError("open_archive(append=True) needs a target to extend")
        # Parse once up front so the bare-path deprecation warns a single
        # time and both the base-manifest read and the writer share one spec.
        spec = parse_target(target, store=store)
        config, base = _resolve_append(spec, None, config, overrides)
        if payload_kind is None:
            payload_kind = base.payload_kind
        return ArchiveWriter(
            config, payload_kind=payload_kind, progress=progress, on_batch=on_batch,
            collect=collect, target=spec, store=None, append_base=base,
        )
    config = _resolve_config(config, overrides)
    return ArchiveWriter(
        config, payload_kind=payload_kind, progress=progress, on_batch=on_batch,
        collect=collect, target=target, store=store,
    )


def open_restore(
    source: "MicrOlonysArchive | ArchiveSource | str | Path | TargetSpec",
    config: ArchiveConfig | None = None,
    *,
    store: str | None = None,
    on_segment: Callable[[SegmentRecord], None] | None = None,
    via_channel: bool = False,
    segment_cache: SegmentCacheLike | None = None,
    **overrides: object,
) -> ArchiveReader:
    """Open a restoration session over an archive artefact or store target.

    ``segment_cache`` (any :class:`SegmentCacheLike`, e.g.
    :class:`repro.server.SegmentCache`) lets partial restores serve covering
    segments whose SHA-256 digest is already cached without fetching or
    decoding anything; decoded misses are admitted on the way out.  Because
    keys are content digests, one cache is safely shared across readers,
    archives and generations.

    ``via_channel=True`` makes :meth:`ArchiveReader.read` re-run the
    simulated record/scan cycle first, through the streaming per-batch
    channel path (equivalent to calling
    :meth:`~ArchiveReader.read_via_channel` explicitly).

    ``source`` may be an in-memory :class:`~repro.core.archive.
    MicrOlonysArchive`, an open :class:`~repro.store.ArchiveSource`, or a
    path/key to a saved archive — a directory, a single-file container, or a
    ``mem:`` target (``store`` forces the backend; otherwise the layout is
    sniffed).  Store-backed sessions open *cold*: only the manifest is read
    up front, so :meth:`ArchiveReader.read_range` /
    :meth:`~ArchiveReader.restore_segment` fetch and decode just the
    segments they need.

    When no ``config`` is given, the archive describes itself: a v2
    manifest's embedded config is used verbatim, a v1 manifest supplies the
    media profile and codec — exactly the paper's self-description
    discipline; ``overrides`` then adjust individual fields
    (``open_restore(path, decode_mode="dynarisc")``).
    """
    archive: MicrOlonysArchive | None = None
    archive_source: ArchiveSource | None = None
    if isinstance(source, MicrOlonysArchive):
        archive = source
        manifest = archive.manifest
    elif isinstance(source, ArchiveSource):
        archive_source = source
        manifest = archive_source.manifest()
    else:
        archive_source = open_source(source, store)
        manifest = archive_source.manifest()
    if config is None:
        if manifest.config is not None:
            config = ArchiveConfig.from_dict(manifest.config)
        else:
            config = ArchiveConfig(
                media=manifest.profile_name,
                codec=manifest.dbcoder_profile,
                payload_kind=manifest.payload_kind,
                segment_size=manifest.segment_size,
            )
    if overrides:
        config = config.replace(**overrides)
    reader = ArchiveReader(
        archive, config, source=archive_source, on_segment=on_segment,
        via_channel=via_channel, segment_cache=segment_cache,
    )
    reader._manifest = manifest
    return reader


@dataclass
class EndToEndResult:
    """Everything produced by one :func:`run_end_to_end` run."""

    config: ArchiveConfig
    archive: MicrOlonysArchive
    restoration: RestorationResult
    frames_recorded: int
    channel_name: str
    notes: list[str] = field(default_factory=list)

    @property
    def payload(self) -> bytes:
        """The restored payload bytes."""
        return self.restoration.payload

    @property
    def ok(self) -> bool:
        """True when restoration completed (it is bit-exact by construction)."""
        return self.restoration.bit_exact


def run_end_to_end(
    config: ArchiveConfig | None = None,
    payload: bytes = b"",
    *,
    payload_kind: str | None = None,
    progress: Callable[[SegmentRecord], None] | None = None,
    **overrides: object,
) -> EndToEndResult:
    """All seven steps of Figure 2a plus restoration, in one call.

    Archives ``payload`` with the configured codec and media profile,
    **records** the emblems onto the configured channel and **scans** them
    back (step 7 — the simulated analog hop every other entry point leaves
    out), then restores from the degraded scans and integrity-checks the
    result.  Raises :class:`~repro.errors.RestorationError` (or a media
    error) if the chain is not bit-exact; on success the returned
    :class:`EndToEndResult` carries the archive, the scan statistics and the
    restored payload.
    """
    config = _resolve_config(config, overrides)
    with open_archive(config, payload_kind=payload_kind, progress=progress) as writer:
        writer.write(payload)
    archive = writer.archive

    # Step 7 + restoration: the analog hop now *streams* — each segment's
    # frames are recorded onto the configured medium, scanned back (with
    # batching-invariant per-frame seeding) and decoded as one job through
    # the configured executor, instead of staging whole-archive record and
    # scan passes.
    reader = open_restore(archive, config)
    restoration = reader.read_via_channel(seed=config.scan_seed)
    if restoration.payload != payload:
        raise RestorationError(
            "end-to-end restoration returned different bytes than were archived"
        )
    manifest = archive.manifest
    return EndToEndResult(
        config=config,
        archive=archive,
        restoration=restoration,
        frames_recorded=manifest.data_emblem_count + manifest.system_emblem_count,
        channel_name=config.channel().name,
        notes=list(restoration.notes),
    )
