"""Session-based streaming I/O over the archival pipeline.

:func:`open_archive` returns an :class:`ArchiveWriter` — a context manager
that accepts payload chunks of any size via :meth:`~ArchiveWriter.write` and
encodes them *while they arrive*: a background thread drives the streaming
pipeline over a bounded queue, so segments encode (optionally in parallel)
concurrently with the caller producing data, and per-segment progress
callbacks fire as emblem batches complete.  :func:`open_restore` is the
reading half, and :func:`run_end_to_end` runs all seven steps of Figure 2a —
including step 7's channel ``record``/``scan``, which no previous entry
point covered — in one call.
"""

from __future__ import annotations

import queue
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.api.config import ArchiveConfig
from repro.core.archive import ArchiveManifest, MicrOlonysArchive, SegmentRecord
from repro.core.restorer import RestorationResult, RestoreEngine
from repro.errors import ArchiveError, RestorationError
from repro.pipeline.pipeline import (
    ArchivePipeline,
    EncodedSegment,
    build_system_artifacts,
)

__all__ = [
    "ArchiveWriter",
    "ArchiveReader",
    "EndToEndResult",
    "open_archive",
    "open_restore",
    "run_end_to_end",
]

#: Sentinel closing the writer's chunk queue.
_EOF = object()


class ArchiveWriter:
    """A streaming archival session (returned by :func:`open_archive`).

    Usage::

        with open_archive(config) as writer:
            for chunk in source:
                writer.write(chunk)
        archive = writer.archive        # or the return value of close()

    Chunks are re-segmented by the pipeline's segmenter, so ``write`` calls
    need not align with segment boundaries.  Encoding runs on a background
    thread while the caller keeps writing; at most a bounded window of
    chunks and in-flight segments exist at once.  ``progress`` (if given) is
    called with each completed :class:`~repro.core.archive.SegmentRecord`,
    from the encoder thread.
    """

    def __init__(
        self,
        config: ArchiveConfig,
        *,
        payload_kind: str | None = None,
        progress: Callable[[SegmentRecord], None] | None = None,
        on_batch: Callable[[EncodedSegment], None] | None = None,
        collect: bool = True,
    ):
        self.config = config
        self.payload_kind = payload_kind if payload_kind is not None else config.payload_kind
        self.progress = progress
        self.on_batch = on_batch
        #: With ``collect=False`` emblem images are dropped after the
        #: callbacks run — the bounded-memory mode for consumers that persist
        #: frames themselves; the closed archive then carries the manifest,
        #: system emblems and Bootstrap but an empty data-image list.
        self.collect = collect
        self.archive: MicrOlonysArchive | None = None
        self._profile = config.media_profile()
        self._pipeline = ArchivePipeline(
            profile=self._profile,
            dbcoder_profile=config.resolve_codec(),
            outer_code=config.outer_code,
            segment_size=config.segment_size,
            executor=config.executor,
        )
        self._queue: queue.Queue = queue.Queue(maxsize=8)
        self._records: list[SegmentRecord] = []
        self._images: list[np.ndarray] = []
        self._error: BaseException | None = None
        self._crc = 0
        self._length = 0
        self._closed = False
        self._thread = threading.Thread(
            target=self._encode_loop, name="repro-archive-writer", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    def _chunks(self) -> Iterator[bytes]:
        while True:
            chunk = self._queue.get()
            if chunk is _EOF:
                return
            yield chunk

    def _encode_loop(self) -> None:
        try:
            for batch in self._pipeline.iter_encode(self._chunks()):
                self._records.append(batch.record)
                if self.collect:
                    self._images.extend(batch.images)
                if self.on_batch is not None:
                    self.on_batch(batch)
                if self.progress is not None:
                    self.progress(batch.record)
        except BaseException as exc:  # surfaced on the caller's thread
            self._error = exc
            # Unblock a writer stuck on a full queue, then discard the rest.
            while True:
                try:
                    if self._queue.get_nowait() is _EOF:
                        break
                except queue.Empty:
                    break

    def _check_error(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            self._closed = True
            raise error

    # ------------------------------------------------------------------ #
    def write(self, chunk: bytes) -> None:
        """Feed payload bytes into the archive (any chunk size)."""
        if self._closed:
            raise ArchiveError("this archive session is closed")
        self._check_error()
        chunk = bytes(chunk)
        if not chunk:
            return
        self._crc = zlib.crc32(chunk, self._crc) & 0xFFFFFFFF
        self._length += len(chunk)
        while True:
            try:
                self._queue.put(chunk, timeout=0.1)
                return
            except queue.Full:
                self._check_error()

    def close(self) -> MicrOlonysArchive:
        """Finish encoding and assemble the archive artefact (idempotent)."""
        if self._closed:
            if self.archive is None:
                raise ArchiveError("this archive session failed; nothing to return")
            return self.archive
        self._closed = True
        self._queue.put(_EOF)
        self._thread.join()
        if self._error is not None:
            error, self._error = self._error, None
            raise error
        system_images, bootstrap_text = build_system_artifacts(
            self._profile, outer_code=self.config.outer_code
        )
        manifest = ArchiveManifest(
            profile_name=self._profile.name,
            dbcoder_profile=self._pipeline.codec.manifest_name,
            archive_bytes=self._length,
            archive_crc32=self._crc,
            data_emblem_count=sum(record.emblem_count for record in self._records),
            system_emblem_count=len(system_images),
            payload_kind=self.payload_kind,
            segment_size=self.config.segment_size,
            segments=tuple(self._records),
        )
        self.archive = MicrOlonysArchive(
            manifest=manifest,
            data_emblem_images=self._images,
            system_emblem_images=system_images,
            bootstrap_text=bootstrap_text,
        )
        return self.archive

    def abort(self) -> None:
        """Drop the session without assembling an archive."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_EOF)
        self._thread.join()
        self._error = None

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "ArchiveWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


class ArchiveReader:
    """A restoration session (returned by :func:`open_restore`).

    Wraps :class:`~repro.core.restorer.RestoreEngine` with the config-driven
    profile/executor resolution of the facade; ``read()`` restores straight
    from the archive artefact, ``read_via_channel()`` re-runs the simulated
    record/scan cycle first.
    """

    def __init__(self, archive: MicrOlonysArchive, config: ArchiveConfig):
        self.archive = archive
        self.config = config
        self._engine = RestoreEngine(
            profile=config.media_profile(),
            decode_mode=config.decode_mode,
            executor=config.executor,
        )

    # ------------------------------------------------------------------ #
    def read(self) -> RestorationResult:
        """Restore the payload directly from the archive artefact."""
        return self._engine.restore(self.archive)

    def read_via_channel(self, seed: int | None = None) -> RestorationResult:
        """Record on the configured medium, scan back, then restore."""
        if seed is None:
            seed = self.config.scan_seed
        return self._engine.restore_via_channel(self.archive, seed=seed)

    def read_from_scans(self, data_images, **kwargs) -> RestorationResult:
        """Restore from externally produced scans (engine pass-through)."""
        return self._engine.restore_from_scans(data_images, **kwargs)

    def payload(self) -> bytes:
        """Convenience: the restored payload bytes."""
        return self.read().payload

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "ArchiveReader":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


# --------------------------------------------------------------------------- #
# Facade entry points
# --------------------------------------------------------------------------- #
def _resolve_config(config: ArchiveConfig | None, overrides: dict) -> ArchiveConfig:
    """Default config + keyword overrides, validated once."""
    config = config if config is not None else ArchiveConfig()
    return config.replace(**overrides) if overrides else config


def open_archive(
    config: ArchiveConfig | None = None,
    *,
    payload_kind: str | None = None,
    progress: Callable[[SegmentRecord], None] | None = None,
    on_batch: Callable[[EncodedSegment], None] | None = None,
    collect: bool = True,
    **overrides,
) -> ArchiveWriter:
    """Open a streaming archival session.

    ``config`` defaults to ``ArchiveConfig()``; keyword ``overrides`` are
    applied on top (``open_archive(media="paper", codec="dense")``).
    ``progress`` receives each completed
    :class:`~repro.core.archive.SegmentRecord`; ``on_batch`` additionally
    receives the emblem images (an :class:`~repro.pipeline.EncodedSegment`),
    so a recorder-facing consumer can persist frames as they are emitted.
    Both callbacks run on the encoder thread.  ``collect=False`` drops each
    batch's images after the callbacks — peak memory then stays bounded by
    the executor window regardless of payload size.
    """
    config = _resolve_config(config, overrides)
    return ArchiveWriter(
        config, payload_kind=payload_kind, progress=progress, on_batch=on_batch,
        collect=collect,
    )


def open_restore(
    source: MicrOlonysArchive | str | Path,
    config: ArchiveConfig | None = None,
    **overrides,
) -> ArchiveReader:
    """Open a restoration session over an archive artefact or saved directory.

    When no ``config`` is given, the archive's own manifest supplies the
    media profile and codec — the archive is self-describing, exactly as the
    paper intends; ``overrides`` then adjust individual fields
    (``open_restore(path, decode_mode="dynarisc")``).
    """
    archive = (
        source
        if isinstance(source, MicrOlonysArchive)
        else MicrOlonysArchive.load(source)
    )
    if config is None:
        config = ArchiveConfig(
            media=archive.manifest.profile_name,
            codec=archive.manifest.dbcoder_profile,
            payload_kind=archive.manifest.payload_kind,
            segment_size=archive.manifest.segment_size,
        )
    if overrides:
        config = config.replace(**overrides)
    return ArchiveReader(archive, config)


@dataclass
class EndToEndResult:
    """Everything produced by one :func:`run_end_to_end` run."""

    config: ArchiveConfig
    archive: MicrOlonysArchive
    restoration: RestorationResult
    frames_recorded: int
    channel_name: str
    notes: list[str] = field(default_factory=list)

    @property
    def payload(self) -> bytes:
        """The restored payload bytes."""
        return self.restoration.payload

    @property
    def ok(self) -> bool:
        """True when restoration completed (it is bit-exact by construction)."""
        return self.restoration.bit_exact


def run_end_to_end(
    config: ArchiveConfig | None = None,
    payload: bytes = b"",
    *,
    payload_kind: str | None = None,
    progress: Callable[[SegmentRecord], None] | None = None,
    **overrides,
) -> EndToEndResult:
    """All seven steps of Figure 2a plus restoration, in one call.

    Archives ``payload`` with the configured codec and media profile,
    **records** the emblems onto the configured channel and **scans** them
    back (step 7 — the simulated analog hop every other entry point leaves
    out), then restores from the degraded scans and integrity-checks the
    result.  Raises :class:`~repro.errors.RestorationError` (or a media
    error) if the chain is not bit-exact; on success the returned
    :class:`EndToEndResult` carries the archive, the scan statistics and the
    restored payload.
    """
    config = _resolve_config(config, overrides)
    with open_archive(config, payload_kind=payload_kind, progress=progress) as writer:
        writer.write(payload)
    archive = writer.archive

    # Step 7: the analog hop — record emblem rasters onto the medium, scan
    # them back as (possibly degraded) images.
    channel = config.channel()
    data_frames = channel.record(archive.data_emblem_images)
    system_frames = channel.record(archive.system_emblem_images)
    data_scan = channel.scan(data_frames, seed=config.scan_seed)
    system_scan = channel.scan(system_frames, seed=config.scan_seed)

    reader = open_restore(archive, config)
    restoration = reader.read_from_scans(
        data_scan.images,
        system_images=system_scan.images,
        bootstrap_text=archive.bootstrap_text,
        payload_kind=archive.manifest.payload_kind,
        manifest=archive.manifest,
    )
    if restoration.payload != payload:
        raise RestorationError(
            "end-to-end restoration returned different bytes than were archived"
        )
    return EndToEndResult(
        config=config,
        archive=archive,
        restoration=restoration,
        frames_recorded=data_scan.frames_recorded + system_scan.frames_recorded,
        channel_name=data_scan.channel_name,
        notes=list(restoration.notes),
    )
