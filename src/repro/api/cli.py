"""``python -m repro`` — the command-line face of the :mod:`repro.api` facade.

Subcommands
-----------
``archive``
    Archive a payload file onto a storage backend (``--store directory``
    writes one PGM per frame, ``--store container`` a single archive file),
    streaming the input through an :class:`~repro.api.session.ArchiveWriter`
    with ``collect=False`` — frames go straight to the target as they
    encode, so peak memory stays bounded by the executor window regardless
    of payload size.  The resolved :class:`~repro.api.ArchiveConfig` is
    embedded in the v2 manifest *and* saved as ``config.json``, so a run is
    reproducible from the artefact alone.
    With ``--append`` the run *extends* an existing archive instead of
    creating one: new frames land after the old ones and a superseding
    manifest one generation up makes the appended bytes addressable as a
    seamless continuation of the payload (true incremental backup).
``restore``
    Restore a saved archive (directory or container file) back to the
    payload file, optionally re-running the simulated record/scan cycle
    first (``--via-channel``), or restoring just a byte range
    (``--offset``/``--length`` — only the covering segments are decoded).
``verify``
    fsck for archives: walk every manifest generation (lineage, segment
    monotonicity), re-check each segment's CRC-32/SHA-256 content hashes by
    decoding it independently (``--shallow`` stops at reading the frames),
    and report superseded/orphaned records.  On a container file,
    ``--repair`` truncates a torn tail append back to the last valid
    trailer (or finishes the index when the appended generation actually
    completed) before verifying.
``inspect``
    Summarise a saved archive's manifest — format version, embedded config,
    per-segment byte ranges, frame runs and content hashes — without
    loading any image.  Also accepts an ``http(s)://`` URL naming an
    archive on a running ``serve`` instance
    (``repro inspect http://host:port/archives/name``).
``serve``
    Serve a directory of named archives over HTTP — streaming uploads and
    appends, ranged reads through a shared decoded-segment cache, verify
    and inspect endpoints (see :mod:`repro.server`).
``profiles``
    List every registered media channel, codec, executor, distortion
    profile and storage backend (``--json`` for machine-readable output).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import registry
from repro.api.config import ArchiveConfig
from repro.api.session import open_archive, open_restore
from repro.errors import ReproError, StoreError
from repro.store import open_source, parse_target, repair_container, scan_container

#: Chunk size used when streaming the input file into the writer.
_READ_CHUNK = 1 << 20


def _load_config(args: argparse.Namespace) -> ArchiveConfig:
    """Build the run config from ``--config`` JSON plus per-flag overrides."""
    if getattr(args, "config", None):
        config = ArchiveConfig.from_json(Path(args.config).read_text())
    else:
        config = ArchiveConfig()
    overrides = {}
    for key in ("media", "codec", "executor", "segment_size", "decode_mode",
                "distortion", "scan_seed", "payload_kind"):
        value = getattr(args, key, None)
        if value is not None:
            overrides[key] = value
    if getattr(args, "no_outer_code", False):
        overrides["outer_code"] = False
    return config.replace(**overrides) if overrides else config


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #
def _cmd_archive(args: argparse.Namespace) -> int:
    input_path = Path(args.input)
    if args.append:
        # The existing target describes itself (its superseding manifest
        # supplies the config); explicit flags override on top.
        overrides = {}
        for key in ("media", "codec", "executor", "segment_size", "payload_kind"):
            value = getattr(args, key, None)
            if value is not None:
                overrides[key] = value
        base_config = (
            ArchiveConfig.from_json(Path(args.config).read_text()) if args.config else None
        )
        spec = parse_target(args.output, store=args.store)
        store = spec.store
        writer_session = open_archive(base_config, target=spec, append=True, **overrides)
    else:
        config = _load_config(args)
        spec = parse_target(
            args.output, store=args.store or config.store, default_store="directory"
        )
        store = spec.store
        writer_session = open_archive(config, target=spec)
    # Frames stream straight onto the store target as batches complete
    # (collect=False via target=...), so huge archives never accumulate
    # their emblem rasters in memory.
    with writer_session as writer, input_path.open("rb") as stream:
        while True:
            chunk = stream.read(_READ_CHUNK)
            if not chunk:
                break
            writer.write(chunk)
    config = writer.config
    manifest = writer.archive.manifest
    summary = {
        "output": str(args.output),
        "store": registry.stores.resolve_name(store),
        "config": config.to_dict(),
        "format_version": manifest.format_version,
        "generation": manifest.generation,
        "payload_bytes": manifest.archive_bytes,
        "segments": max(len(manifest.segments), 1),
        "data_emblems": manifest.data_emblem_count,
        "system_emblems": manifest.system_emblem_count,
        "bootstrap_lines": len(writer.archive.bootstrap_text.splitlines()),
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        verb = "appended; archive now holds" if args.append else "archived"
        print(f"{verb} {manifest.archive_bytes:,} bytes -> {args.output} "
              f"({summary['store']} store, manifest v{manifest.format_version}, "
              f"generation {manifest.generation})")
        print(f"  {config.describe()}")
        print(f"  {summary['segments']} segments, "
              f"{manifest.data_emblem_count} data + "
              f"{manifest.system_emblem_count} system emblems, "
              f"{summary['bootstrap_lines']}-line Bootstrap")
    return 0


def _cmd_restore(args: argparse.Namespace) -> int:
    overrides = {}
    for key in ("decode_mode", "executor", "distortion", "decode_parallelism", "readahead"):
        value = getattr(args, key, None)
        if value is not None:
            overrides[key] = value
    partial = args.offset is not None or args.length is not None
    if partial and args.via_channel:
        raise ReproError("--offset/--length cannot be combined with --via-channel")
    spec = parse_target(args.input, store=args.store)
    with open_restore(spec, **overrides) as reader:
        output_path = Path(args.output)
        if partial:
            offset = args.offset or 0
            length = args.length if args.length is not None else (
                reader.manifest.archive_bytes - offset
            )
            payload = reader.read_range(offset, length)
            output_path.write_bytes(payload)
            summary = {
                "output": str(output_path),
                "offset": offset,
                "length": len(payload),
                "segments_decoded": reader.segments_decoded,
                "frames_decoded": reader.frames_decoded,
                "segments_total": max(len(reader.manifest.segments), 1),
            }
            if args.json:
                print(json.dumps(summary, indent=2, sort_keys=True))
            else:
                print(f"restored bytes [{offset}:{offset + len(payload)}) -> "
                      f"{output_path} (decoded {reader.segments_decoded} of "
                      f"{summary['segments_total']} segments, "
                      f"{reader.frames_decoded} frames)")
            return 0
        if args.via_channel:
            result = reader.read_via_channel(seed=args.seed)
        else:
            result = reader.read()
        output_path.write_bytes(result.payload)
        summary = {
            "output": str(output_path),
            "payload_bytes": len(result.payload),
            "payload_kind": reader.manifest.payload_kind,
            "decode_mode": result.decode_mode,
            "emblems_decoded": result.data_report.emblems_decoded,
            "rs_corrections": result.data_report.rs_corrections,
            "groups_reconstructed": result.data_report.groups_reconstructed,
            "emulator_steps": result.emulator_steps,
            "bit_exact": result.bit_exact,
        }
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(f"restored {len(result.payload):,} bytes -> {output_path} "
                  f"(bit-exact: {result.bit_exact})")
            for note in result.notes:
                print(f"  {note}")
        return 0


def _inspect_over_http(url: str, as_json: bool) -> int:
    """``inspect`` against a running ``serve`` instance's JSON endpoint."""
    import urllib.error
    import urllib.request

    target = url.rstrip("/")
    if not target.endswith("/inspect"):
        target += "/inspect"
    try:
        with urllib.request.urlopen(target, timeout=30) as response:
            summary = json.loads(response.read())
    except urllib.error.HTTPError as exc:
        detail = ""
        try:
            detail = str(json.loads(exc.read()).get("error", ""))
        except (ValueError, OSError):
            detail = ""
        raise ReproError(
            f"{target}: HTTP {exc.code}" + (f" — {detail}" if detail else "")
        ) from exc
    except urllib.error.URLError as exc:
        raise ReproError(f"{target}: {exc.reason}") from exc
    if as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    lineage = f", generation {summary['generation']}" if summary.get("generation") else ""
    print(f"{url}: {summary['payload_kind']} payload, "
          f"{summary['payload_bytes']:,} bytes on {summary['profile']} "
          f"via {summary['codec']} "
          f"(manifest v{summary['format_version']}{lineage})")
    print(f"  {summary['data_emblems']} data + "
          f"{summary['system_emblems']} system emblems, "
          f"{max(len(summary['segments']), 1)} segments "
          f"(segment_size={summary['segment_size'] or 'one-shot'})")
    for segment in summary["segments"]:
        sha = segment["sha256"][:12] if segment.get("sha256") else "-"
        print(f"  segment {segment['index']}: bytes "
              f"[{segment['offset']}:{segment['offset'] + segment['length']}) "
              f"crc32={segment['crc32']:08x} sha256={sha}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    spec = parse_target(args.input, store=args.store)
    if spec.is_remote:
        return _inspect_over_http(spec.target, args.json)
    try:
        source = open_source(spec)
    except (ValueError, TypeError) as exc:
        raise ReproError(f"{args.input} is not a readable archive: {exc}") from exc
    with source:
        try:
            manifest = source.manifest()
        except (ValueError, TypeError) as exc:
            raise ReproError(
                f"{args.input} does not hold a valid archive manifest: {exc}"
            ) from exc
        saved_config = manifest.config
        if saved_config is None:
            try:
                saved_config = json.loads(source.get_text("config.json"))
            except (ReproError, ValueError):
                saved_config = None
    # Container sources flag an index rebuilt by linear scan (damaged or
    # missing trailer); other backends have no trailer index to lose.
    index_status = (
        "recovered-by-scan" if getattr(source, "recovered_by_scan", False) else "ok"
    )
    volume_summary = None
    if manifest.volumes is not None:
        shard_map = manifest.volumes
        missing = getattr(source, "missing_volumes", None) or {}
        volume_summary = {
            "set_id": shard_map.get("set_id"),
            "data": shard_map.get("data"),
            "parity": shard_map.get("parity"),
            "stripe": shard_map.get("stripe"),
            "volume_count": shard_map.get("volume_count"),
            "stripes": len(shard_map.get("stripes", [])),
            "missing_volumes": sorted(missing),
        }
    summary = {
        "directory": str(args.input),
        "index": index_status,
        "format_version": manifest.format_version,
        "generation": manifest.generation,
        "parent": manifest.parent,
        "profile": manifest.profile_name,
        "codec": manifest.dbcoder_profile,
        "payload_kind": manifest.payload_kind,
        "payload_bytes": manifest.archive_bytes,
        "payload_crc32": manifest.archive_crc32,
        "segment_size": manifest.segment_size,
        "segments": [segment.to_dict() for segment in manifest.segments],
        "data_emblems": manifest.data_emblem_count,
        "system_emblems": manifest.system_emblem_count,
        "config": saved_config,
        "volumes": volume_summary,
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        lineage = (
            f", generation {manifest.generation}" if manifest.generation else ""
        )
        print(f"{args.input}: {manifest.payload_kind} payload, "
              f"{manifest.archive_bytes:,} bytes on {manifest.profile_name} "
              f"via {manifest.dbcoder_profile} "
              f"(manifest v{manifest.format_version}{lineage})")
        print(f"  {manifest.data_emblem_count} data + "
              f"{manifest.system_emblem_count} system emblems, "
              f"{max(len(manifest.segments), 1)} segments "
              f"(segment_size={manifest.segment_size or 'one-shot'})")
        if index_status != "ok":
            print(f"  index: {index_status}")
        if volume_summary is not None:
            degraded = (
                f", volumes {volume_summary['missing_volumes']} MISSING "
                "(reads run degraded)"
                if volume_summary["missing_volumes"]
                else ""
            )
            print(f"  volume set {volume_summary['set_id']}: "
                  f"k={volume_summary['data']} data + "
                  f"m={volume_summary['parity']} parity volumes, "
                  f"stripe depth {volume_summary['stripe']}, "
                  f"{volume_summary['stripes']} stripes{degraded}")
        for segment in manifest.segments:
            sha = segment.sha256[:12] if segment.sha256 else "-"
            print(f"  segment {segment.index}: bytes [{segment.offset}:{segment.end}) "
                  f"frames [{segment.emblem_start}:"
                  f"{segment.emblem_start + segment.emblem_count}) "
                  f"crc32={segment.crc32:08x} sha256={sha}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    spec = parse_target(args.input, store=args.store)
    if spec.store is None:
        raise StoreError(
            f"{args.input} does not exist; pass --store explicitly to name "
            "its backend"
        )
    store = spec.store
    repair_report = None
    torn_tail = None
    if store == "container":
        # Only the single-file container can tear mid-append; diagnose (and
        # optionally repair) its tail before walking the generations.  A cut
        # exactly on a record boundary leaves zero dangling bytes but still
        # no trailer at EOF, so the gate is intactness, not byte count.
        scan = scan_container(spec.target)
        if args.repair:
            repair_report = repair_container(spec.target)
        elif not scan.intact:
            torn_tail = scan.torn_bytes
    elif args.repair:
        # A store-level misuse, not a generic CLI error: the target's backend
        # simply has no repairable record stream.
        raise StoreError(
            f"--repair only applies to container archives; {args.input} is a "
            f"{store} target"
        )
    with open_restore(spec) as reader:
        report = reader.verify(deep=not args.shallow)
    if torn_tail is not None:
        report.errors.append(
            f"container has a torn tail append ({torn_tail} dangling bytes "
            "past the last complete record; no intact trailer at end of "
            "file); run `verify --repair` to restore it"
        )
    summary = report.to_dict()
    summary["target"] = str(args.input)
    summary["store"] = store
    if repair_report is not None:
        summary["repair"] = repair_report
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        verdict = "ok" if report.ok else "PROBLEMS FOUND"
        mode = "shallow" if args.shallow else "deep"
        print(f"{args.input}: {verdict} ({store} store, {mode} check, "
              f"active generation {report.active_generation})")
        if repair_report is not None and repair_report["action"] != "intact":
            print(f"  repaired: {repair_report['action']}, "
                  f"{repair_report['bytes_removed']} bytes removed")
        for info in report.generations:
            line = (f"  generation {info.generation} [{info.status}] "
                    f"{info.record_name}: {info.segments} segments, "
                    f"{info.archive_bytes:,} bytes")
            if info.parent:
                line += f", parent {info.parent[:12]}"
            print(line)
        print(f"  checked {report.segments_checked} segments, "
              f"{report.frames_checked} frames")
        for name in report.orphaned:
            print(f"  orphaned: {name}")
        for message in report.errors:
            print(f"  error: {message}")
        for message in report.warnings:
            print(f"  warning: {message}")
    return 0 if report.ok else 1


def _cmd_profiles(args: argparse.Namespace) -> int:
    listing = {
        "media": [
            {
                "name": name,
                "description": profile.description,
                "emblem_payload_bytes": profile.spec.payload_capacity,
            }
            for name, profile in registry.media.items()
        ],
        "media_aliases": registry.media.aliases(),
        "codecs": [
            {"name": name, "description": codec.description, "builtin": codec.is_builtin}
            for name, codec in registry.codecs.items()
        ],
        "executors": registry.executors.names(),
        "distortions": registry.distortions.names(),
        "stores": [
            {"name": name, "description": backend.description}
            for name, backend in registry.stores.items()
        ],
    }
    if args.json:
        print(json.dumps(listing, indent=2, sort_keys=True))
        return 0
    print("media channels:")
    for entry in listing["media"]:
        print(f"  {entry['name']:<22} {entry['description']}")
    aliases = listing["media_aliases"]
    print(f"  aliases: {', '.join(f'{a} -> {t}' for a, t in sorted(aliases.items()))}")
    print("codecs:")
    for entry in listing["codecs"]:
        kind = "builtin" if entry["builtin"] else "user"
        print(f"  {entry['name']:<22} [{kind}] {entry['description']}")
    print(f"executors: {', '.join(listing['executors'])} "
          f"(suffix ':N' pins the worker count)")
    print(f"distortions: {', '.join(listing['distortions'])}")
    print("stores:")
    for entry in listing["stores"]:
        print(f"  {entry['name']:<22} {entry['description']}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so plain CLI runs never pay for the service stack.
    from repro.server import ArchiveRepository, ReproServer
    from repro.server.cache import DEFAULT_CACHE_BYTES

    cache_bytes = DEFAULT_CACHE_BYTES if args.cache_bytes is None else args.cache_bytes
    repository = ArchiveRepository(args.root, cache_bytes=cache_bytes)
    request_timeout = (
        None if args.request_timeout is not None and args.request_timeout <= 0
        else args.request_timeout
    )
    server = (
        ReproServer(repository, host=args.host, port=args.port)
        if args.request_timeout is None
        else ReproServer(
            repository, host=args.host, port=args.port, request_timeout=request_timeout
        )
    )
    handle = server.start_in_thread()
    try:
        if args.port_file:
            Path(args.port_file).write_text(f"{server.port}\n")
        print(f"serving {repository.root} on {server.base_url} (Ctrl-C to stop)",
              flush=True)
        try:
            handle.join()
        except KeyboardInterrupt:
            print("stopping", file=sys.stderr)
    finally:
        handle.stop()
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Micr'Olonys / ULE archival toolchain (CIDR 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    archive = sub.add_parser("archive", help="archive a payload file onto a storage backend")
    archive.add_argument("--input", "-i", required=True, help="payload file to archive")
    archive.add_argument("--output", "-o", required=True,
                         help="archive target URI: dir:<path>, file:<path>, mem:<name>, "
                              "or vol:k=K,m=M:<member,member,...> (bare paths are "
                              "deprecated but still accepted)")
    archive.add_argument("--store", help="storage backend: directory (default), container, "
                                         "memory, volumes")
    archive.add_argument("--append", action="store_true",
                         help="extend an existing archive at --output instead of "
                              "creating one (writes a superseding manifest one "
                              "generation up)")
    archive.add_argument("--config", help="ArchiveConfig JSON file (flags override it)")
    archive.add_argument("--media", help="media channel name (see 'profiles')")
    archive.add_argument("--codec", help="compression codec name")
    archive.add_argument("--executor", help="executor spec, e.g. serial, thread:4")
    archive.add_argument("--segment-size", dest="segment_size", type=int,
                         help="payload bytes per pipeline segment")
    archive.add_argument("--payload-kind", dest="payload_kind",
                         help="manifest payload kind (e.g. sql, binary)")
    archive.add_argument("--distortion", help="distortion profile override")
    archive.add_argument("--no-outer-code", dest="no_outer_code", action="store_true",
                         help="skip the 17+3 inter-emblem parity groups")
    archive.add_argument("--json", action="store_true", help="machine-readable summary")
    archive.set_defaults(handler=_cmd_archive)

    restore = sub.add_parser("restore", help="restore a saved archive (full or a byte range)")
    restore.add_argument("--input", "-i", required=True,
                         help="archive target URI: dir:<path>, file:<path>, mem:<name>, "
                              "or vol:<members> (bare paths are deprecated)")
    restore.add_argument("--output", "-o", required=True, help="file for the restored payload")
    restore.add_argument("--store", help="storage backend override (auto-detected by default)")
    restore.add_argument("--offset", type=int,
                         help="partial restore: first payload byte to recover")
    restore.add_argument("--length", type=int,
                         help="partial restore: number of payload bytes to recover")
    restore.add_argument("--decode-mode", dest="decode_mode",
                         choices=["python", "dynarisc", "nested"],
                         help="restoration fidelity (default: python)")
    restore.add_argument("--executor", help="executor spec for segmented decode")
    restore.add_argument("--decode-parallelism", dest="decode_parallelism", type=int,
                         help="sub-segment decode jobs per segment (default 1)")
    restore.add_argument("--readahead", type=int,
                         help="partial restore: segments of frames to prefetch "
                              "from the backend while decoding (default 0)")
    restore.add_argument("--distortion", help="distortion profile for --via-channel")
    restore.add_argument("--via-channel", dest="via_channel", action="store_true",
                         help="record/scan through the simulated medium first "
                              "(streams batch by batch through the executor)")
    restore.add_argument("--seed", type=int, help="scan seed for --via-channel")
    restore.add_argument("--json", action="store_true", help="machine-readable summary")
    restore.set_defaults(handler=_cmd_restore)

    inspect = sub.add_parser("inspect", help="summarise a saved archive's manifest")
    inspect.add_argument("input", help="archive target URI (dir:/file:/mem:/vol:), a bare "
                                      "path, or http(s)://host/archives/<name>")
    inspect.add_argument("--store", help="storage backend override (auto-detected by default)")
    inspect.add_argument("--json", action="store_true", help="machine-readable summary")
    inspect.set_defaults(handler=_cmd_inspect)

    verify = sub.add_parser("verify", help="fsck a saved archive (walks every "
                                           "manifest generation)")
    verify.add_argument("input", help="archive target URI (dir:/file:/mem:/vol:) or a bare path")
    verify.add_argument("--store", help="storage backend override (auto-detected by default)")
    verify.add_argument("--shallow", action="store_true",
                        help="skip the per-segment hash re-decode; only read and "
                             "parse every referenced frame")
    verify.add_argument("--repair", action="store_true",
                        help="container: truncate a torn tail append back to the "
                             "last valid state before verifying")
    verify.add_argument("--json", action="store_true", help="machine-readable report")
    verify.set_defaults(handler=_cmd_verify)

    profiles = sub.add_parser("profiles", help="list registered media/codecs/executors")
    profiles.add_argument("--json", action="store_true", help="machine-readable listing")
    profiles.set_defaults(handler=_cmd_profiles)

    serve = sub.add_parser("serve", help="serve a repository of named archives over HTTP")
    serve.add_argument("--root", required=True,
                       help="directory holding the named archives (created if missing)")
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port; 0 picks an ephemeral port (default 8765)")
    serve.add_argument("--port-file", dest="port_file",
                       help="write the bound port to this file once listening "
                            "(lets scripts use --port 0)")
    serve.add_argument("--cache-bytes", dest="cache_bytes", type=int,
                       help="decoded-segment cache budget in bytes (default 64 MiB; "
                            "0 disables caching)")
    serve.add_argument("--request-timeout", dest="request_timeout", type=float,
                       help="seconds of socket silence tolerated per request "
                            "(headers, keep-alive waits and body chunks) before "
                            "answering 408 and dropping the connection "
                            "(default 30; 0 disables)")
    serve.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
