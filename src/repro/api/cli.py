"""``python -m repro`` — the command-line face of the :mod:`repro.api` facade.

Subcommands
-----------
``archive``
    Archive a payload file into a directory of emblem images + manifest +
    Bootstrap, streaming the input through an :class:`~repro.api.session.
    ArchiveWriter`.  The resolved :class:`~repro.api.ArchiveConfig` is saved
    as ``config.json`` next to the manifest, so a run is reproducible from
    the artefact alone.
``restore``
    Restore a saved archive directory back to the payload file, optionally
    re-running the simulated record/scan cycle first (``--via-channel``).
``inspect``
    Summarise a saved archive's manifest without loading the images.
``profiles``
    List every registered media channel, codec, executor and distortion
    profile (``--json`` for machine-readable output).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import registry
from repro.api.config import ArchiveConfig
from repro.api.session import open_archive, open_restore
from repro.core.archive import ArchiveManifest
from repro.errors import ReproError

#: Chunk size used when streaming the input file into the writer.
_READ_CHUNK = 1 << 20


def _load_config(args: argparse.Namespace) -> ArchiveConfig:
    """Build the run config from ``--config`` JSON plus per-flag overrides."""
    if getattr(args, "config", None):
        config = ArchiveConfig.from_json(Path(args.config).read_text())
    else:
        config = ArchiveConfig()
    overrides = {}
    for key in ("media", "codec", "executor", "segment_size", "decode_mode",
                "distortion", "scan_seed", "payload_kind"):
        value = getattr(args, key, None)
        if value is not None:
            overrides[key] = value
    if getattr(args, "no_outer_code", False):
        overrides["outer_code"] = False
    return config.replace(**overrides) if overrides else config


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #
def _cmd_archive(args: argparse.Namespace) -> int:
    config = _load_config(args)
    input_path = Path(args.input)
    output_dir = Path(args.output)
    with open_archive(config) as writer, input_path.open("rb") as stream:
        while True:
            chunk = stream.read(_READ_CHUNK)
            if not chunk:
                break
            writer.write(chunk)
    archive = writer.archive
    archive.save(output_dir)
    (output_dir / "config.json").write_text(config.to_json() + "\n")
    manifest = archive.manifest
    summary = {
        "output": str(output_dir),
        "config": config.to_dict(),
        "payload_bytes": manifest.archive_bytes,
        "segments": max(len(manifest.segments), 1),
        "data_emblems": manifest.data_emblem_count,
        "system_emblems": manifest.system_emblem_count,
        "bootstrap_lines": len(archive.bootstrap_text.splitlines()),
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"archived {manifest.archive_bytes:,} bytes -> {output_dir}")
        print(f"  {config.describe()}")
        print(f"  {summary['segments']} segments, "
              f"{manifest.data_emblem_count} data + "
              f"{manifest.system_emblem_count} system emblems, "
              f"{summary['bootstrap_lines']}-line Bootstrap")
    return 0


def _cmd_restore(args: argparse.Namespace) -> int:
    overrides = {}
    for key in ("decode_mode", "executor", "distortion"):
        value = getattr(args, key, None)
        if value is not None:
            overrides[key] = value
    reader = open_restore(args.input, **overrides)
    if args.via_channel:
        result = reader.read_via_channel(seed=args.seed)
    else:
        result = reader.read()
    output_path = Path(args.output)
    output_path.write_bytes(result.payload)
    summary = {
        "output": str(output_path),
        "payload_bytes": len(result.payload),
        "payload_kind": reader.archive.manifest.payload_kind,
        "decode_mode": result.decode_mode,
        "emblems_decoded": result.data_report.emblems_decoded,
        "rs_corrections": result.data_report.rs_corrections,
        "groups_reconstructed": result.data_report.groups_reconstructed,
        "emulator_steps": result.emulator_steps,
        "bit_exact": result.bit_exact,
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"restored {len(result.payload):,} bytes -> {output_path} "
              f"(bit-exact: {result.bit_exact})")
        for note in result.notes:
            print(f"  {note}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    directory = Path(args.input)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise ReproError(f"{directory} does not contain an archive manifest")
    try:
        manifest = ArchiveManifest.from_json(manifest_path.read_text())
    except (ValueError, TypeError) as exc:
        raise ReproError(f"{manifest_path} is not a valid archive manifest: {exc}") from exc
    config_path = directory / "config.json"
    saved_config = None
    if config_path.exists():
        try:
            saved_config = json.loads(config_path.read_text())
        except ValueError as exc:
            raise ReproError(f"{config_path} is not valid JSON: {exc}") from exc
    summary = {
        "directory": str(directory),
        "profile": manifest.profile_name,
        "codec": manifest.dbcoder_profile,
        "payload_kind": manifest.payload_kind,
        "payload_bytes": manifest.archive_bytes,
        "payload_crc32": manifest.archive_crc32,
        "segment_size": manifest.segment_size,
        "segments": [segment.to_dict() for segment in manifest.segments],
        "data_emblems": manifest.data_emblem_count,
        "system_emblems": manifest.system_emblem_count,
        "config": saved_config,
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"{directory}: {manifest.payload_kind} payload, "
              f"{manifest.archive_bytes:,} bytes on {manifest.profile_name} "
              f"via {manifest.dbcoder_profile}")
        print(f"  {manifest.data_emblem_count} data + "
              f"{manifest.system_emblem_count} system emblems, "
              f"{max(len(manifest.segments), 1)} segments "
              f"(segment_size={manifest.segment_size or 'one-shot'})")
        for segment in manifest.segments:
            print(f"  segment {segment.index}: offset={segment.offset} "
                  f"length={segment.length} emblems={segment.emblem_count}")
    return 0


def _cmd_profiles(args: argparse.Namespace) -> int:
    listing = {
        "media": [
            {
                "name": name,
                "description": profile.description,
                "emblem_payload_bytes": profile.spec.payload_capacity,
            }
            for name, profile in registry.media.items()
        ],
        "media_aliases": registry.media.aliases(),
        "codecs": [
            {"name": name, "description": codec.description, "builtin": codec.is_builtin}
            for name, codec in registry.codecs.items()
        ],
        "executors": registry.executors.names(),
        "distortions": registry.distortions.names(),
    }
    if args.json:
        print(json.dumps(listing, indent=2, sort_keys=True))
        return 0
    print("media channels:")
    for entry in listing["media"]:
        print(f"  {entry['name']:<22} {entry['description']}")
    aliases = listing["media_aliases"]
    print(f"  aliases: {', '.join(f'{a} -> {t}' for a, t in sorted(aliases.items()))}")
    print("codecs:")
    for entry in listing["codecs"]:
        kind = "builtin" if entry["builtin"] else "user"
        print(f"  {entry['name']:<22} [{kind}] {entry['description']}")
    print(f"executors: {', '.join(listing['executors'])} "
          f"(suffix ':N' pins the worker count)")
    print(f"distortions: {', '.join(listing['distortions'])}")
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Micr'Olonys / ULE archival toolchain (CIDR 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    archive = sub.add_parser("archive", help="archive a payload file to an emblem directory")
    archive.add_argument("--input", "-i", required=True, help="payload file to archive")
    archive.add_argument("--output", "-o", required=True, help="archive directory to create")
    archive.add_argument("--config", help="ArchiveConfig JSON file (flags override it)")
    archive.add_argument("--media", help="media channel name (see 'profiles')")
    archive.add_argument("--codec", help="compression codec name")
    archive.add_argument("--executor", help="executor spec, e.g. serial, thread:4")
    archive.add_argument("--segment-size", dest="segment_size", type=int,
                         help="payload bytes per pipeline segment")
    archive.add_argument("--payload-kind", dest="payload_kind",
                         help="manifest payload kind (e.g. sql, binary)")
    archive.add_argument("--distortion", help="distortion profile override")
    archive.add_argument("--no-outer-code", dest="no_outer_code", action="store_true",
                         help="skip the 17+3 inter-emblem parity groups")
    archive.add_argument("--json", action="store_true", help="machine-readable summary")
    archive.set_defaults(handler=_cmd_archive)

    restore = sub.add_parser("restore", help="restore a saved archive directory")
    restore.add_argument("--input", "-i", required=True, help="archive directory")
    restore.add_argument("--output", "-o", required=True, help="file for the restored payload")
    restore.add_argument("--decode-mode", dest="decode_mode",
                         choices=["python", "dynarisc", "nested"],
                         help="restoration fidelity (default: python)")
    restore.add_argument("--executor", help="executor spec for segmented decode")
    restore.add_argument("--distortion", help="distortion profile for --via-channel")
    restore.add_argument("--via-channel", dest="via_channel", action="store_true",
                         help="record/scan through the simulated medium first")
    restore.add_argument("--seed", type=int, help="scan seed for --via-channel")
    restore.add_argument("--json", action="store_true", help="machine-readable summary")
    restore.set_defaults(handler=_cmd_restore)

    inspect = sub.add_parser("inspect", help="summarise a saved archive's manifest")
    inspect.add_argument("input", help="archive directory")
    inspect.add_argument("--json", action="store_true", help="machine-readable summary")
    inspect.set_defaults(handler=_cmd_inspect)

    profiles = sub.add_parser("profiles", help="list registered media/codecs/executors")
    profiles.add_argument("--json", action="store_true", help="machine-readable listing")
    profiles.set_defaults(handler=_cmd_profiles)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
