"""The unified public facade of the ULE / Micr'Olonys reproduction.

This package is the canonical way in and out of the system:

* :class:`ArchiveConfig` — one JSON-round-trippable dataclass naming every
  pluggable choice (media channel, codec, executor, distortion, segment
  size, decode mode) through :mod:`repro.registry`;
* :func:`open_archive` / :func:`open_restore` — session-based streaming I/O
  over the pipeline (context managers, chunked ``write``, progress
  callbacks), persisting to / reading from any :mod:`repro.store` backend
  (``target=``/``store=``), with random-access
  :meth:`~repro.api.session.ArchiveReader.read_range` /
  :meth:`~repro.api.session.ArchiveReader.restore_segment` partial restore;
* :func:`run_end_to_end` — all seven steps of Figure 2a, including the
  channel ``record``/``scan`` hop, in a single call;
* ``python -m repro`` (:mod:`repro.api.cli`) — ``archive`` / ``restore`` /
  ``inspect`` / ``profiles`` subcommands built on the same facade.

The historical ``Archiver`` / ``Restorer`` classes remain importable as
deprecation shims.
"""

from repro.api.config import ArchiveConfig
from repro.api.session import (
    ArchiveReader,
    ArchiveWriter,
    EndToEndResult,
    SegmentCacheLike,
    open_archive,
    open_restore,
    run_end_to_end,
)

__all__ = [
    "ArchiveConfig",
    "ArchiveReader",
    "ArchiveWriter",
    "EndToEndResult",
    "SegmentCacheLike",
    "open_archive",
    "open_restore",
    "run_end_to_end",
]
