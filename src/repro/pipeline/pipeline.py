"""The streaming, chunked archival/restore pipeline.

The one-shot flow of :mod:`repro.core.archiver` materialises the payload,
the DBCoder container and every emblem raster at once; fine for the paper's
1.2 MB SQL archive, hopeless for multi-gigabyte dumps.  This module splits
the same seven-step flow (Figure 2a) at the payload layer:

* the :mod:`~repro.pipeline.segmenter` slices the payload into fixed-size
  segments, reading file-like sources incrementally;
* each segment runs **DBCoder encode + MOCoder encode** independently — its
  own container, its own emblem stream, its own outer-code parity groups —
  through a pluggable :mod:`~repro.pipeline.executors` backend (serial,
  thread pool, process pool);
* emblem batches are emitted *incrementally and in payload order*, so a
  consumer can write frames to the recorder as they appear; peak memory is
  bounded by ``segment_size * executor.window`` instead of the payload size.

Restoration mirrors the split: every :class:`~repro.core.archive.
SegmentRecord` names the emblem frames of one segment, so segments decode
independently (and in parallel), and damage in one segment never forces the
others to be re-decoded.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.core.archive import ArchiveManifest, MicrOlonysArchive, SegmentRecord
from repro.core.profiles import MediaProfile, TEST_PROFILE
from repro.bootstrap.document import build_bootstrap
from repro.dbcoder.dbcoder import Profile
from repro.dynarisc.programs import get_program
from repro.errors import RestorationError
from repro.mocoder.emblem import EmblemKind, EmblemSpec
from repro.mocoder.mocoder import DecodeReport, MOCoder
from repro.nested import dynarisc_emulator_image
from repro.pipeline.executors import SegmentExecutor, get_executor
from repro.pipeline.segmenter import (
    DEFAULT_SEGMENT_SIZE,
    PayloadSource,
    iter_segments,
)
from repro.util.crc import crc32_of

__all__ = [
    "ArchivePipeline",
    "RestorePipeline",
    "EncodedSegment",
    "DecodedSegment",
    "build_system_artifacts",
]


# --------------------------------------------------------------------------- #
# Per-segment jobs (module-level and plain-data so process pools can use them)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _EncodeJob:
    spec: EmblemSpec
    #: Registry name of the compression codec (see :data:`repro.registry.codecs`);
    #: a plain string so the job pickles into process-pool workers.
    codec: str
    outer_code: bool
    kind: int
    index: int
    offset: int
    data: bytes


@dataclass(frozen=True)
class _EncodeResult:
    index: int
    offset: int
    length: int
    crc32: int
    sha256: str
    container_bytes: int
    images: list


def _encode_segment_job(job: _EncodeJob) -> _EncodeResult:
    """Steps 2-3 for one segment: DBCoder container -> emblem rasters."""
    from repro import registry  # deferred: registry imports this package

    container = registry.get_codec(job.codec).encode(job.data)
    mocoder = MOCoder(job.spec, outer_code=job.outer_code)
    stream = mocoder.encode(container, kind=EmblemKind(job.kind))
    return _EncodeResult(
        index=job.index,
        offset=job.offset,
        length=len(job.data),
        crc32=crc32_of(job.data),
        sha256=hashlib.sha256(job.data).hexdigest(),
        container_bytes=len(container),
        images=stream.images(),
    )


@dataclass(frozen=True)
class _DecodeJob:
    spec: EmblemSpec
    record: SegmentRecord
    images: list
    decode_payload: bool
    #: Codec registry name from the archive manifest (``"PORTABLE"`` and
    #: friends resolve case-insensitively to the built-ins).
    codec: str = "portable"


@dataclass(frozen=True)
class _DecodeResult:
    record: SegmentRecord
    payload: bytes | None
    container: bytes
    report: DecodeReport


def _decode_segment_job(job: _DecodeJob) -> _DecodeResult:
    """Step 5 for one segment: scanned rasters -> container (-> payload)."""
    from repro import registry  # deferred: registry imports this package

    mocoder = MOCoder(job.spec)
    container, report = mocoder.decode(list(job.images))
    payload = None
    if job.decode_payload:
        payload = registry.get_codec(job.codec).decode(container)
        if len(payload) != job.record.length or crc32_of(payload) != job.record.crc32:
            raise RestorationError(
                f"segment {job.record.index}: restored bytes do not match the "
                "manifest's segment length/CRC"
            )
        # v2 manifests additionally pin a SHA-256 over the segment payload.
        if (
            job.record.sha256 is not None
            and hashlib.sha256(payload).hexdigest() != job.record.sha256
        ):
            raise RestorationError(
                f"segment {job.record.index}: restored bytes do not match the "
                "manifest's segment SHA-256 content hash"
            )
    return _DecodeResult(
        record=job.record, payload=payload, container=container, report=report
    )


# --------------------------------------------------------------------------- #
# Public result types
# --------------------------------------------------------------------------- #
@dataclass
class EncodedSegment:
    """One segment's emblem batch, emitted incrementally by the pipeline."""

    record: SegmentRecord
    images: list[np.ndarray]


@dataclass
class DecodedSegment:
    """One segment restored back to payload bytes."""

    record: SegmentRecord
    payload: bytes
    report: DecodeReport


def merge_reports(reports: Iterable[DecodeReport]) -> DecodeReport:
    """Aggregate per-segment decode statistics into one report."""
    merged = DecodeReport()
    for report in reports:
        merged.emblems_seen += report.emblems_seen
        merged.emblems_decoded += report.emblems_decoded
        merged.emblems_failed += report.emblems_failed
        merged.rs_corrections += report.rs_corrections
        merged.groups_reconstructed += report.groups_reconstructed
        merged.failures.extend(report.failures)
    return merged


def build_system_artifacts(
    profile: MediaProfile, outer_code: bool = True
) -> tuple[list[np.ndarray], str]:
    """Steps 4-6, shared by the one-shot and streaming archivers.

    Returns the system emblem images (the archived DBCoder decoder) and the
    rendered Bootstrap text; neither depends on the payload, so the pipeline
    builds them once per archive regardless of the segment count.
    """
    system_mocoder = MOCoder(profile.spec, outer_code=outer_code)
    dbcoder_decoder = get_program("lzss_decoder")
    system_stream = system_mocoder.encode(dbcoder_decoder.code, kind=EmblemKind.SYSTEM)
    emulator = dynarisc_emulator_image()
    mocoder_decoder = get_program("manchester_unpack")
    bootstrap = build_bootstrap(
        dynarisc_emulator_image=emulator.to_bytes(),
        mocoder_decoder_image=mocoder_decoder.code,
        dynarisc_entry=emulator.entry,
        mocoder_entry=mocoder_decoder.entry,
    )
    return system_stream.images(), bootstrap.render()


# --------------------------------------------------------------------------- #
# Archival
# --------------------------------------------------------------------------- #
class ArchivePipeline:
    """Streaming, chunked archival: payload source -> emblem batches.

    Parameters
    ----------
    profile:
        Media profile selecting the emblem geometry.
    dbcoder_profile:
        Compression codec applied to every segment: a
        :class:`~repro.dbcoder.Profile`, a registry name (``"portable"``,
        ``"dense"``, ... — including user codecs registered with
        :func:`repro.registry.register_codec`), or a
        :class:`~repro.registry.Codec` instance.
    outer_code:
        Whether each segment's emblem stream gets 17+3 parity groups.
    segment_size:
        Payload bytes per segment; ``None`` keeps the whole payload in one
        segment (the one-shot behaviour).
    executor:
        Executor name (``"serial"``, ``"thread[:N]"``, ``"process[:N]"``,
        ``"auto"``) or a :class:`~repro.pipeline.executors.SegmentExecutor`
        instance.
    """

    def __init__(
        self,
        profile: MediaProfile = TEST_PROFILE,
        dbcoder_profile: "Profile | str" = Profile.PORTABLE,
        outer_code: bool = True,
        segment_size: int | None = DEFAULT_SEGMENT_SIZE,
        executor: str | SegmentExecutor = "serial",
    ):
        from repro import registry  # deferred: registry imports this package
        from repro.errors import RegistryError

        self.profile = profile
        self.codec = registry.get_codec(dbcoder_profile)
        # Jobs ship only the codec *name* (they must pickle into workers), so
        # the codec has to be resolvable by name wherever jobs run — fail
        # fast here rather than deep inside an executor.
        if self.codec.name not in registry.codecs:
            raise RegistryError(
                f"codec {self.codec.name!r} is not registered; register it with "
                "repro.registry.register_codec() (or registry.codecs.register) "
                "before constructing a pipeline — segment jobs resolve codecs "
                "by name"
            )
        #: The built-in DBCoder profile, or ``None`` for user codecs.
        self.dbcoder_profile = self.codec.profile
        self.outer_code = outer_code
        self.segment_size = segment_size
        self.executor = executor
        self._owns_executor = not isinstance(executor, SegmentExecutor)

    # ------------------------------------------------------------------ #
    def iter_encode(
        self,
        source: PayloadSource,
        kind: EmblemKind = EmblemKind.DATA,
        _tally: "_CrcTally | None" = None,
    ) -> Iterator[EncodedSegment]:
        """Encode ``source`` segment by segment, yielding emblem batches.

        Batches arrive in payload order; only ``executor.window`` segments
        are in flight at once, so a consumer that writes each batch to the
        medium and drops it holds O(segment) memory for any payload size.
        """
        executor = get_executor(self.executor)

        def jobs() -> Iterator[_EncodeJob]:
            for segment in iter_segments(source, self.segment_size):
                if _tally is not None:
                    _tally.update(segment.data)
                yield _EncodeJob(
                    spec=self.profile.spec,
                    codec=self.codec.name,
                    outer_code=self.outer_code,
                    kind=int(kind),
                    index=segment.index,
                    offset=segment.offset,
                    data=segment.data,
                )

        emblem_start = 0
        try:
            for result in executor.map_ordered(_encode_segment_job, jobs()):
                record = SegmentRecord(
                    index=result.index,
                    offset=result.offset,
                    length=result.length,
                    crc32=result.crc32,
                    emblem_start=emblem_start,
                    emblem_count=len(result.images),
                    container_bytes=result.container_bytes,
                    sha256=result.sha256,
                )
                emblem_start += record.emblem_count
                yield EncodedSegment(record=record, images=result.images)
        finally:
            if self._owns_executor:
                executor.close()

    # ------------------------------------------------------------------ #
    def archive_stream(
        self, source: PayloadSource, payload_kind: str = "binary"
    ) -> MicrOlonysArchive:
        """Run the full archival flow over a streaming source.

        This *collects* every emblem batch into a
        :class:`~repro.core.archive.MicrOlonysArchive` artefact — callers
        that must stay memory-bounded should consume :meth:`iter_encode`
        directly and persist batches as they arrive.
        """
        records: list[SegmentRecord] = []
        data_images: list[np.ndarray] = []
        tally = _CrcTally()
        for batch in self.iter_encode(source, _tally=tally):
            records.append(batch.record)
            data_images.extend(batch.images)
        system_images, bootstrap_text = build_system_artifacts(
            self.profile, outer_code=self.outer_code
        )
        manifest = ArchiveManifest(
            profile_name=self.profile.name,
            dbcoder_profile=self.codec.manifest_name,
            archive_bytes=tally.length,
            archive_crc32=tally.crc,
            data_emblem_count=len(data_images),
            system_emblem_count=len(system_images),
            payload_kind=payload_kind,
            segment_size=self.segment_size,
            segments=tuple(records),
        )
        return MicrOlonysArchive(
            manifest=manifest,
            data_emblem_images=data_images,
            system_emblem_images=system_images,
            bootstrap_text=bootstrap_text,
        )

    def archive_bytes(
        self, payload: bytes, payload_kind: str = "binary"
    ) -> MicrOlonysArchive:
        """Archive an in-memory byte payload (convenience wrapper)."""
        return self.archive_stream(payload, payload_kind=payload_kind)


class _CrcTally:
    """Running CRC-32 / length over the payload, fed as segments are read.

    Segments are generated strictly in payload order (the executors only
    parallelise the *encoding*, never the reading), so chaining
    ``zlib.crc32`` per segment yields exactly the CRC of the whole payload
    without ever holding more than one segment in memory.
    """

    def __init__(self) -> None:
        self.crc = 0
        self.length = 0

    def update(self, data: bytes) -> None:
        self.crc = zlib.crc32(data, self.crc) & 0xFFFFFFFF
        self.length += len(data)


# --------------------------------------------------------------------------- #
# Restoration
# --------------------------------------------------------------------------- #
class RestorePipeline:
    """Per-segment restoration: scanned emblem rasters -> payload bytes."""

    def __init__(
        self,
        profile: MediaProfile = TEST_PROFILE,
        executor: str | SegmentExecutor = "serial",
    ):
        self.profile = profile
        self.executor = executor
        self._owns_executor = not isinstance(executor, SegmentExecutor)

    # ------------------------------------------------------------------ #
    def _iter_jobs(
        self,
        manifest: ArchiveManifest,
        data_images: list[np.ndarray],
        decode_payload: bool,
    ) -> Iterator[_DecodeJob]:
        for record in manifest.segments:
            end = record.emblem_start + record.emblem_count
            if end > len(data_images):
                raise RestorationError(
                    f"segment {record.index} expects emblem frames "
                    f"{record.emblem_start}..{end - 1} but only "
                    f"{len(data_images)} scans were provided; segmented "
                    "restore needs one scan per recorded frame (damaged "
                    "frames may be blank, but not absent)"
                )
            yield _DecodeJob(
                spec=self.profile.spec,
                record=record,
                images=data_images[record.emblem_start:end],
                decode_payload=decode_payload,
                codec=manifest.dbcoder_profile or "portable",
            )

    def iter_decode(
        self, manifest: ArchiveManifest, data_images: list[np.ndarray]
    ) -> Iterator[DecodedSegment]:
        """Decode each segment independently, in payload order."""
        executor = get_executor(self.executor)
        try:
            for result in executor.map_ordered(
                _decode_segment_job, self._iter_jobs(manifest, data_images, True)
            ):
                yield DecodedSegment(
                    record=result.record, payload=result.payload, report=result.report
                )
        finally:
            if self._owns_executor:
                executor.close()

    def iter_decode_selected(
        self,
        manifest: ArchiveManifest,
        records: Iterable[SegmentRecord],
        frames_for: "Callable[[SegmentRecord], list[np.ndarray]]",
    ) -> Iterator[DecodedSegment]:
        """Decode only ``records``, fetching each segment's frames on demand.

        This is the random-access path behind
        :meth:`repro.api.ArchiveReader.read_range` /
        :meth:`~repro.api.ArchiveReader.restore_segment`: ``frames_for`` is
        called lazily (inside the executor's bounded submission window) with
        one record at a time, so a storage-backed reader only ever pulls the
        frames of the segments actually being decoded.
        """
        executor = get_executor(self.executor)

        def jobs() -> Iterator[_DecodeJob]:
            for record in records:
                yield _DecodeJob(
                    spec=self.profile.spec,
                    record=record,
                    images=frames_for(record),
                    decode_payload=True,
                    codec=manifest.dbcoder_profile or "portable",
                )

        try:
            for result in executor.map_ordered(_decode_segment_job, jobs()):
                yield DecodedSegment(
                    record=result.record, payload=result.payload, report=result.report
                )
        finally:
            if self._owns_executor:
                executor.close()

    def iter_decode_containers(
        self, manifest: ArchiveManifest, data_images: list[np.ndarray]
    ) -> Iterator[tuple[SegmentRecord, bytes, DecodeReport]]:
        """Decode each segment only down to its DBCoder container.

        Used by the emulated restoration modes, where the database-layout
        decoding runs under DynaRisc/VeRisc in the caller's control.
        """
        executor = get_executor(self.executor)
        try:
            for result in executor.map_ordered(
                _decode_segment_job, self._iter_jobs(manifest, data_images, False)
            ):
                yield result.record, result.container, result.report
        finally:
            if self._owns_executor:
                executor.close()

    # ------------------------------------------------------------------ #
    def restore_payload(
        self, manifest: ArchiveManifest, data_images: list[np.ndarray]
    ) -> tuple[bytes, DecodeReport, list[SegmentRecord]]:
        """Restore the whole payload via per-segment decoding.

        Raises
        ------
        RestorationError
            If any segment fails its integrity checks or the reassembled
            payload does not match the manifest's archive CRC.
        """
        parts: list[bytes] = []
        reports: list[DecodeReport] = []
        records: list[SegmentRecord] = []
        for decoded in self.iter_decode(manifest, data_images):
            parts.append(decoded.payload)
            reports.append(decoded.report)
            records.append(decoded.record)
        payload = b"".join(parts)
        if len(payload) != manifest.archive_bytes or crc32_of(payload) != manifest.archive_crc32:
            raise RestorationError(
                "reassembled payload does not match the manifest's archive "
                "length/CRC; the restoration is not bit-for-bit"
            )
        return payload, merge_reports(reports), records
