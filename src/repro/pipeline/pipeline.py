"""The streaming, chunked archival/restore pipeline.

The one-shot flow of :mod:`repro.core.archiver` materialises the payload,
the DBCoder container and every emblem raster at once; fine for the paper's
1.2 MB SQL archive, hopeless for multi-gigabyte dumps.  This module splits
the same seven-step flow (Figure 2a) at the payload layer:

* the :mod:`~repro.pipeline.segmenter` slices the payload into fixed-size
  segments, reading file-like sources incrementally;
* each segment runs **DBCoder encode + MOCoder encode** independently — its
  own container, its own emblem stream, its own outer-code parity groups —
  through a pluggable :mod:`~repro.pipeline.executors` backend (serial,
  thread pool, process pool);
* emblem batches are emitted *incrementally and in payload order*, so a
  consumer can write frames to the recorder as they appear; peak memory is
  bounded by ``segment_size * executor.window`` instead of the payload size.

Restoration mirrors the split: every :class:`~repro.core.archive.
SegmentRecord` names the emblem frames of one segment, so segments decode
independently (and in parallel), and damage in one segment never forces the
others to be re-decoded.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

import numpy as np

if TYPE_CHECKING:
    from repro.media.channel import MediaChannel

from repro.core.archive import ArchiveManifest, MicrOlonysArchive, SegmentRecord
from repro.core.profiles import MediaProfile, TEST_PROFILE
from repro.bootstrap.document import build_bootstrap
from repro.dbcoder.dbcoder import Profile
from repro.dynarisc.programs import get_program
from repro.errors import RestorationError
from repro.mocoder.emblem import EmblemKind, EmblemSpec
from repro.mocoder.mocoder import (
    MIN_DECODE_CHUNK,
    DecodeReport,
    Emblem,
    MOCoder,
    chunk_bounds,
)
from repro.nested import dynarisc_emulator_image
from repro.pipeline.executors import SegmentExecutor, get_executor
from repro.pipeline.segmenter import (
    DEFAULT_SEGMENT_SIZE,
    PayloadSource,
    iter_segments,
)
from repro.util.crc import crc32_of

__all__ = [
    "ArchivePipeline",
    "ChannelSpec",
    "RestorePipeline",
    "EncodedSegment",
    "DecodedSegment",
    "build_system_artifacts",
]


# --------------------------------------------------------------------------- #
# Streaming channel simulation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ChannelSpec:
    """Picklable description of the simulated analog hop (step 7).

    Decode jobs that carry a ``ChannelSpec`` *record* their segment's emblem
    rasters onto the named medium and *scan* them back (with per-frame
    seeding, see :meth:`repro.media.channel.MediaChannel.scan_frames`) before
    decoding — the channel simulation streams batch by batch through the
    executor instead of staging a whole-archive record/scan pass.  Everything
    is named through :mod:`repro.registry` so the spec pickles into
    process-pool workers.
    """

    #: Media profile registry name (the channel factory).
    media: str
    #: Optional distortion-profile registry name overriding the channel default.
    distortion: str | None = None
    #: Base scan seed; per-frame streams derive from (seed, lane, frame index).
    seed: int | None = None

    def build_channel(self) -> "MediaChannel":
        """Instantiate the named channel (the single construction point —
        callers on the consumer thread and in executor workers alike must
        build channels here so every lane simulates the same medium)."""
        from repro import registry  # deferred: registry imports this package

        channel = registry.get_media(self.media).channel()
        if self.distortion is not None:
            channel.distortion = registry.get_distortion(self.distortion)
        return channel


def _simulate_channel(
    images: list[np.ndarray],
    channel_spec: ChannelSpec,
    frame_start: int,
    lane: int = 0,
) -> list[np.ndarray]:
    """Record ``images`` onto the simulated medium and scan them back."""
    channel = channel_spec.build_channel()
    frames = channel.record(list(images))
    return channel.scan_frames(
        frames, seed=channel_spec.seed, start_index=frame_start, lane=lane
    ).images


def resolve_decode_executor(
    executor: "str | SegmentExecutor | None", decode_parallelism: int
) -> "str | SegmentExecutor | None":
    """The executor sub-segment decoding should actually run on.

    ``decode_parallelism`` > 1 over the default ``"serial"`` executor would
    be a silent no-op (chunks would still decode one after another), so the
    combination upgrades to a thread pool sized to the parallelism.  Any
    explicit executor choice — another name, a ``name:N`` spec, or an
    instance — is respected as given.
    """
    if decode_parallelism > 1 and (executor is None or executor == "serial"):
        return f"thread:{decode_parallelism}"
    return executor


# --------------------------------------------------------------------------- #
# Per-segment jobs (module-level and plain-data so process pools can use them)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _EncodeJob:
    spec: EmblemSpec
    #: Registry name of the compression codec (see :data:`repro.registry.codecs`);
    #: a plain string so the job pickles into process-pool workers.
    codec: str
    outer_code: bool
    kind: int
    index: int
    offset: int
    data: bytes


@dataclass(frozen=True)
class _EncodeResult:
    index: int
    offset: int
    length: int
    crc32: int
    sha256: str
    container_bytes: int
    #: All of the segment's rasters in one (count, H, W) array.  Inside one
    #: address space (serial/thread executors) the consumer slices views out
    #: of this buffer — zero copies; across a process pool the single array
    #: pickles as one contiguous buffer instead of one pickle frame per
    #: raster.
    images: np.ndarray


def _encode_segment_job(job: _EncodeJob) -> _EncodeResult:
    """Steps 2-3 for one segment: DBCoder container -> emblem rasters."""
    from repro import registry  # deferred: registry imports this package

    container = registry.get_codec(job.codec).encode(job.data)
    mocoder = MOCoder(job.spec, outer_code=job.outer_code)
    stream = mocoder.encode(container, kind=EmblemKind(job.kind))
    return _EncodeResult(
        index=job.index,
        offset=job.offset,
        length=len(job.data),
        crc32=crc32_of(job.data),
        sha256=hashlib.sha256(job.data).hexdigest(),
        container_bytes=len(container),
        images=stream.images_array(),
    )


@dataclass(frozen=True)
class _DecodeJob:
    spec: EmblemSpec
    record: SegmentRecord
    images: list[np.ndarray]
    decode_payload: bool
    #: Codec registry name from the archive manifest (``"PORTABLE"`` and
    #: friends resolve case-insensitively to the built-ins).
    codec: str = "portable"
    #: When set, the job records/scans its images through the simulated
    #: medium before decoding (streaming channel simulation).
    channel: ChannelSpec | None = None


@dataclass(frozen=True)
class _DecodeResult:
    record: SegmentRecord
    payload: bytes | None
    container: bytes
    report: DecodeReport


def _verify_segment_payload(record: SegmentRecord, payload: bytes) -> None:
    """Check one restored segment against its manifest record."""
    if len(payload) != record.length or crc32_of(payload) != record.crc32:
        raise RestorationError(
            f"segment {record.index}: restored bytes do not match the "
            "manifest's segment length/CRC"
        )
    # v2 manifests additionally pin a SHA-256 over the segment payload.
    if (
        record.sha256 is not None
        and hashlib.sha256(payload).hexdigest() != record.sha256
    ):
        raise RestorationError(
            f"segment {record.index}: restored bytes do not match the "
            "manifest's segment SHA-256 content hash"
        )


def _decode_segment_job(job: _DecodeJob) -> _DecodeResult:
    """Step 5 for one segment: scanned rasters -> container (-> payload)."""
    from repro import registry  # deferred: registry imports this package

    images = list(job.images)
    if job.channel is not None:
        images = _simulate_channel(images, job.channel, job.record.emblem_start)
    mocoder = MOCoder(job.spec)
    container, report = mocoder.decode(images)
    payload = None
    if job.decode_payload:
        payload = registry.get_codec(job.codec).decode(container)
        _verify_segment_payload(job.record, payload)
    return _DecodeResult(
        record=job.record, payload=payload, container=container, report=report
    )


# --------------------------------------------------------------------------- #
# Sub-segment decode jobs: one segment's scans split into contiguous chunks so
# a single huge segment no longer serialises restore (decode_parallelism > 1).
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _SegmentChunkJob:
    spec: EmblemSpec
    record: SegmentRecord
    #: 0-based position of this chunk within its segment, and the total
    #: chunk count — the consumer regroups on these (map_ordered keeps all
    #: of one segment's chunks consecutive).
    chunk_index: int
    chunk_count: int
    #: Index of ``images[0]`` within the segment's emblem run.
    chunk_start: int
    images: list[np.ndarray]
    channel: ChannelSpec | None = None


@dataclass(frozen=True)
class _SegmentChunkResult:
    record: SegmentRecord
    chunk_index: int
    chunk_count: int
    emblems: list["Emblem"]
    report: DecodeReport


def _decode_segment_chunk_job(job: _SegmentChunkJob) -> _SegmentChunkResult:
    """Channel-simulate (optionally) and emblem-decode one chunk of scans."""
    images = list(job.images)
    frame_start = job.record.emblem_start + job.chunk_start
    if job.channel is not None:
        images = _simulate_channel(images, job.channel, frame_start)
    mocoder = MOCoder(job.spec)
    report = DecodeReport(emblems_seen=len(images))
    decoded = mocoder.decode_images(images, report, image_offset=job.chunk_start)
    return _SegmentChunkResult(
        record=job.record,
        chunk_index=job.chunk_index,
        chunk_count=job.chunk_count,
        emblems=list(decoded.values()),
        report=report,
    )


# --------------------------------------------------------------------------- #
# Public result types
# --------------------------------------------------------------------------- #
@dataclass
class EncodedSegment:
    """One segment's emblem batch, emitted incrementally by the pipeline."""

    record: SegmentRecord
    images: list[np.ndarray]


@dataclass
class DecodedSegment:
    """One segment restored back to payload bytes."""

    record: SegmentRecord
    payload: bytes
    report: DecodeReport


def merge_reports(reports: Iterable[DecodeReport]) -> DecodeReport:
    """Aggregate per-segment decode statistics into one report."""
    merged = DecodeReport()
    for report in reports:
        merged.emblems_seen += report.emblems_seen
        merged.emblems_decoded += report.emblems_decoded
        merged.emblems_failed += report.emblems_failed
        merged.rs_corrections += report.rs_corrections
        merged.groups_reconstructed += report.groups_reconstructed
        merged.failures.extend(report.failures)
    return merged


def build_system_artifacts(
    profile: MediaProfile, outer_code: bool = True
) -> tuple[list[np.ndarray], str]:
    """Steps 4-6, shared by the one-shot and streaming archivers.

    Returns the system emblem images (the archived DBCoder decoder) and the
    rendered Bootstrap text; neither depends on the payload, so the pipeline
    builds them once per archive regardless of the segment count.
    """
    system_mocoder = MOCoder(profile.spec, outer_code=outer_code)
    dbcoder_decoder = get_program("lzss_decoder")
    system_stream = system_mocoder.encode(dbcoder_decoder.code, kind=EmblemKind.SYSTEM)
    emulator = dynarisc_emulator_image()
    mocoder_decoder = get_program("manchester_unpack")
    bootstrap = build_bootstrap(
        dynarisc_emulator_image=emulator.to_bytes(),
        mocoder_decoder_image=mocoder_decoder.code,
        dynarisc_entry=emulator.entry,
        mocoder_entry=mocoder_decoder.entry,
    )
    return system_stream.images(), bootstrap.render()


# --------------------------------------------------------------------------- #
# Archival
# --------------------------------------------------------------------------- #
class ArchivePipeline:
    """Streaming, chunked archival: payload source -> emblem batches.

    Parameters
    ----------
    profile:
        Media profile selecting the emblem geometry.
    dbcoder_profile:
        Compression codec applied to every segment: a
        :class:`~repro.dbcoder.Profile`, a registry name (``"portable"``,
        ``"dense"``, ... — including user codecs registered with
        :func:`repro.registry.register_codec`), or a
        :class:`~repro.registry.Codec` instance.
    outer_code:
        Whether each segment's emblem stream gets 17+3 parity groups.
    segment_size:
        Payload bytes per segment; ``None`` keeps the whole payload in one
        segment (the one-shot behaviour).
    executor:
        Executor name (``"serial"``, ``"thread[:N]"``, ``"process[:N]"``,
        ``"auto"``) or a :class:`~repro.pipeline.executors.SegmentExecutor`
        instance.
    """

    def __init__(
        self,
        profile: MediaProfile = TEST_PROFILE,
        dbcoder_profile: "Profile | str" = Profile.PORTABLE,
        outer_code: bool = True,
        segment_size: int | None = DEFAULT_SEGMENT_SIZE,
        executor: str | SegmentExecutor = "serial",
    ):
        from repro import registry  # deferred: registry imports this package
        from repro.errors import RegistryError

        self.profile = profile
        self.codec = registry.get_codec(dbcoder_profile)
        # Jobs ship only the codec *name* (they must pickle into workers), so
        # the codec has to be resolvable by name wherever jobs run — fail
        # fast here rather than deep inside an executor.
        if self.codec.name not in registry.codecs:
            raise RegistryError(
                f"codec {self.codec.name!r} is not registered; register it with "
                "repro.registry.register_codec() (or registry.codecs.register) "
                "before constructing a pipeline — segment jobs resolve codecs "
                "by name"
            )
        #: The built-in DBCoder profile, or ``None`` for user codecs.
        self.dbcoder_profile = self.codec.profile
        self.outer_code = outer_code
        self.segment_size = segment_size
        self.executor = executor
        self._owns_executor = not isinstance(executor, SegmentExecutor)

    # ------------------------------------------------------------------ #
    def iter_encode(
        self,
        source: PayloadSource,
        kind: EmblemKind = EmblemKind.DATA,
        _tally: "_CrcTally | None" = None,
    ) -> Iterator[EncodedSegment]:
        """Encode ``source`` segment by segment, yielding emblem batches.

        Batches arrive in payload order; only ``executor.window`` segments
        are in flight at once, so a consumer that writes each batch to the
        medium and drops it holds O(segment) memory for any payload size.
        """
        executor = get_executor(self.executor)

        def jobs() -> Iterator[_EncodeJob]:
            for segment in iter_segments(source, self.segment_size):
                if _tally is not None:
                    _tally.update(segment.data)
                yield _EncodeJob(
                    spec=self.profile.spec,
                    codec=self.codec.name,
                    outer_code=self.outer_code,
                    kind=int(kind),
                    index=segment.index,
                    offset=segment.offset,
                    data=segment.data,
                )

        emblem_start = 0
        try:
            for result in executor.map_ordered(_encode_segment_job, jobs()):
                record = SegmentRecord(
                    index=result.index,
                    offset=result.offset,
                    length=result.length,
                    crc32=result.crc32,
                    emblem_start=emblem_start,
                    emblem_count=len(result.images),
                    container_bytes=result.container_bytes,
                    sha256=result.sha256,
                )
                emblem_start += record.emblem_count
                # list() of the (count, H, W) batch yields per-frame views
                # sharing the batch buffer — no per-frame copies.
                yield EncodedSegment(record=record, images=list(result.images))
        finally:
            if self._owns_executor:
                executor.close()

    # ------------------------------------------------------------------ #
    def archive_stream(
        self, source: PayloadSource, payload_kind: str = "binary"
    ) -> MicrOlonysArchive:
        """Run the full archival flow over a streaming source.

        This *collects* every emblem batch into a
        :class:`~repro.core.archive.MicrOlonysArchive` artefact — callers
        that must stay memory-bounded should consume :meth:`iter_encode`
        directly and persist batches as they arrive.
        """
        records: list[SegmentRecord] = []
        data_images: list[np.ndarray] = []
        tally = _CrcTally()
        for batch in self.iter_encode(source, _tally=tally):
            records.append(batch.record)
            data_images.extend(batch.images)
        system_images, bootstrap_text = build_system_artifacts(
            self.profile, outer_code=self.outer_code
        )
        manifest = ArchiveManifest(
            profile_name=self.profile.name,
            dbcoder_profile=self.codec.manifest_name,
            archive_bytes=tally.length,
            archive_crc32=tally.crc,
            data_emblem_count=len(data_images),
            system_emblem_count=len(system_images),
            payload_kind=payload_kind,
            segment_size=self.segment_size,
            segments=tuple(records),
        )
        return MicrOlonysArchive(
            manifest=manifest,
            data_emblem_images=data_images,
            system_emblem_images=system_images,
            bootstrap_text=bootstrap_text,
        )

    def archive_bytes(
        self, payload: bytes, payload_kind: str = "binary"
    ) -> MicrOlonysArchive:
        """Archive an in-memory byte payload (convenience wrapper)."""
        return self.archive_stream(payload, payload_kind=payload_kind)


class _CrcTally:
    """Running CRC-32 / length over the payload, fed as segments are read.

    Segments are generated strictly in payload order (the executors only
    parallelise the *encoding*, never the reading), so chaining
    ``zlib.crc32`` per segment yields exactly the CRC of the whole payload
    without ever holding more than one segment in memory.
    """

    def __init__(self) -> None:
        self.crc = 0
        self.length = 0

    def update(self, data: bytes) -> None:
        self.crc = zlib.crc32(data, self.crc) & 0xFFFFFFFF
        self.length += len(data)


# --------------------------------------------------------------------------- #
# Restoration
# --------------------------------------------------------------------------- #
class RestorePipeline:
    """Per-segment restoration: scanned emblem rasters -> payload bytes.

    Parameters
    ----------
    profile:
        Media profile whose emblem spec the scans were produced with.
    executor:
        Executor spec or instance mapping the per-segment (or per-chunk)
        decode jobs.
    channel:
        Optional :class:`ChannelSpec`.  When set, every decode job *records*
        its emblem rasters onto the named medium and *scans* them back
        (per-frame seeded) before decoding — streaming channel simulation,
        batch by batch through the executor, replacing the historical
        whole-archive record/scan pass.
    decode_parallelism:
        Sub-segment parallelism: when > 1, each segment's scans are split
        into up to that many contiguous chunks decoded as independent
        executor jobs (the serial group reassembly runs on the consuming
        thread), so one huge segment no longer bounds restore latency.
    """

    def __init__(
        self,
        profile: MediaProfile = TEST_PROFILE,
        executor: str | SegmentExecutor = "serial",
        channel: ChannelSpec | None = None,
        decode_parallelism: int = 1,
    ):
        self.profile = profile
        self.decode_parallelism = max(1, int(decode_parallelism))
        self.executor = resolve_decode_executor(executor, self.decode_parallelism)
        self.channel = channel
        self._owns_executor = not isinstance(self.executor, SegmentExecutor)

    # ------------------------------------------------------------------ #
    def _frames_from_list(
        self, data_images: list[np.ndarray]
    ) -> "Callable[[SegmentRecord], list[np.ndarray]]":
        """A frame provider slicing a fully materialised scan list."""

        def frames_for(record: SegmentRecord) -> list[np.ndarray]:
            end = record.emblem_start + record.emblem_count
            if end > len(data_images):
                raise RestorationError(
                    f"segment {record.index} expects emblem frames "
                    f"{record.emblem_start}..{end - 1} but only "
                    f"{len(data_images)} scans were provided; segmented "
                    "restore needs one scan per recorded frame (damaged "
                    "frames may be blank, but not absent)"
                )
            return data_images[record.emblem_start:end]

        return frames_for

    def _iter_results(
        self,
        manifest: ArchiveManifest,
        records: Iterable[SegmentRecord],
        frames_for: "Callable[[SegmentRecord], list[np.ndarray]]",
        decode_payload: bool,
    ) -> Iterator[_DecodeResult]:
        """Decode ``records`` in order through the executor.

        ``frames_for`` is called lazily (inside the executor's bounded
        submission window) with one record at a time, so a storage-backed
        caller only ever pulls the frames of the segments actually being
        decoded.
        """
        codec = manifest.dbcoder_profile or "portable"
        if self.decode_parallelism > 1:
            yield from self._iter_results_chunked(codec, records, frames_for, decode_payload)
            return
        executor = get_executor(self.executor)

        def jobs() -> Iterator[_DecodeJob]:
            for record in records:
                yield _DecodeJob(
                    spec=self.profile.spec,
                    record=record,
                    images=frames_for(record),
                    decode_payload=decode_payload,
                    codec=codec,
                    channel=self.channel,
                )

        try:
            yield from executor.map_ordered(_decode_segment_job, jobs())
        finally:
            if self._owns_executor:
                executor.close()

    # ------------------------------------------------------------------ #
    # Sub-segment (chunked) decode
    # ------------------------------------------------------------------ #
    def _chunk_jobs(
        self,
        records: Iterable[SegmentRecord],
        frames_for: "Callable[[SegmentRecord], list[np.ndarray]]",
    ) -> Iterator[_SegmentChunkJob]:
        for record in records:
            images = frames_for(record)
            # Floored chunks: a small segment is one vectorised decode call,
            # so fanning it out would only add executor round-trips.
            bounds = chunk_bounds(
                len(images), self.decode_parallelism, min_chunk=MIN_DECODE_CHUNK
            )
            for chunk_index, (start, end) in enumerate(bounds):
                yield _SegmentChunkJob(
                    spec=self.profile.spec,
                    record=record,
                    chunk_index=chunk_index,
                    chunk_count=len(bounds),
                    chunk_start=start,
                    images=images[start:end],
                    channel=self.channel,
                )

    def _finish_chunked_segment(
        self, chunks: list[_SegmentChunkResult], codec: str, decode_payload: bool
    ) -> _DecodeResult:
        """Serial tail of one segment's chunked decode: assemble and verify."""
        from repro import registry  # deferred: registry imports this package

        record = chunks[0].record
        decoded: dict[int, Emblem] = {}
        for chunk in chunks:
            for emblem in chunk.emblems:
                decoded[emblem.header.index] = emblem
        report = merge_reports(chunk.report for chunk in chunks)
        mocoder = MOCoder(self.profile.spec)
        container, report = mocoder.assemble(decoded, report)
        payload = None
        if decode_payload:
            payload = registry.get_codec(codec).decode(container)
            _verify_segment_payload(record, payload)
        return _DecodeResult(
            record=record, payload=payload, container=container, report=report
        )

    def _iter_results_chunked(
        self,
        codec: str,
        records: Iterable[SegmentRecord],
        frames_for: "Callable[[SegmentRecord], list[np.ndarray]]",
        decode_payload: bool,
    ) -> Iterator[_DecodeResult]:
        """Chunked decode: ``decode_parallelism`` jobs per segment.

        ``map_ordered`` preserves submission order, so all chunks of one
        segment arrive consecutively; each segment finishes (group
        reassembly, codec decode, hash verification) on the consuming thread
        as soon as its last chunk lands, while later chunks keep decoding in
        the executor.
        """
        executor = get_executor(self.executor)
        pending: list[_SegmentChunkResult] = []
        try:
            for chunk in executor.map_ordered(
                _decode_segment_chunk_job, self._chunk_jobs(records, frames_for)
            ):
                pending.append(chunk)
                if len(pending) == chunk.chunk_count:
                    yield self._finish_chunked_segment(pending, codec, decode_payload)
                    pending = []
        finally:
            if self._owns_executor:
                executor.close()

    # ------------------------------------------------------------------ #
    def iter_decode(
        self, manifest: ArchiveManifest, data_images: list[np.ndarray]
    ) -> Iterator[DecodedSegment]:
        """Decode each segment independently, in payload order."""
        for result in self._iter_results(
            manifest, manifest.segments, self._frames_from_list(data_images), True
        ):
            yield DecodedSegment(
                record=result.record, payload=result.payload, report=result.report
            )

    def iter_decode_selected(
        self,
        manifest: ArchiveManifest,
        records: Iterable[SegmentRecord],
        frames_for: "Callable[[SegmentRecord], list[np.ndarray]]",
    ) -> Iterator[DecodedSegment]:
        """Decode only ``records``, fetching each segment's frames on demand.

        This is the random-access path behind
        :meth:`repro.api.ArchiveReader.read_range` /
        :meth:`~repro.api.ArchiveReader.restore_segment`: ``frames_for`` is
        called lazily (inside the executor's bounded submission window) with
        one record at a time, so a storage-backed reader only ever pulls the
        frames of the segments actually being decoded.
        """
        for result in self._iter_results(manifest, records, frames_for, True):
            yield DecodedSegment(
                record=result.record, payload=result.payload, report=result.report
            )

    def iter_decode_containers(
        self, manifest: ArchiveManifest, data_images: list[np.ndarray]
    ) -> Iterator[tuple[SegmentRecord, bytes, DecodeReport]]:
        """Decode each segment only down to its DBCoder container.

        Used by the emulated restoration modes, where the database-layout
        decoding runs under DynaRisc/VeRisc in the caller's control.
        """
        for result in self._iter_results(
            manifest, manifest.segments, self._frames_from_list(data_images), False
        ):
            yield result.record, result.container, result.report

    # ------------------------------------------------------------------ #
    def restore_payload(
        self, manifest: ArchiveManifest, data_images: list[np.ndarray]
    ) -> tuple[bytes, DecodeReport, list[SegmentRecord]]:
        """Restore the whole payload via per-segment decoding.

        Raises
        ------
        RestorationError
            If any segment fails its integrity checks or the reassembled
            payload does not match the manifest's archive CRC.
        """
        parts: list[bytes] = []
        reports: list[DecodeReport] = []
        records: list[SegmentRecord] = []
        for decoded in self.iter_decode(manifest, data_images):
            parts.append(decoded.payload)
            reports.append(decoded.report)
            records.append(decoded.record)
        payload = b"".join(parts)
        if len(payload) != manifest.archive_bytes or crc32_of(payload) != manifest.archive_crc32:
            raise RestorationError(
                "reassembled payload does not match the manifest's archive "
                "length/CRC; the restoration is not bit-for-bit"
            )
        return payload, merge_reports(reports), records
