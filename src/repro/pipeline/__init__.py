"""Streaming, chunked archival/restore pipeline (segment scheduler + coders).

Splits payloads into fixed-size segments, runs DBCoder + MOCoder per segment
through a pluggable executor (serial / thread / process), and emits emblem
batches incrementally so peak memory is bounded by the segment size rather
than the payload size.  See :mod:`repro.pipeline.pipeline` for the flow and
:class:`~repro.core.archive.SegmentRecord` for the manifest metadata that
makes segments independently restorable.
"""

from repro.pipeline.executors import (
    EXECUTOR_NAMES,
    ProcessPoolSegmentExecutor,
    SegmentExecutor,
    SerialExecutor,
    ThreadPoolSegmentExecutor,
    get_executor,
)
from repro.pipeline.pipeline import (
    ArchivePipeline,
    ChannelSpec,
    DecodedSegment,
    EncodedSegment,
    RestorePipeline,
    build_system_artifacts,
    merge_reports,
    resolve_decode_executor,
)
from repro.pipeline.segmenter import DEFAULT_SEGMENT_SIZE, Segment, iter_segments, segment_count

__all__ = [
    "ArchivePipeline",
    "ChannelSpec",
    "RestorePipeline",
    "EncodedSegment",
    "DecodedSegment",
    "build_system_artifacts",
    "merge_reports",
    "resolve_decode_executor",
    "SegmentExecutor",
    "SerialExecutor",
    "ThreadPoolSegmentExecutor",
    "ProcessPoolSegmentExecutor",
    "get_executor",
    "EXECUTOR_NAMES",
    "DEFAULT_SEGMENT_SIZE",
    "Segment",
    "iter_segments",
    "segment_count",
]
