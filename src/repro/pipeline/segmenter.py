"""Payload segmentation for the streaming archival pipeline.

The one-shot :class:`~repro.core.archiver.Archiver` feeds the *whole* payload
through DBCoder and MOCoder at once, so its peak memory scales with the
payload.  The pipeline instead slices the payload into fixed-size segments;
each segment flows through the coders independently, so peak memory is
bounded by the segment size (times the number of in-flight segments) no
matter how large the payload is.

Sources may be ``bytes``, a binary file object, or any iterable of byte
chunks; file objects and iterables are consumed incrementally — the full
payload is never materialised here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import BinaryIO, Iterable, Iterator, Union

from repro.util.crc import crc32_of

#: Default pipeline segment size (1 MiB of payload per segment).
DEFAULT_SEGMENT_SIZE = 1 << 20

#: Anything the segmenter can slice into segments.
PayloadSource = Union[bytes, bytearray, memoryview, BinaryIO, Iterable[bytes]]


@dataclass(frozen=True)
class Segment:
    """One contiguous slice of the payload, ready to be encoded."""

    index: int
    offset: int
    data: bytes

    @property
    def length(self) -> int:
        """Number of payload bytes in this segment."""
        return len(self.data)

    @property
    def crc32(self) -> int:
        """CRC-32 of exactly this segment's bytes."""
        return crc32_of(self.data)


def segment_count(total_length: int, segment_size: int | None) -> int:
    """Number of segments a payload of ``total_length`` bytes splits into."""
    if segment_size is None or total_length <= 0:
        return 1
    if segment_size <= 0:
        raise ValueError(f"segment size must be positive, got {segment_size}")
    return -(-total_length // segment_size)


def iter_segments(source: PayloadSource, segment_size: int | None) -> Iterator[Segment]:
    """Slice ``source`` into :class:`Segment` objects of ``segment_size`` bytes.

    ``segment_size=None`` yields a single segment spanning the whole payload
    (the one-shot mode).  An empty payload still yields one empty segment so
    every archive has at least one segment record.
    """
    if segment_size is not None and segment_size <= 0:
        raise ValueError(f"segment size must be positive, got {segment_size}")
    if isinstance(source, (bytes, bytearray, memoryview)):
        # Sized in-memory sources are sliced in place: no pending buffer, no
        # second copy of the payload.
        view = memoryview(source)
        step = len(view) if segment_size is None else segment_size
        index = 0
        offset = 0
        while offset < len(view):
            data = bytes(view[offset:offset + step])
            yield Segment(index=index, offset=offset, data=data)
            index += 1
            offset += len(data)
        if index == 0:
            yield Segment(index=0, offset=0, data=b"")
        return
    if hasattr(source, "read"):
        chunks: Iterable[bytes] = _iter_file_chunks(
            source, segment_size or DEFAULT_SEGMENT_SIZE
        )
    else:
        chunks = source

    index = 0
    offset = 0
    pending = bytearray()
    consumed = 0
    for chunk in chunks:
        pending.extend(chunk)
        if segment_size is None:
            continue
        # Cut segments against a moving start index; the buffer is compacted
        # once per incoming chunk, not once per segment.
        while len(pending) - consumed >= segment_size:
            data = bytes(pending[consumed:consumed + segment_size])
            consumed += segment_size
            yield Segment(index=index, offset=offset, data=data)
            index += 1
            offset += len(data)
        if consumed:
            del pending[:consumed]
            consumed = 0
    if pending or index == 0:
        yield Segment(index=index, offset=offset, data=bytes(pending))


def _iter_file_chunks(stream: BinaryIO, chunk_size: int) -> Iterator[bytes]:
    """Read a binary file object in bounded chunks."""
    while True:
        chunk = stream.read(chunk_size)
        if not chunk:
            return
        yield chunk
