"""Pluggable executors for the streaming pipeline's per-segment work.

Segments are independent, so the pipeline maps a pure function over them.
The executor decides *where* that function runs:

* :class:`SerialExecutor` — inline, in submission order (zero overhead, the
  default, and the reference every parallel backend must match byte for
  byte);
* :class:`ThreadPoolSegmentExecutor` — a ``concurrent.futures`` thread pool;
  the encode hot loops are numpy-heavy and release the GIL for much of their
  time;
* :class:`ProcessPoolSegmentExecutor` — a ``concurrent.futures`` process
  pool for CPU-bound stages (the LZSS compressor is pure Python and scales
  with processes, not threads).

All executors preserve submission order and bound the number of in-flight
segments, so downstream consumers see a deterministic stream and peak memory
stays proportional to ``window``, not to the payload.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from collections import deque
from types import TracebackType
from typing import Callable, Iterable, Iterator, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Names accepted by :func:`get_executor`.
EXECUTOR_NAMES = ("serial", "thread", "process", "auto")


class SegmentExecutor:
    """Base class: ordered, bounded mapping of a function over segments."""

    name = "base"

    #: True when jobs run in the caller's address space (serial/thread):
    #: results hand numpy buffers over by reference, so the pipeline's
    #: per-segment raster batches reach the consumer zero-copy.  Process
    #: pools set this False — results cross a pickle boundary, which is why
    #: a segment's rasters travel as one contiguous (count, H, W) array
    #: (one buffer to serialise) rather than a list of per-frame arrays.
    shares_address_space = True

    def map_ordered(
        self, function: Callable[[ItemT], ResultT], items: Iterable[ItemT]
    ) -> Iterator[ResultT]:
        """Apply ``function`` to every item, yielding results in input order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "SegmentExecutor":
        return self

    def __exit__(
        self,
        exc_type: "type[BaseException] | None",
        exc: "BaseException | None",
        tb: "TracebackType | None",
    ) -> None:
        self.close()


class SerialExecutor(SegmentExecutor):
    """Run every segment inline on the calling thread."""

    name = "serial"

    def map_ordered(
        self, function: Callable[[ItemT], ResultT], items: Iterable[ItemT]
    ) -> Iterator[ResultT]:
        for item in items:
            yield function(item)


class _PoolExecutor(SegmentExecutor):
    """Shared logic for the ``concurrent.futures``-backed executors.

    Keeps at most ``window`` futures in flight (default ``2 * workers``) and
    yields results in submission order, so memory is bounded and output is
    deterministic regardless of worker scheduling.
    """

    def __init__(self, workers: int | None = None, window: int | None = None):
        self.workers = max(1, workers if workers is not None else (os.cpu_count() or 1))
        self.window = max(1, window if window is not None else 2 * self.workers)
        self._pool: Executor | None = None

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    @property
    def pool(self) -> Executor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def map_ordered(
        self, function: Callable[[ItemT], ResultT], items: Iterable[ItemT]
    ) -> Iterator[ResultT]:
        pending: deque[Future[ResultT]] = deque()
        iterator = iter(items)
        exhausted = False
        try:
            while pending or not exhausted:
                while not exhausted and len(pending) < self.window:
                    try:
                        item = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    pending.append(self.pool.submit(function, item))
                if pending:
                    yield pending.popleft().result()
        finally:
            for future in pending:
                future.cancel()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadPoolSegmentExecutor(_PoolExecutor):
    """Bounded-window thread-pool executor."""

    name = "thread"

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessPoolSegmentExecutor(_PoolExecutor):
    """Bounded-window process-pool executor.

    The mapped function and its arguments must be picklable; the pipeline's
    segment jobs are module-level functions over plain data for exactly this
    reason.
    """

    name = "process"
    shares_address_space = False

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.workers)


def parse_executor_spec(spec: str) -> tuple[str, int | None]:
    """Split an executor spec into its base name and worker count.

    ``"thread:4"`` -> ``("thread", 4)``; a bad worker count raises
    :class:`ValueError`.
    """
    name, _, count = str(spec).partition(":")
    try:
        workers = int(count) if count else None
    except ValueError:
        raise ValueError(
            f"bad executor spec {spec!r}: worker count must be an integer"
        ) from None
    if workers is not None and workers < 1:
        raise ValueError(f"bad executor spec {spec!r}: worker count must be >= 1")
    return name, workers


def get_executor(spec: "str | SegmentExecutor | None") -> SegmentExecutor:
    """Resolve an executor from a name, ``"name:workers"`` spec, or instance.

    ``"serial"`` (and ``None``) run inline; ``"thread"`` / ``"process"`` use
    all visible CPUs; ``"thread:4"`` pins the worker count; ``"auto"`` picks
    a process pool when more than one CPU is visible and serial otherwise.
    Names resolve through :data:`repro.registry.executors`, so
    user-registered executor factories work here (and therefore in every
    pipeline/API entry point); unknown names raise
    :class:`~repro.errors.UnknownNameError` with a did-you-mean suggestion.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, SegmentExecutor):
        return spec
    name, workers = parse_executor_spec(spec)
    from repro import registry  # local import: registry registers the built-ins

    return registry.get_executor_factory(name)(workers)
