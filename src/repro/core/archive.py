"""The archived artefact: emblem images, system emblems and the Bootstrap.

A :class:`MicrOlonysArchive` is exactly what gets written to the analog
medium (step 7 of Figure 2a): the data emblems, the system emblems holding
the DBCoder decoder, and the Bootstrap text.  It can be saved to a directory
of PGM images plus plain-text files and loaded back, which is also how the
examples hand artefacts to the restoration side.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ArchiveError
from repro.media.image import read_pgm, write_pgm


@dataclass(frozen=True)
class SegmentRecord:
    """Per-segment metadata: one entry per pipeline segment of the payload.

    Each segment is an *independent* unit of restoration: it owns a
    contiguous byte range of the original payload, a CRC-32 over exactly
    those bytes, and a contiguous run of data emblem frames
    (``emblem_start .. emblem_start + emblem_count - 1`` in recording order)
    that decode to the segment's DBCoder container without touching any
    other segment.  Restoration can therefore decode segments in any order,
    in parallel, and re-decode just the damaged one.
    """

    index: int
    offset: int
    length: int
    crc32: int
    emblem_start: int
    emblem_count: int
    container_bytes: int
    #: Hex SHA-256 of the segment's payload bytes (manifest v2); ``None`` on
    #: records loaded from a v1 manifest, where partial restore falls back to
    #: the CRC-32 check alone.
    sha256: str | None = None

    @property
    def end(self) -> int:
        """One past the last payload byte this segment covers."""
        return self.offset + self.length

    def to_dict(self) -> dict[str, object]:
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, fields: dict[str, object]) -> "SegmentRecord":
        return cls(**fields)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ArchiveManifest:
    """Description of an archive, stored *on the medium* alongside the images.

    Manifest **v4** is versioned and self-describing: it records its
    ``format_version``, embeds the originating
    :class:`~repro.api.ArchiveConfig` as plain data (``config``), and its
    segment records carry per-segment SHA-256 content hashes next to the
    frame offsets/counts and logical byte ranges — everything a cold reader
    needs to locate, decode and verify one segment without touching the
    rest.  It additionally carries the incremental-append lineage:
    ``generation`` counts the append sessions that produced it and
    ``parent`` pins the SHA-256 digest of the manifest it supersedes; the
    segment list is always *cumulative* (monotonically renumbered across
    every generation), so the newest valid manifest fully describes the
    archive.  v4 adds the optional ``volumes`` shard map describing how the
    frames are striped across a K data + M parity volume set (see
    :mod:`repro.store.volumes`); single-volume archives omit it.  The v1
    layout (no ``format_version`` key, no hashes, no embedded config) and
    v2 layout (no lineage) still load through a deprecation shim in
    :mod:`repro.store.manifest`; v3 (no ``volumes``) loads silently.
    """

    profile_name: str
    dbcoder_profile: str
    archive_bytes: int
    archive_crc32: int
    data_emblem_count: int
    system_emblem_count: int
    payload_kind: str = "sql"
    #: Segment size the pipeline used; ``None`` for a one-shot (single
    #: segment spanning the whole payload) archive.
    segment_size: int | None = None
    #: Per-segment metadata, in payload order.  Pre-pipeline manifests load
    #: with an empty tuple and restore through the whole-stream path.
    segments: tuple[SegmentRecord, ...] = ()
    #: On-media layout version; see :data:`repro.store.manifest.MANIFEST_FORMAT_VERSION`.
    format_version: int = 4
    #: The :meth:`repro.api.ArchiveConfig.to_dict` of the writing session,
    #: when the archive was written through the facade; ``None`` otherwise.
    config: "dict[str, object] | None" = None
    #: Incremental-append lineage: how many append sessions preceded this
    #: manifest (0 for a fresh archive) ...
    generation: int = 0
    #: ... and the SHA-256 hex digest of the superseded (parent) manifest's
    #: canonical JSON, ``None`` for generation 0.
    parent: str | None = None
    #: Sharded volume-set map (v4): stripe geometry plus per-shard frame
    #: runs, byte lengths and SHA-256 hashes, written by
    #: :mod:`repro.store.volumes`; ``None`` for single-volume archives.
    volumes: "dict[str, object] | None" = None

    def to_json(self) -> str:
        """Serialise the manifest as JSON text (the current layout).

        ``volumes`` is omitted entirely when absent, so single-volume
        manifests — and v3 manifests round-tripped through the loader —
        serialise (and therefore digest, for the append lineage) exactly as
        pre-v4 libraries produced them.
        """
        fields = {
            key: value for key, value in self.__dict__.items() if key != "segments"
        }
        if fields.get("volumes") is None:
            del fields["volumes"]
        fields["segments"] = [segment.to_dict() for segment in self.segments]
        return json.dumps(fields, indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, fields: dict[str, object]) -> "ArchiveManifest":
        """Build a manifest from a parsed JSON object, any known version.

        v1 objects (no ``format_version``) upgrade through the
        :func:`repro.store.manifest.upgrade_manifest_fields` deprecation
        shim; objects from a *newer* format raise :class:`ArchiveError`.
        """
        from repro.store.manifest import upgrade_manifest_fields  # lazy: store builds on core

        fields = upgrade_manifest_fields(fields)
        segments = tuple(
            SegmentRecord.from_dict(segment) for segment in fields.pop("segments", [])
        )
        return cls(segments=segments, **fields)

    @classmethod
    def from_json(cls, text: str) -> "ArchiveManifest":
        """Parse a manifest from JSON text (v1 and segment-free included)."""
        return cls.from_dict(json.loads(text))


@dataclass
class MicrOlonysArchive:
    """Everything that goes onto the analog medium for one database."""

    manifest: ArchiveManifest
    data_emblem_images: list[np.ndarray]
    system_emblem_images: list[np.ndarray]
    bootstrap_text: str
    notes: list[str] = field(default_factory=list)

    @property
    def total_emblem_count(self) -> int:
        """Total number of emblem frames on the medium."""
        return len(self.data_emblem_images) + len(self.system_emblem_images)

    # ------------------------------------------------------------------ #
    def save(self, directory: str | Path) -> Path:
        """Write the archive to a directory of PGM images and text files."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "manifest.json").write_text(self.manifest.to_json())
        (directory / "bootstrap.txt").write_text(self.bootstrap_text)
        for index, image in enumerate(self.data_emblem_images):
            write_pgm(directory / f"data_emblem_{index:04d}.pgm", image)
        for index, image in enumerate(self.system_emblem_images):
            write_pgm(directory / f"system_emblem_{index:04d}.pgm", image)
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "MicrOlonysArchive":
        """Load an archive previously written by :meth:`save`."""
        directory = Path(directory)
        manifest_path = directory / "manifest.json"
        if not manifest_path.exists():
            raise ArchiveError(f"{directory} does not contain an archive manifest")
        manifest = ArchiveManifest.from_json(manifest_path.read_text())
        bootstrap_text = (directory / "bootstrap.txt").read_text()
        data_images = [
            read_pgm(path) for path in sorted(directory.glob("data_emblem_*.pgm"))
        ]
        system_images = [
            read_pgm(path) for path in sorted(directory.glob("system_emblem_*.pgm"))
        ]
        return cls(
            manifest=manifest,
            data_emblem_images=data_images,
            system_emblem_images=system_images,
            bootstrap_text=bootstrap_text,
        )
