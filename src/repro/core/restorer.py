"""The Micr'Olonys restoration flow (Figure 2b).

Six steps, as a future user would perform them:

1. scan the medium; OCR the Bootstrap text and image-preprocess the emblems —
   here the scanned images arrive from a :class:`~repro.media.channel.
   MediaChannel` and the Bootstrap text from :class:`~repro.bootstrap.ocr.
   SimulatedOCR`;
2. implement the VeRisc emulator from the Bootstrap pseudocode (the
   portability benchmark exercises independent implementations; the library
   ships the reference one);
3. instantiate the archived DynaRisc emulator and the MOCoder decoder;
4. decode the *system emblems* to obtain the DBCoder decoder;
5. decode the *data emblems* with MOCoder, then run the DBCoder decoder on
   the result to obtain the SQL text archive;
6. load the archive into a present-day DBMS (:func:`repro.dbms.db_load`).

``decode_mode`` selects how faithfully step 5 is executed: ``"python"`` uses
the reference decoders, ``"dynarisc"`` runs the archived DBCoder decoder
under the DynaRisc emulator, and ``"nested"`` runs it inside the full
VeRisc-hosted nested emulator — the complete ULE chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import RestorationError
from repro.core.archive import MicrOlonysArchive
from repro.core.profiles import MediaProfile, TEST_PROFILE, get_profile
from repro.bootstrap.document import BootstrapDocument
from repro.dbcoder.dbcoder import DBCoder, Profile
from repro.dbcoder.formats import unpack_container
from repro.dbms.database import Database
from repro.dbms.dump import db_load
from repro.dynarisc.emulator import DynaRiscEmulator
from repro.mocoder.mocoder import DecodeReport, MOCoder
from repro.nested import NestedDynaRiscMachine
from repro.util.crc import crc32_of

#: Valid values for ``decode_mode``.
DECODE_MODES = ("python", "dynarisc", "nested")


@dataclass
class RestorationResult:
    """Everything recovered from a scanned archive."""

    payload: bytes
    database: Database | None
    archive_text: str | None
    data_report: DecodeReport
    system_report: DecodeReport | None
    decode_mode: str
    emulator_steps: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def bit_exact(self) -> bool:
        """True when every integrity check passed (always true on success)."""
        return True


class Restorer:
    """Restore databases from scanned emblem images and the Bootstrap text."""

    def __init__(self, profile: MediaProfile = TEST_PROFILE, decode_mode: str = "python"):
        if decode_mode not in DECODE_MODES:
            raise ValueError(f"decode_mode must be one of {DECODE_MODES}")
        self.profile = profile
        self.decode_mode = decode_mode
        self.mocoder = MOCoder(profile.spec)

    # ------------------------------------------------------------------ #
    def restore(self, archive: MicrOlonysArchive) -> RestorationResult:
        """Restore directly from an archive artefact (no scanner in between)."""
        return self.restore_from_scans(
            data_images=archive.data_emblem_images,
            system_images=archive.system_emblem_images,
            bootstrap_text=archive.bootstrap_text,
            payload_kind=archive.manifest.payload_kind,
        )

    def restore_via_channel(
        self, archive: MicrOlonysArchive, seed: int | None = None
    ) -> RestorationResult:
        """Record the archive on the profile's medium, scan it back, restore."""
        channel = self.profile.channel()
        data_scans = channel.roundtrip(archive.data_emblem_images, seed=seed)
        system_scans = channel.roundtrip(archive.system_emblem_images, seed=seed)
        return self.restore_from_scans(
            data_images=data_scans,
            system_images=system_scans,
            bootstrap_text=archive.bootstrap_text,
            payload_kind=archive.manifest.payload_kind,
        )

    # ------------------------------------------------------------------ #
    def restore_from_scans(
        self,
        data_images: list[np.ndarray],
        system_images: list[np.ndarray] | None = None,
        bootstrap_text: str | None = None,
        payload_kind: str = "sql",
    ) -> RestorationResult:
        """Run restoration steps 1-6 on scanned images.

        Raises
        ------
        RestorationError
            If the recovered stream fails any of its integrity checks.
        """
        notes: list[str] = []
        emulator_steps = 0

        # Steps 2-3: the Bootstrap provides the emulator and MOCoder decoder.
        if bootstrap_text is not None:
            bootstrap = BootstrapDocument.parse(bootstrap_text)
            notes.append(
                f"bootstrap verified: {len(bootstrap.sections)} sections, "
                f"{bootstrap.letter_count} letters, ~{bootstrap.page_count} pages"
            )

        # Step 4: recover the archived DBCoder decoder from the system emblems.
        system_report = None
        decoder_code: bytes | None = None
        if system_images:
            decoder_code, system_report = self.mocoder.decode(system_images)
            notes.append(
                f"system emblems decoded: {system_report.emblems_decoded} of "
                f"{system_report.emblems_seen} scans, "
                f"{system_report.rs_corrections} symbol corrections"
            )

        # Step 5a: recover the DBCoder container from the data emblems.
        container, data_report = self.mocoder.decode(data_images)

        # Step 5b: run the database-layout decoder.
        header, payload_stream = unpack_container(container)
        profile = Profile(header.profile_id)
        if self.decode_mode == "python" or decoder_code is None:
            payload = DBCoder.decompress_payload(payload_stream, profile)
            if self.decode_mode != "python":
                notes.append(
                    "no system emblems were provided; fell back to the reference decoder"
                )
        else:
            if profile != Profile.PORTABLE:
                raise RestorationError(
                    f"the archived DynaRisc decoder handles the PORTABLE profile; "
                    f"this archive used {profile.name}"
                )
            payload, emulator_steps = self._run_archived_decoder(decoder_code, payload_stream)
            notes.append(
                f"database layout decoded under the {self.decode_mode} emulator "
                f"({emulator_steps} emulated steps)"
            )
        if len(payload) != header.original_length or crc32_of(payload) != header.original_crc32:
            raise RestorationError(
                "restored stream does not match the archived length/CRC; "
                "the restoration is not bit-for-bit"
            )

        # Step 6: load the SQL archive into a present-day database.
        database = None
        archive_text = None
        if payload_kind == "sql":
            archive_text = payload.decode("utf-8")
            database = db_load(archive_text)

        return RestorationResult(
            payload=payload,
            database=database,
            archive_text=archive_text,
            data_report=data_report,
            system_report=system_report,
            decode_mode=self.decode_mode,
            emulator_steps=emulator_steps,
            notes=notes,
        )

    # ------------------------------------------------------------------ #
    def _run_archived_decoder(self, decoder_code: bytes, stream: bytes) -> tuple[bytes, int]:
        """Execute the recovered DBCoder decoder under the selected emulator."""
        if self.decode_mode == "dynarisc":
            emulator = DynaRiscEmulator(decoder_code, input_data=stream, step_limit=2_000_000_000)
            payload = emulator.run(0)
            return payload, emulator.steps
        nested = NestedDynaRiscMachine(decoder_code, input_data=stream, entry=0,
                                       step_limit=2_000_000_000)
        payload = nested.run()
        return payload, nested.steps


def restore_archive_directory(directory: str, profile_name: str, decode_mode: str = "python") -> RestorationResult:
    """Convenience wrapper: load a saved archive directory and restore it."""
    archive = MicrOlonysArchive.load(directory)
    restorer = Restorer(get_profile(profile_name), decode_mode=decode_mode)
    return restorer.restore(archive)
