"""The Micr'Olonys restoration flow (Figure 2b).

Six steps, as a future user would perform them:

1. scan the medium; OCR the Bootstrap text and image-preprocess the emblems —
   here the scanned images arrive from a :class:`~repro.media.channel.
   MediaChannel` and the Bootstrap text from :class:`~repro.bootstrap.ocr.
   SimulatedOCR`;
2. implement the VeRisc emulator from the Bootstrap pseudocode (the
   portability benchmark exercises independent implementations; the library
   ships the reference one);
3. instantiate the archived DynaRisc emulator and the MOCoder decoder;
4. decode the *system emblems* to obtain the DBCoder decoder;
5. decode the *data emblems* with MOCoder, then run the DBCoder decoder on
   the result to obtain the SQL text archive;
6. load the archive into a present-day DBMS (:func:`repro.dbms.db_load`).

``decode_mode`` selects how faithfully step 5 is executed: ``"python"`` uses
the reference decoders, ``"dynarisc"`` runs the archived DBCoder decoder
under the DynaRisc emulator, and ``"nested"`` runs it inside the full
VeRisc-hosted nested emulator — the complete ULE chain.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only (store builds on core)
    from repro.store import ArchiveSource

import numpy as np

from repro.errors import RestorationError
from repro.core.archive import ArchiveManifest, MicrOlonysArchive
from repro.core.profiles import MediaProfile, TEST_PROFILE, get_profile
from repro.bootstrap.document import BootstrapDocument
from repro.dbcoder.dbcoder import DBCoder, Profile
from repro.dbcoder.formats import unpack_container
from repro.dbms.database import Database
from repro.dbms.dump import db_load
from repro.dynarisc.emulator import DynaRiscEmulator
from repro.mocoder.mocoder import DecodeReport, MOCoder
from repro.nested import NestedDynaRiscMachine
from repro.pipeline.pipeline import (
    ChannelSpec,
    RestorePipeline,
    _simulate_channel,
    merge_reports,
    resolve_decode_executor,
)
from repro.util.crc import crc32_of

#: Valid values for ``decode_mode``.
DECODE_MODES = ("python", "dynarisc", "nested")


@dataclass
class GenerationInfo:
    """One manifest generation found on a store target during verify."""

    generation: int
    record_name: str
    #: ``"active"`` (the superseding manifest), ``"superseded"`` (a valid
    #: older generation kept for lineage/fallback) or ``"damaged"``.
    status: str
    segments: int = 0
    archive_bytes: int = 0
    digest: str | None = None
    parent: str | None = None

    def to_dict(self) -> dict[str, object]:
        return dict(self.__dict__)


@dataclass
class VerifyReport:
    """What :meth:`RestoreEngine.verify` found on one archive target.

    ``errors`` are integrity violations (a missing/corrupt frame, a failed
    segment hash, a broken lineage); ``warnings`` are survivable oddities;
    ``orphaned`` lists records the superseding manifest does not reference
    (typically the complete frames of a torn append) and ``superseded`` the
    older generations' manifest records, which are *expected* residents of
    an appendable archive.
    """

    deep: bool = True
    generations: list[GenerationInfo] = field(default_factory=list)
    segments_checked: int = 0
    frames_checked: int = 0
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    orphaned: list[str] = field(default_factory=list)
    superseded: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no integrity violation was found."""
        return not self.errors

    @property
    def active_generation(self) -> int | None:
        """The superseding manifest's generation, when one was readable."""
        for info in self.generations:
            if info.status == "active":
                return info.generation
        return None

    def to_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "deep": self.deep,
            "active_generation": self.active_generation,
            "generations": [info.to_dict() for info in self.generations],
            "segments_checked": self.segments_checked,
            "frames_checked": self.frames_checked,
            "errors": list(self.errors),
            "warnings": list(self.warnings),
            "orphaned": list(self.orphaned),
            "superseded": list(self.superseded),
        }


@dataclass
class RestorationResult:
    """Everything recovered from a scanned archive."""

    payload: bytes
    database: Database | None
    archive_text: str | None
    data_report: DecodeReport
    system_report: DecodeReport | None
    decode_mode: str
    emulator_steps: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def bit_exact(self) -> bool:
        """True when every integrity check passed (always true on success)."""
        return True


class RestoreEngine:
    """Restore databases from scanned emblem images and the Bootstrap text.

    This is the engine behind :func:`repro.api.open_restore` and
    :func:`repro.api.run_end_to_end`; the historical :class:`Restorer` name
    remains as a thin deprecation shim over it.

    Parameters
    ----------
    profile:
        Media profile whose emblem spec the scans were produced with.
    decode_mode:
        ``"python"`` / ``"dynarisc"`` / ``"nested"``; see the module docs.
    executor:
        Pipeline executor used for *segmented* archives — each segment's
        MOCoder decoding is independent, so ``"process"`` decodes segments
        in parallel — and for sub-segment chunk decoding when
        ``decode_parallelism`` > 1.
    decode_parallelism:
        Sub-segment parallelism: each segment's (or a one-shot archive's)
        emblem-image decoding is split into up to this many contiguous
        chunks mapped through ``executor``, so a single huge segment no
        longer serialises restore.  ``1`` keeps the historical
        one-job-per-segment behaviour.  Chunks never shrink below
        ``repro.mocoder.mocoder.MIN_DECODE_CHUNK`` images: the per-image
        decode is itself batch-vectorised, so splitting a small stream
        costs more in executor round-trips than it overlaps (the measured
        ``decode_parallelism=2`` slowdown on benchmark smoke payloads),
        and such streams collapse back to the serial path.
    """

    def __init__(
        self,
        profile: MediaProfile = TEST_PROFILE,
        decode_mode: str = "python",
        executor: str = "serial",
        decode_parallelism: int = 1,
    ):
        if decode_mode not in DECODE_MODES:
            raise ValueError(f"decode_mode must be one of {DECODE_MODES}")
        self.profile = profile
        self.decode_mode = decode_mode
        self.executor = executor
        self.decode_parallelism = max(1, int(decode_parallelism))
        self.mocoder = MOCoder(profile.spec)

    # ------------------------------------------------------------------ #
    def restore(self, archive: MicrOlonysArchive) -> RestorationResult:
        """Restore directly from an archive artefact (no scanner in between)."""
        return self.restore_from_scans(
            data_images=archive.data_emblem_images,
            system_images=archive.system_emblem_images,
            bootstrap_text=archive.bootstrap_text,
            payload_kind=archive.manifest.payload_kind,
            manifest=archive.manifest,
        )

    def restore_via_channel(
        self,
        archive: MicrOlonysArchive,
        seed: int | None = None,
        streaming: bool = True,
        distortion: str | None = None,
    ) -> RestorationResult:
        """Record the archive on the profile's medium, scan it back, restore.

        The default (``streaming=True``) runs step 7 the same way encode
        streams: each segment's frames are recorded, scanned (with
        batching-invariant per-frame seeding) and decoded as one executor
        job, so channel simulation overlaps decoding and parallelises with
        the configured executor instead of staging a whole-archive
        record/scan pass.  ``distortion`` optionally names a registered
        distortion profile override for the simulated scanner.

        ``streaming=False`` is the deprecated whole-frame path: one RNG
        threaded serially across every frame of the archive.  It restores
        the same bytes, scan pixels differ.
        """
        if not streaming:
            warnings.warn(
                "restore_via_channel(streaming=False) re-runs the deprecated "
                "whole-frame record/scan pass; the streaming per-batch channel "
                "path is the default and parallelises with the executor",
                DeprecationWarning,
                stacklevel=2,
            )
        channel_spec = self._channel_spec(seed, distortion) if streaming else None
        if channel_spec is None:
            # Whole-frame pass: explicit opt-out, or a profile whose channel
            # cannot be faithfully rebuilt by name inside executor workers
            # (unregistered, or customised beyond what ``distortion`` names).
            channel = self.profile.channel()
            data_scans = channel.roundtrip(archive.data_emblem_images, seed=seed)
            system_scans = channel.roundtrip(archive.system_emblem_images, seed=seed)
            return self.restore_from_scans(
                data_images=data_scans,
                system_images=system_scans,
                bootstrap_text=archive.bootstrap_text,
                payload_kind=archive.manifest.payload_kind,
                manifest=archive.manifest,
            )
        return self._restore(
            data_images=archive.data_emblem_images,
            system_images=archive.system_emblem_images,
            bootstrap_text=archive.bootstrap_text,
            payload_kind=archive.manifest.payload_kind,
            manifest=archive.manifest,
            channel=channel_spec,
        )

    def _channel_spec(self, seed: int | None, distortion: str | None) -> ChannelSpec | None:
        """A picklable spec for this engine's channel, or ``None`` when the
        profile cannot be faithfully rebuilt by name inside workers.

        That is the case when the profile is not registered at all, or when
        it carries a customised channel factory (e.g. a distortion override
        baked in by ``ArchiveConfig.media_profile()``) that ``distortion``
        does not name — streaming with the registry's default channel would
        silently simulate a different medium, so those fall back to the
        whole-frame pass, which uses ``profile.channel()`` directly.
        """
        from repro import registry  # local import: registry registers the built-ins

        try:
            registered = registry.get_media(self.profile.name)
        except KeyError:
            return None
        if distortion is None and registered.channel_factory is not self.profile.channel_factory:
            return None
        return ChannelSpec(media=registered.name, distortion=distortion, seed=seed)

    # ------------------------------------------------------------------ #
    def restore_from_scans(
        self,
        data_images: list[np.ndarray],
        system_images: list[np.ndarray] | None = None,
        bootstrap_text: str | None = None,
        payload_kind: str = "sql",
        manifest: ArchiveManifest | None = None,
    ) -> RestorationResult:
        """Run restoration steps 1-6 on scanned images.

        When a ``manifest`` with more than one segment record is provided,
        step 5 runs per segment (independently, optionally in parallel via
        the configured ``executor``); otherwise the whole data stream is
        decoded at once (still chunk-parallel when ``decode_parallelism``
        > 1), exactly as before the pipeline existed.

        Raises
        ------
        RestorationError
            If the recovered stream fails any of its integrity checks.
        """
        return self._restore(
            data_images, system_images, bootstrap_text, payload_kind, manifest, None
        )

    def _restore(
        self,
        data_images: list[np.ndarray],
        system_images: list[np.ndarray] | None,
        bootstrap_text: str | None,
        payload_kind: str,
        manifest: ArchiveManifest | None,
        channel: ChannelSpec | None,
    ) -> RestorationResult:
        """Steps 1-6, optionally simulating the analog hop along the way.

        With a :class:`~repro.pipeline.ChannelSpec`, the incoming images are
        the *recorded-side* rasters: the system stream is recorded/scanned
        here (lane 1 of the per-frame seed space) and the data stream is
        recorded/scanned per batch inside the decode jobs (lane 0).
        """
        notes: list[str] = []
        emulator_steps = 0

        # Steps 2-3: the Bootstrap provides the emulator and MOCoder decoder.
        if bootstrap_text is not None:
            bootstrap = BootstrapDocument.parse(bootstrap_text)
            notes.append(
                f"bootstrap verified: {len(bootstrap.sections)} sections, "
                f"{bootstrap.letter_count} letters, ~{bootstrap.page_count} pages"
            )

        if channel is not None and system_images:
            # The system stream is one short whole stream; simulate its hop
            # inline — through the same ChannelSpec-built channel as the
            # data jobs — on a seed lane disjoint from every data frame's.
            system_images = _simulate_channel(system_images, channel, 0, lane=1)

        # Step 4: recover the archived DBCoder decoder from the system
        # emblems.  ``decode_parallelism`` applies here exactly as it does to
        # the data stream: the per-image RS-heavy decoding splits into chunks
        # mapped through the configured executor (byte-identical to serial).
        system_report = None
        decoder_code: bytes | None = None
        if system_images:
            decoder_code, system_report = self.mocoder.decode(
                system_images,
                parallelism=self.decode_parallelism,
                executor=resolve_decode_executor(self.executor, self.decode_parallelism),
            )
            notes.append(
                f"system emblems decoded: {system_report.emblems_decoded} of "
                f"{system_report.emblems_seen} scans, "
                f"{system_report.rs_corrections} symbol corrections"
            )

        # Step 5: recover the payload — per segment when the manifest
        # describes a segmented archive, as one stream otherwise.  The
        # manifest names the compression codec; user-registered codecs only
        # decode under the reference (python) decoders.
        codec_name = manifest.dbcoder_profile if manifest is not None else None
        if codec_name is not None and self.decode_mode != "python":
            from repro import registry

            if not registry.get_codec(codec_name).is_builtin:
                raise RestorationError(
                    f"codec {codec_name!r} is user-registered; the archived "
                    "DynaRisc decoder only handles the PORTABLE profile — "
                    "restore with decode_mode='python'"
                )
        if manifest is not None and len(manifest.segments) > 1:
            payload, data_report, emulator_steps = self._restore_segmented(
                manifest, data_images, decoder_code, notes, channel=channel
            )
        else:
            if channel is not None:
                # One-shot archive: a single batch, scanned with the same
                # per-frame seed derivation the segmented jobs use.
                data_images = _simulate_channel(data_images, channel, 0)
            payload, data_report, emulator_steps = self._restore_whole_stream(
                data_images, decoder_code, notes, codec_name=codec_name
            )

        # Step 6: load the SQL archive into a present-day database.
        database = None
        archive_text = None
        if payload_kind == "sql":
            archive_text = payload.decode("utf-8")
            database = db_load(archive_text)

        return RestorationResult(
            payload=payload,
            database=database,
            archive_text=archive_text,
            data_report=data_report,
            system_report=system_report,
            decode_mode=self.decode_mode,
            emulator_steps=emulator_steps,
            notes=notes,
        )

    # ------------------------------------------------------------------ #
    def _restore_whole_stream(
        self,
        data_images: list[np.ndarray],
        decoder_code: bytes | None,
        notes: list[str],
        codec_name: str | None = None,
    ) -> tuple[bytes, DecodeReport, int]:
        """Steps 5a-5b over the whole data stream (one-shot archives).

        ``decode_parallelism`` > 1 splits the per-image emblem decoding into
        chunks mapped through the configured executor — the one-shot (single
        huge segment) case the sub-segment parallelism exists for.
        """
        container, data_report = self.mocoder.decode(
            data_images,
            parallelism=self.decode_parallelism,
            executor=resolve_decode_executor(self.executor, self.decode_parallelism),
        )
        if codec_name is not None:
            from repro import registry

            codec = registry.get_codec(codec_name)
            if not codec.is_builtin:
                # User codecs own their container; decode verifies length/CRC.
                return codec.decode(container), data_report, 0
        header, payload_stream = unpack_container(container)
        try:
            profile = Profile(header.profile_id)
        except ValueError as exc:
            raise RestorationError(
                f"container names DBCoder profile id {header.profile_id}, which is "
                "not a built-in profile; archives made with a user-registered codec "
                "must be restored with their manifest (which names the codec)"
            ) from exc
        emulator_steps = 0
        if self.decode_mode == "python" or decoder_code is None:
            payload = DBCoder.decompress_payload(payload_stream, profile)
            if self.decode_mode != "python":
                notes.append(
                    "no system emblems were provided; fell back to the reference decoder"
                )
        else:
            self._require_portable(profile)
            payload, emulator_steps = self._run_archived_decoder(decoder_code, payload_stream)
            notes.append(
                f"database layout decoded under the {self.decode_mode} emulator "
                f"({emulator_steps} emulated steps)"
            )
        if len(payload) != header.original_length or crc32_of(payload) != header.original_crc32:
            raise RestorationError(
                "restored stream does not match the archived length/CRC; "
                "the restoration is not bit-for-bit"
            )
        return payload, data_report, emulator_steps

    def _restore_segmented(
        self,
        manifest: ArchiveManifest,
        data_images: list[np.ndarray],
        decoder_code: bytes | None,
        notes: list[str],
        channel: ChannelSpec | None = None,
    ) -> tuple[bytes, DecodeReport, int]:
        """Steps 5a-5b per segment, via the restore pipeline.

        With a ``channel``, each decode job records/scans its segment's
        frames through the simulated medium first (streaming channel
        simulation).
        """
        pipeline = RestorePipeline(
            self.profile,
            executor=self.executor,
            channel=channel,
            decode_parallelism=self.decode_parallelism,
        )
        emulator_steps = 0
        if self.decode_mode == "python" or decoder_code is None:
            if self.decode_mode != "python":
                notes.append(
                    "no system emblems were provided; fell back to the reference decoder"
                )
            payload, data_report, records = pipeline.restore_payload(manifest, data_images)
            notes.append(
                f"{len(records)} segments decoded independently "
                f"(executor: {self.executor})"
            )
            if channel is not None:
                notes.append(
                    f"channel simulated per batch over {channel.media} "
                    f"(streaming record/scan, seed={channel.seed})"
                )
            return payload, data_report, emulator_steps

        # Emulated modes: the pipeline decodes each segment down to its
        # DBCoder container; the archived decoder then runs per segment.
        parts: list[bytes] = []
        reports: list[DecodeReport] = []
        for record, container, report in pipeline.iter_decode_containers(
            manifest, data_images
        ):
            header, payload_stream = unpack_container(container)
            self._require_portable(Profile(header.profile_id))
            part, steps = self._run_archived_decoder(decoder_code, payload_stream)
            emulator_steps += steps
            if len(part) != header.original_length or crc32_of(part) != header.original_crc32:
                raise RestorationError(
                    f"segment {record.index}: restored stream does not match the "
                    "archived length/CRC; the restoration is not bit-for-bit"
                )
            parts.append(part)
            reports.append(report)
        payload = b"".join(parts)
        if len(payload) != manifest.archive_bytes or crc32_of(payload) != manifest.archive_crc32:
            raise RestorationError(
                "reassembled payload does not match the manifest's archive "
                "length/CRC; the restoration is not bit-for-bit"
            )
        notes.append(
            f"{len(reports)} segments decoded under the {self.decode_mode} emulator "
            f"({emulator_steps} emulated steps)"
        )
        return payload, merge_reports(reports), emulator_steps

    # ------------------------------------------------------------------ #
    # fsck: multi-generation archive verification
    # ------------------------------------------------------------------ #
    def verify(self, source: "ArchiveSource", *, deep: bool = True) -> VerifyReport:
        """Integrity-check an archive on its store target (fsck).

        Walks **every manifest generation** on the target: each one must
        parse, carry the generation its record name claims, pin its parent's
        digest, and extend its parent's segment list; the superseding
        (newest valid) manifest must additionally be internally monotone —
        contiguous segment indices, byte offsets and frame runs summing to
        its archive totals.  Records the superseding manifest does not
        reference are reported as ``orphaned`` (the footprint of a torn
        append), older manifests as ``superseded``.

        With ``deep=True`` (the default) every segment is then re-decoded
        *independently* — fetched, MOCoder-decoded and re-checked against
        its manifest CRC-32/SHA-256 through the engine's executor — and the
        system-emblem stream is decoded too, all without ever assembling the
        full payload or loading a database; ``deep=False`` stops at reading
        and parsing every referenced frame raster.

        Sharded volume sets (:mod:`repro.store.volumes`) additionally get a
        **cross-shard parity audit**: unavailable member volumes are
        reported as errors, and with ``deep=True`` every shard and parity
        record is re-hashed and each stripe's parity recomputed from its
        data shards.

        Verification never raises on damage — every finding lands in the
        returned :class:`VerifyReport` (``report.ok`` summarises) — only on
        a target that is not an archive at all.
        """
        from repro.errors import ReproError
        from repro.store import (  # lazy: store builds on core
            BOOTSTRAP_NAME,
            frame_record_name,
            manifest_digest,
            manifest_generation_of,
        )

        report = VerifyReport(deep=deep)
        names = source.names()

        # --- every generation's manifest: parse + lineage ---------------- #
        manifests: dict[int, tuple[str, ArchiveManifest]] = {}
        candidates = sorted(
            (generation, name)
            for name in names
            if (generation := manifest_generation_of(name)) is not None
        )
        for generation, name in candidates:
            try:
                with warnings.catch_warnings(record=True) as caught:
                    warnings.simplefilter("always", DeprecationWarning)
                    manifest = ArchiveManifest.from_json(source.get_text(name))
                for entry in caught:
                    report.warnings.append(f"{name}: {entry.message}")
            except (ReproError, ValueError) as exc:
                report.errors.append(f"{name}: unreadable manifest: {exc}")
                report.generations.append(GenerationInfo(generation, name, "damaged"))
                continue
            if manifest.generation != generation:
                report.errors.append(
                    f"{name}: record name claims generation {generation} but the "
                    f"manifest says {manifest.generation}"
                )
            manifests[generation] = (name, manifest)
        if not manifests:
            report.errors.append("no readable manifest on the target")
            return report
        active_generation = max(manifests)
        for generation in sorted(manifests):
            name, manifest = manifests[generation]
            status = "active" if generation == active_generation else "superseded"
            report.generations.append(
                GenerationInfo(
                    generation=generation,
                    record_name=name,
                    status=status,
                    segments=len(manifest.segments),
                    archive_bytes=manifest.archive_bytes,
                    digest=manifest_digest(manifest),
                    parent=manifest.parent,
                )
            )
            if status == "superseded":
                report.superseded.append(name)
            if generation == 0:
                if manifest.parent is not None:
                    report.errors.append(
                        f"{name}: generation 0 must not carry a parent digest"
                    )
                continue
            parent_entry = manifests.get(generation - 1)
            if parent_entry is None:
                report.errors.append(
                    f"{name}: parent generation {generation - 1} manifest is "
                    "missing or unreadable"
                )
                continue
            parent_name, parent_manifest = parent_entry
            if manifest.parent != manifest_digest(parent_manifest):
                report.errors.append(
                    f"{name}: parent digest does not match {parent_name}"
                )
            if manifest.segments[: len(parent_manifest.segments)] != parent_manifest.segments:
                report.errors.append(
                    f"{name}: segment list does not extend {parent_name}'s"
                )

        # --- the superseding manifest must be internally monotone --------- #
        active_name, active = manifests[active_generation]
        offset = frame = 0
        for position, record in enumerate(active.segments):
            if record.index != position:
                report.errors.append(
                    f"{active_name}: segment {position} carries index {record.index}"
                )
            if record.offset != offset or record.emblem_start != frame:
                report.errors.append(
                    f"{active_name}: segment {record.index} breaks byte/frame "
                    "contiguity"
                )
            offset += record.length
            frame += record.emblem_count
        if active.segments and (
            active.archive_bytes != offset or active.data_emblem_count != frame
        ):
            report.errors.append(
                f"{active_name}: segment totals ({offset} bytes, {frame} frames) "
                f"do not match the manifest's archive totals "
                f"({active.archive_bytes} bytes, {active.data_emblem_count} frames)"
            )

        # --- orphaned records: present but unreferenced ------------------- #
        expected = {name for _, name in candidates}
        expected.update({BOOTSTRAP_NAME, "config.json"})
        expected.update(
            frame_record_name("data", index) for index in range(active.data_emblem_count)
        )
        expected.update(
            frame_record_name("system", index)
            for index in range(active.system_emblem_count)
        )
        # Orphans (present but unreferenced — the footprint of a torn
        # append) are reported once, through this dedicated field.
        report.orphaned = sorted(set(names) - expected)
        try:
            source.get_text(BOOTSTRAP_NAME)
        except ReproError as exc:
            report.errors.append(f"{BOOTSTRAP_NAME}: {exc}")

        # --- cross-shard parity audit (sharded volume sets) --------------- #
        # A volume-set source exposes parity_audit(); single-volume sources
        # don't, and skip it.  Missing member volumes are *errors* even
        # though degraded reads still succeed: the archive is damaged and
        # has lost (some of) its erasure margin.
        parity_audit = getattr(source, "parity_audit", None)
        if parity_audit is not None:
            try:
                audit_errors, audit_warnings = parity_audit(deep=deep)
            except ReproError as exc:
                report.errors.append(f"volume parity audit: {exc}")
            else:
                report.errors.extend(f"volume set: {entry}" for entry in audit_errors)
                report.warnings.extend(f"volume set: {entry}" for entry in audit_warnings)

        # --- frames: presence/parse (shallow) or full re-decode (deep) ---- #
        if not deep:
            for kind, count in (
                ("data", active.data_emblem_count),
                ("system", active.system_emblem_count),
            ):
                for index in range(count):
                    try:
                        source.get_frame(kind, index)
                        report.frames_checked += 1
                    except ReproError as exc:
                        report.errors.append(f"{kind} frame {index}: {exc}")
            return report

        pipeline = RestorePipeline(
            self.profile,
            executor=self.executor,
            decode_parallelism=self.decode_parallelism,
        )

        def frames_for(record: SegmentRecord) -> list[np.ndarray]:
            return source.get_frames("data", record.emblem_start, record.emblem_count)

        for record in active.segments:
            try:
                for _ in pipeline.iter_decode_selected(active, [record], frames_for):
                    pass
                report.segments_checked += 1
                report.frames_checked += record.emblem_count
            except ReproError as exc:
                report.errors.append(f"segment {record.index}: {exc}")
        if active.system_emblem_count:
            try:
                system_images = source.get_frames("system", 0, active.system_emblem_count)
                self.mocoder.decode(
                    system_images,
                    parallelism=self.decode_parallelism,
                    executor=resolve_decode_executor(self.executor, self.decode_parallelism),
                )
                report.frames_checked += active.system_emblem_count
            except ReproError as exc:
                report.errors.append(f"system emblems: {exc}")
        return report

    def _require_portable(self, profile: Profile) -> None:
        if profile != Profile.PORTABLE:
            raise RestorationError(
                f"the archived DynaRisc decoder handles the PORTABLE profile; "
                f"this archive used {profile.name}"
            )

    # ------------------------------------------------------------------ #
    def _run_archived_decoder(self, decoder_code: bytes, stream: bytes) -> tuple[bytes, int]:
        """Execute the recovered DBCoder decoder under the selected emulator."""
        if self.decode_mode == "dynarisc":
            emulator = DynaRiscEmulator(decoder_code, input_data=stream, step_limit=2_000_000_000)
            payload = emulator.run(0)
            return payload, emulator.steps
        nested = NestedDynaRiscMachine(decoder_code, input_data=stream, entry=0,
                                       step_limit=2_000_000_000)
        payload = nested.run()
        return payload, nested.steps


class Restorer(RestoreEngine):
    """Deprecated alias of :class:`RestoreEngine`.

    Use :func:`repro.api.open_restore` (or :class:`RestoreEngine` directly
    for engine-level access); this shim stays importable and round-trips
    exactly as before, but warns.
    """

    def __init__(self, *args: object, **kwargs: object) -> None:
        warnings.warn(
            "repro.core.Restorer is deprecated; use repro.api.open_restore() "
            "(or repro.api.run_end_to_end) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)


def restore_archive_directory(directory: str, profile_name: str, decode_mode: str = "python") -> RestorationResult:
    """Convenience wrapper: load a saved archive and restore it.

    ``directory`` may be any :mod:`repro.store` target — a saved directory,
    a single-file container archive, or a ``mem:`` key.
    """
    from repro.store import load_archive  # lazy: store builds on core

    archive = load_archive(directory)
    restorer = RestoreEngine(get_profile(profile_name), decode_mode=decode_mode)
    return restorer.restore(archive)
