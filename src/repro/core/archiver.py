"""The Micr'Olonys archival flow (Figure 2a).

Seven steps, mapped onto the substrates of this library:

1. existing database tools extract the data — :func:`repro.dbms.db_dump`;
2. DBCoder compresses the textual archive into a compact binary form;
3. MOCoder turns the binary stream into *data emblems*;
4. the decoding halves of DBCoder and MOCoder exist as DynaRisc programs
   (:mod:`repro.dynarisc.programs`);
5. the DBCoder decoder's instruction stream is itself passed through MOCoder,
   producing the *system emblems*;
6. the MOCoder decoder and the DynaRisc emulator (a VeRisc program,
   :mod:`repro.nested`) are letter-encoded into the Bootstrap document;
7. emblems and Bootstrap are written to the analog medium
   (:mod:`repro.media`).

The :class:`Archiver` performs steps 1-6 and hands back a
:class:`~repro.core.archive.MicrOlonysArchive`; step 7 is the
channel's ``record``/``scan`` pair, kept separate so benchmarks can reuse one
archive across many scanner conditions.
"""

from __future__ import annotations

from repro.core.archive import ArchiveManifest, MicrOlonysArchive
from repro.core.profiles import MediaProfile, TEST_PROFILE
from repro.bootstrap.document import build_bootstrap
from repro.dbcoder.dbcoder import DBCoder, Profile
from repro.dbms.database import Database
from repro.dbms.dump import db_dump
from repro.dynarisc.programs import get_program
from repro.mocoder.emblem import EmblemKind
from repro.mocoder.mocoder import MOCoder
from repro.nested import dynarisc_emulator_image
from repro.util.crc import crc32_of


class Archiver:
    """Archive databases (or raw byte payloads) onto analog media.

    Parameters
    ----------
    profile:
        Media profile selecting the emblem geometry (default: the small test
        profile; use :data:`repro.core.PAPER_PROFILE` etc. for real media).
    dbcoder_profile:
        DBCoder compression profile.  ``PORTABLE`` keeps the archived stream
        decodable by the archived DynaRisc decoder; ``DENSE`` adds arithmetic
        coding for maximum density.
    outer_code:
        Whether MOCoder adds the 17+3 inter-emblem parity groups.
    """

    def __init__(
        self,
        profile: MediaProfile = TEST_PROFILE,
        dbcoder_profile: Profile = Profile.PORTABLE,
        outer_code: bool = True,
    ):
        self.profile = profile
        self.dbcoder = DBCoder(dbcoder_profile)
        self.mocoder = MOCoder(profile.spec, outer_code=outer_code)
        # System emblems never need an outer code of their own in the paper's
        # description, but losing the decoder would be fatal, so they get one
        # too whenever the data emblems do.
        self._system_mocoder = MOCoder(profile.spec, outer_code=outer_code)

    # ------------------------------------------------------------------ #
    def archive_database(self, database: Database) -> MicrOlonysArchive:
        """Run steps 1-6 for a database; returns the archive artefact."""
        archive_text = db_dump(database)
        return self.archive_text(archive_text, payload_kind="sql")

    def archive_text(self, archive_text: str, payload_kind: str = "sql") -> MicrOlonysArchive:
        """Archive an already-extracted textual archive."""
        return self.archive_bytes(archive_text.encode("utf-8"), payload_kind=payload_kind)

    def archive_bytes(self, payload: bytes, payload_kind: str = "binary") -> MicrOlonysArchive:
        """Archive an arbitrary byte payload (used for the film experiments)."""
        # Step 2: database layout encoding.
        container = self.dbcoder.encode(payload)
        # Step 3: media layout encoding of the data.
        data_stream = self.mocoder.encode(container, kind=EmblemKind.DATA)
        # Steps 4-5: the DBCoder decoder (a DynaRisc program) becomes system emblems.
        dbcoder_decoder = get_program("lzss_decoder")
        system_stream = self._system_mocoder.encode(
            dbcoder_decoder.code, kind=EmblemKind.SYSTEM
        )
        # Step 6: the DynaRisc emulator (VeRisc) and the MOCoder cell decoder
        # (DynaRisc) become the Bootstrap letter pages.
        emulator = dynarisc_emulator_image()
        mocoder_decoder = get_program("manchester_unpack")
        bootstrap = build_bootstrap(
            dynarisc_emulator_image=emulator.to_bytes(),
            mocoder_decoder_image=mocoder_decoder.code,
            dynarisc_entry=emulator.entry,
            mocoder_entry=mocoder_decoder.entry,
        )
        manifest = ArchiveManifest(
            profile_name=self.profile.name,
            dbcoder_profile=self.dbcoder.profile.name,
            archive_bytes=len(payload),
            archive_crc32=crc32_of(payload),
            data_emblem_count=len(data_stream.emblems),
            system_emblem_count=len(system_stream.emblems),
            payload_kind=payload_kind,
        )
        return MicrOlonysArchive(
            manifest=manifest,
            data_emblem_images=data_stream.images(),
            system_emblem_images=system_stream.images(),
            bootstrap_text=bootstrap.render(),
        )

    # ------------------------------------------------------------------ #
    def estimate_emblems(self, payload_bytes: int) -> int:
        """Estimate the number of data emblems for a payload of ``payload_bytes``.

        The DBCoder container adds a fixed 20-byte header; compression is not
        estimated (use :meth:`archive_bytes` for exact numbers).
        """
        return self.mocoder.total_emblems_needed(payload_bytes + 20)
