"""The Micr'Olonys archival flow (Figure 2a).

Seven steps, mapped onto the substrates of this library:

1. existing database tools extract the data — :func:`repro.dbms.db_dump`;
2. DBCoder compresses the textual archive into a compact binary form;
3. MOCoder turns the binary stream into *data emblems*;
4. the decoding halves of DBCoder and MOCoder exist as DynaRisc programs
   (:mod:`repro.dynarisc.programs`);
5. the DBCoder decoder's instruction stream is itself passed through MOCoder,
   producing the *system emblems*;
6. the MOCoder decoder and the DynaRisc emulator (a VeRisc program,
   :mod:`repro.nested`) are letter-encoded into the Bootstrap document;
7. emblems and Bootstrap are written to the analog medium
   (:mod:`repro.media`).

The :class:`Archiver` performs steps 1-6 and hands back a
:class:`~repro.core.archive.MicrOlonysArchive`; step 7 is the
channel's ``record``/``scan`` pair, kept separate so benchmarks can reuse one
archive across many scanner conditions.

Since the streaming pipeline landed, :class:`Archiver` is a thin wrapper
over :class:`repro.pipeline.ArchivePipeline`: by default it keeps the
one-shot behaviour (a single segment spanning the whole payload), while
``segment_size`` / ``executor`` switch the same API to bounded-memory,
optionally parallel encoding.
"""

from __future__ import annotations

import warnings

from repro.core.archive import MicrOlonysArchive
from repro.core.profiles import MediaProfile, TEST_PROFILE
from repro.dbcoder.dbcoder import DBCoder, Profile
from repro.dbcoder.formats import HEADER_SIZE as CONTAINER_HEADER_SIZE
from repro.dbms.database import Database
from repro.dbms.dump import db_dump
from repro.mocoder.mocoder import MOCoder
from repro.pipeline.pipeline import ArchivePipeline
from repro.pipeline.segmenter import PayloadSource, segment_count


class Archiver:
    """Archive databases (or raw byte payloads) onto analog media.

    .. deprecated::
        ``Archiver`` is a deprecation shim: use :func:`repro.api.open_archive`
        (streaming sessions) or :func:`repro.api.run_end_to_end` (one call,
        all seven steps) with an :class:`repro.api.ArchiveConfig`.  The shim
        keeps the historical behaviour, but warns on construction.

    Parameters
    ----------
    profile:
        Media profile selecting the emblem geometry (default: the small test
        profile; use :data:`repro.core.PAPER_PROFILE` etc. for real media).
    dbcoder_profile:
        DBCoder compression profile.  ``PORTABLE`` keeps the archived stream
        decodable by the archived DynaRisc decoder; ``DENSE`` adds arithmetic
        coding for maximum density.
    outer_code:
        Whether MOCoder adds the 17+3 inter-emblem parity groups.
    segment_size:
        Payload bytes per pipeline segment.  ``None`` (the default) keeps
        the historical one-shot behaviour: the whole payload is a single
        segment and the emitted emblems are identical to pre-pipeline
        archives.
    executor:
        Pipeline executor (``"serial"``, ``"thread[:N]"``, ``"process[:N]"``,
        ``"auto"`` or a :class:`~repro.pipeline.executors.SegmentExecutor`).
    """

    def __init__(
        self,
        profile: MediaProfile = TEST_PROFILE,
        dbcoder_profile: Profile = Profile.PORTABLE,
        outer_code: bool = True,
        segment_size: int | None = None,
        executor: str = "serial",
    ):
        warnings.warn(
            "repro.core.Archiver is deprecated; use repro.api.open_archive() "
            "(or repro.api.run_end_to_end) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.profile = profile
        self.dbcoder = DBCoder(dbcoder_profile)
        self.outer_code = outer_code
        self.segment_size = segment_size
        self.executor = executor
        self.mocoder = MOCoder(profile.spec, outer_code=outer_code)

    def _pipeline(self) -> ArchivePipeline:
        return ArchivePipeline(
            profile=self.profile,
            dbcoder_profile=self.dbcoder.profile,
            outer_code=self.outer_code,
            segment_size=self.segment_size,
            executor=self.executor,
        )

    # ------------------------------------------------------------------ #
    def archive_database(self, database: Database) -> MicrOlonysArchive:
        """Run steps 1-6 for a database; returns the archive artefact."""
        archive_text = db_dump(database)
        return self.archive_text(archive_text, payload_kind="sql")

    def archive_text(self, archive_text: str, payload_kind: str = "sql") -> MicrOlonysArchive:
        """Archive an already-extracted textual archive."""
        return self.archive_bytes(archive_text.encode("utf-8"), payload_kind=payload_kind)

    def archive_bytes(self, payload: bytes, payload_kind: str = "binary") -> MicrOlonysArchive:
        """Archive an arbitrary byte payload (used for the film experiments)."""
        return self._pipeline().archive_bytes(payload, payload_kind=payload_kind)

    def archive_stream(
        self, source: PayloadSource, payload_kind: str = "binary"
    ) -> MicrOlonysArchive:
        """Archive from a file object or chunk iterable, read incrementally."""
        return self._pipeline().archive_stream(source, payload_kind=payload_kind)

    # ------------------------------------------------------------------ #
    def estimate_emblems(self, payload_bytes: int) -> int:
        """Estimate the number of data emblems for a payload of ``payload_bytes``.

        Each segment's DBCoder container adds a fixed header
        (:data:`repro.dbcoder.formats.HEADER_SIZE` bytes); compression is not
        estimated (use :meth:`archive_bytes` for exact numbers), so for the
        ``STORE`` profile the estimate is exact and for the compressing
        profiles it upper-bounds compressible payloads.
        """
        segments = segment_count(payload_bytes, self.segment_size)
        total = 0
        remaining = payload_bytes
        for index in range(segments):
            if self.segment_size is None:
                length = remaining
            else:
                length = min(self.segment_size, remaining)
            total += self.mocoder.total_emblems_needed(length + CONTAINER_HEADER_SIZE)
            remaining -= length
        return total
