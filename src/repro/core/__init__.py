"""Micr'Olonys: the end-to-end ULE archival system.

This package ties the substrates together into the two flows of Figure 2:

* :class:`~repro.core.archiver.Archiver` — the seven archival steps: dump the
  database, compress it with DBCoder, lay it out as data emblems with
  MOCoder, archive the DBCoder decoder as system emblems, and render the
  Bootstrap document holding the DynaRisc emulator and the MOCoder decoder as
  letter pages.
* :class:`~repro.core.restorer.Restorer` — the six restoration steps, up to
  and including loading the recovered SQL archive into the miniature DBMS;
  optionally the database-layout decoding runs inside the emulated DynaRisc
  processor (or the full nested VeRisc stack), exactly as a future user
  would run it.
"""

from repro.core.profiles import (
    MediaProfile,
    PAPER_PROFILE,
    MICROFILM_PROFILE,
    MICROFILM_DENSE_PROFILE,
    CINEMA_PROFILE,
    TEST_PROFILE,
    DNA_PROFILE,
    get_profile,
    PROFILES,
)
from repro.core.archive import ArchiveManifest, MicrOlonysArchive, SegmentRecord
from repro.core.archiver import Archiver
from repro.core.restorer import (
    GenerationInfo,
    RestorationResult,
    RestoreEngine,
    Restorer,
    VerifyReport,
)

__all__ = [
    "RestoreEngine",
    "VerifyReport",
    "GenerationInfo",
    "SegmentRecord",
    "MediaProfile",
    "PAPER_PROFILE",
    "MICROFILM_PROFILE",
    "MICROFILM_DENSE_PROFILE",
    "CINEMA_PROFILE",
    "TEST_PROFILE",
    "DNA_PROFILE",
    "PROFILES",
    "get_profile",
    "ArchiveManifest",
    "MicrOlonysArchive",
    "Archiver",
    "Restorer",
    "RestorationResult",
]
