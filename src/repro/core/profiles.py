"""Media profiles: emblem geometry matched to each analog medium.

Each profile pairs an :class:`~repro.mocoder.emblem.EmblemSpec` with the
channel whose frames it is sized for.  The paper profile is calibrated so
that a ~1.2 MB SQL archive lands on ~26 A4 pages (about 50 KB per page, §4);
the conservative microfilm profile reproduces the 102 KB-image-in-3-emblems
experiment, while the dense microfilm profile reproduces the 1.3 GB-per-66 m
reel figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.media.channel import MediaChannel
from repro.media.distortions import OFFICE_SCAN
from repro.media.dna import DNAEmblemChannel
from repro.media.film import CinemaFilmChannel, MicrofilmChannel
from repro.media.paper import PaperChannel
from repro.mocoder.emblem import EmblemSpec


@dataclass(frozen=True)
class MediaProfile:
    """An emblem spec plus the channel it targets."""

    name: str
    description: str
    spec: EmblemSpec
    channel_factory: Callable[[], MediaChannel] = field(repr=False)

    def channel(self) -> MediaChannel:
        """Instantiate the media channel for this profile."""
        return self.channel_factory()


#: Emblems printed one-per-page on A4 paper at 600 dpi.
PAPER_PROFILE = MediaProfile(
    name="paper-a4-600dpi",
    description="A4 laser paper at 600 dpi, ~60 kB of payload per emblem",
    spec=EmblemSpec(
        name="paper-a4-600dpi",
        data_cells_x=1064,
        data_cells_y=1056,
        cell_pixels=4,
    ),
    channel_factory=PaperChannel,
)

#: Conservative microfilm emblems (reproduces 102 kB -> 3 emblems).
MICROFILM_PROFILE = MediaProfile(
    name="microfilm-16mm",
    description="16 mm microfilm frames, conservative cell size (~35 kB/frame)",
    spec=EmblemSpec(
        name="microfilm-16mm",
        data_cells_x=800,
        data_cells_y=800,
        cell_pixels=4,
    ),
    channel_factory=MicrofilmChannel,
)

#: Dense microfilm emblems (reproduces the 1.3 GB-per-reel capacity figure).
MICROFILM_DENSE_PROFILE = MediaProfile(
    name="microfilm-16mm-dense",
    description="16 mm microfilm frames at 3 px/cell (~125 kB/frame)",
    spec=EmblemSpec(
        name="microfilm-16mm-dense",
        data_cells_x=1272,
        data_cells_y=1792,
        cell_pixels=3,
    ),
    channel_factory=MicrofilmChannel,
)

#: Full-aperture 2K cinema film frames.
CINEMA_PROFILE = MediaProfile(
    name="cinema-35mm-2k",
    description="35 mm cinema film, 2K full-aperture frames scanned at 4K",
    spec=EmblemSpec(
        name="cinema-35mm-2k",
        data_cells_x=1000,
        data_cells_y=752,
        cell_pixels=2,
    ),
    channel_factory=CinemaFilmChannel,
)

#: Small, fast emblems for tests and examples.  A small emblem holds a single
#: Reed-Solomon block, so it enjoys none of the interleaving protection of the
#: full-size profiles; its channel therefore uses a proportionally gentler
#: scanner model (the full-severity sweeps live in the robustness benchmark).
TEST_PROFILE = MediaProfile(
    name="test-small",
    description="small emblems (199-byte payload) for fast tests and examples",
    spec=EmblemSpec(
        name="test-small",
        data_cells_x=64,
        data_cells_y=64,
        cell_pixels=4,
    ),
    channel_factory=lambda: PaperChannel(
        dpi=72, distortion=OFFICE_SCAN.scaled(0.25, name="office-scan-small")
    ),
)

#: Small emblems carried on the synthetic-DNA channel sketch (§5 future
#: work): the "frame" is an addressed oligo strand pool rather than an
#: optical raster, so the channel is digital — see
#: :class:`~repro.media.dna.DNAEmblemChannel`.
DNA_PROFILE = MediaProfile(
    name="dna-oligo",
    description="synthetic-DNA oligo pool; emblems packed into addressed strands",
    spec=EmblemSpec(
        name="dna-oligo",
        data_cells_x=64,
        data_cells_y=64,
        cell_pixels=2,
    ),
    channel_factory=lambda: DNAEmblemChannel(
        frame_shape=(DNA_PROFILE.spec.pixels_y, DNA_PROFILE.spec.pixels_x)
    ),
)

#: All named profiles.
PROFILES = {
    profile.name: profile
    for profile in (
        PAPER_PROFILE,
        MICROFILM_PROFILE,
        MICROFILM_DENSE_PROFILE,
        CINEMA_PROFILE,
        TEST_PROFILE,
        DNA_PROFILE,
    )
}


def get_profile(name: str) -> MediaProfile:
    """Look a media profile up by name (alias-aware).

    Delegates to :data:`repro.registry.media`, so short aliases like
    ``"paper"`` resolve too and unknown names raise
    :class:`~repro.errors.UnknownNameError` (a :class:`~repro.errors.
    ReproError` that still subclasses ``KeyError``) with a did-you-mean
    suggestion.
    """
    from repro import registry  # local import: registry registers *us*

    return registry.get_media(name)
