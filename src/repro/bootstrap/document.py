"""Generation and parsing of the Bootstrap document.

The Bootstrap is the short plain-text document archived next to the emblems.
It contains (1) a prose/pseudocode description of the VeRisc machine and of
the letter decoding, sufficient for a programmer with no other context to
implement the emulator, and (2) the instruction streams of the DynaRisc
emulator and of the MOCoder decoder rendered as letter pages.  Its whole
purpose is to be readable by humans and OCR decades from now, so the format
is deliberately plain: titled sections separated by rulers, fixed-width
letter blocks, and per-section CRC lines so a re-typed copy can be verified.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BootstrapParseError
from repro.bootstrap.letters import bytes_to_letters, format_letter_pages, letters_to_bytes
from repro.util.crc import crc32_of

_RULER = "=" * 72

#: The plain-text description of the VeRisc machine and the restoration
#: procedure.  This stands in for the paper's "four pages of algorithm
#: pseudocode"; the portability benchmark measures its length and independent
#: implementations of the emulator are written against this text alone.
VERISC_PSEUDOCODE = """\
HOW TO RESTORE THIS ARCHIVE
---------------------------

You are holding (or viewing scans of) three kinds of artefacts:

  1. this Bootstrap document (plain text),
  2. "system emblems"  - square barcodes holding the database-layout decoder,
  3. "data emblems"    - square barcodes holding the archived database.

To read the emblems you must first run two small programs that are printed in
this document as pages of capital letters.  The letters encode bytes: each
byte is written as two letters, high half first, and the letters A B C D E F
G H I J K L M N O P stand for the values 15 14 13 12 11 10 9 8 7 6 5 4 3 2 1
0 respectively (so "A" is hexadecimal F and "P" is hexadecimal 0).  Spaces
and line breaks between letters carry no meaning.

STEP 1 - IMPLEMENT THE VERISC MACHINE (the only programming you must do)
------------------------------------------------------------------------

VeRisc is a made-up, very small computer.  Implement it in any programming
language you have.  It consists of:

  memory     : 65536 words, each word holds an integer 0..65535.
               Addresses are 0..65535.  All memory starts at zero.
  register R : one word (the accumulator).
  flag B     : the borrow flag, either 0 or 1.
  register PC: the address of the next instruction word.

Five memory addresses are special; they are not storage but ports:

  address 65535 (PC)     : reading gives PC, writing sets PC (a jump).
  address 65534 (BORROW) : reading gives B, writing sets B to bit 0 of R.
  address 65533 (OUTPUT) : writing appends the low 8 bits of R to the output.
  address 65532 (INPUT)  : reading gives the next byte of the input stream;
                           when the input is exhausted it gives 0 and sets
                           B to 1 (otherwise it sets B to 0).
  address 65531 (HALT)   : writing stops the machine.

An instruction is two consecutive words: an opcode word then an address word.
Execute instructions in a loop until the machine halts:

  fetch   : opcode = memory[PC]; address = memory[PC + 1]; PC = PC + 2
  opcode 0 (LD)  : R = read(address)
  opcode 1 (ST)  : write(address, R)
  opcode 2 (SBB) : value = read(address)
                   result = R - value - B
                   if result < 0: B = 1 and result = result + 65536
                   else         : B = 0
                   R = result
  opcode 3 (AND) : R = R bitwise-and read(address); B = 0

"read" and "write" must honour the five special addresses above; for every
other address they access the memory array.  That is the whole machine:
four instructions, one register, one flag.

STEP 2 - LOAD AND RUN THE DYNARISC EMULATOR
-------------------------------------------

Decode the letter pages of SECTION DYNARISC-EMULATOR into bytes (two letters
per byte as described above).  Interpret the bytes as 16-bit words, least
significant byte first, and copy them into VeRisc memory starting at
address 0.  Set PC to the entry address printed at the top of that section,
supply as the VeRisc input stream the bytes named by the section, and run.
The program is an emulator for a richer 16-bit processor (DynaRisc) written
with nothing but the four VeRisc instructions.

STEP 3 - RUN THE MOCODER DECODER ON THE SCANNED EMBLEMS
-------------------------------------------------------

Decode SECTION MOCODER-DECODER into bytes the same way.  These bytes are a
DynaRisc program: the media-layout decoder.  Feed every scanned emblem image
to it as a flat list of pixel brightness values (row by row, one byte per
pixel, 0 = black, 255 = white), preceded by two words giving the image width
and height.  Its output is the byte stream that was stored on the medium.

STEP 4 - RUN THE DATABASE-LAYOUT DECODER
----------------------------------------

The byte stream recovered from the *system* emblems is another DynaRisc
program: the database-layout decoder (a dictionary decompressor).  Run it,
feeding it the byte stream recovered from the *data* emblems.  Its output is
a plain SQL text file: CREATE TABLE statements followed by INSERT statements.

STEP 5 - LOAD THE SQL FILE INTO ANY DATABASE SYSTEM OF YOUR ERA
---------------------------------------------------------------

The SQL file is ordinary text.  Load it with whatever tools exist when you
read this, or read it by eye; it is self-describing.
"""


@dataclass
class BootstrapSection:
    """One letter-encoded payload of the Bootstrap."""

    name: str
    description: str
    payload: bytes
    entry_point: int = 0

    def render(self) -> str:
        letters = bytes_to_letters(self.payload)
        pages = format_letter_pages(letters)
        body = "\n\n".join(pages)
        return (
            f"{_RULER}\n"
            f"SECTION {self.name}\n"
            f"{self.description}\n"
            f"LENGTH-BYTES: {len(self.payload)}\n"
            f"ENTRY-ADDRESS: {self.entry_point}\n"
            f"CRC32: {crc32_of(self.payload):08X}\n"
            f"{_RULER}\n"
            f"{body}\n"
        )


@dataclass
class BootstrapDocument:
    """The complete Bootstrap: pseudocode plus letter-encoded sections."""

    sections: list[BootstrapSection]
    pseudocode: str = VERISC_PSEUDOCODE

    #: Lines per rendered page, used for the page-count accounting the paper
    #: reports ("a short, seven-page document").
    LINES_PER_PAGE = 60

    def render(self) -> str:
        """Render the full document as plain text."""
        parts = [
            _RULER,
            "MICR'OLONYS BOOTSTRAP DOCUMENT",
            "Keep this text with the emblem images.  It is sufficient, on its",
            "own, to recover the archived database on any future computer.",
            _RULER,
            "",
            self.pseudocode,
            "",
        ]
        for section in self.sections:
            parts.append(section.render())
        return "\n".join(parts)

    # ------------------------------------------------------------------ #
    @property
    def pseudocode_lines(self) -> int:
        """Number of lines of the algorithm description."""
        return len(self.pseudocode.splitlines())

    @property
    def letter_count(self) -> int:
        """Total number of letters across all sections."""
        return sum(2 * len(section.payload) for section in self.sections)

    @property
    def page_count(self) -> int:
        """Approximate printed page count of the rendered document."""
        return -(-len(self.render().splitlines()) // self.LINES_PER_PAGE)

    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, text: str) -> "BootstrapDocument":
        """Parse a rendered (or OCR-ed and corrected) Bootstrap document.

        Raises
        ------
        BootstrapParseError
            If a section is malformed or fails its CRC check.
        """
        sections = []
        pieces = text.split(f"{_RULER}\nSECTION ")
        for piece in pieces[1:]:
            header_and_body = piece.split(_RULER, 1)
            if len(header_and_body) != 2:
                raise BootstrapParseError("section is missing its closing ruler")
            header, body = header_and_body
            header_lines = [line for line in header.splitlines() if line.strip()]
            if not header_lines:
                raise BootstrapParseError("section has an empty header")
            name = header_lines[0].strip()
            fields = {}
            description_lines = []
            for line in header_lines[1:]:
                if ":" in line and line.split(":", 1)[0].isupper():
                    key, value = line.split(":", 1)
                    fields[key.strip()] = value.strip()
                else:
                    description_lines.append(line)
            try:
                length = int(fields["LENGTH-BYTES"])
                entry = int(fields["ENTRY-ADDRESS"])
                crc = int(fields["CRC32"], 16)
            except (KeyError, ValueError) as exc:
                raise BootstrapParseError(f"section {name}: bad header fields") from exc
            payload = letters_to_bytes(body)[:length]
            if len(payload) != length:
                raise BootstrapParseError(
                    f"section {name}: decoded {len(payload)} bytes, expected {length}"
                )
            if crc32_of(payload) != crc:
                raise BootstrapParseError(
                    f"section {name}: CRC mismatch - the letters were mis-read; "
                    "re-scan or re-type this section"
                )
            sections.append(
                BootstrapSection(
                    name=name,
                    description="\n".join(description_lines),
                    payload=payload,
                    entry_point=entry,
                )
            )
        if not sections:
            raise BootstrapParseError("no sections found in the Bootstrap text")
        pseudocode = pieces[0]
        return cls(sections=sections, pseudocode=pseudocode)

    def section(self, name: str) -> BootstrapSection:
        """Look a section up by name."""
        for section in self.sections:
            if section.name == name:
                return section
        raise BootstrapParseError(f"no Bootstrap section named {name!r}")


def build_bootstrap(
    dynarisc_emulator_image: bytes,
    mocoder_decoder_image: bytes,
    dynarisc_entry: int = 0,
    mocoder_entry: int = 0,
) -> BootstrapDocument:
    """Assemble the standard two-section Bootstrap document.

    Parameters
    ----------
    dynarisc_emulator_image:
        Byte serialisation of the DynaRisc emulator written in VeRisc.
    mocoder_decoder_image:
        Byte serialisation of the MOCoder decoder written in DynaRisc.
    """
    sections = [
        BootstrapSection(
            name="DYNARISC-EMULATOR",
            description=(
                "A VeRisc memory image (16-bit words, least significant byte first)\n"
                "implementing an emulator for the DynaRisc processor."
            ),
            payload=dynarisc_emulator_image,
            entry_point=dynarisc_entry,
        ),
        BootstrapSection(
            name="MOCODER-DECODER",
            description=(
                "A DynaRisc program (see Step 3) that converts scanned emblem\n"
                "pixels back into the archived byte stream."
            ),
            payload=mocoder_decoder_image,
            entry_point=mocoder_entry,
        ),
    ]
    return BootstrapDocument(sections=sections)
