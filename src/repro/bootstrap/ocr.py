"""Simulated OCR of the Bootstrap's letter pages.

During restoration (Figure 2b, step 1) "any OCR program can be used" to turn
the scanned Bootstrap pages back into text.  OCR is imperfect, so this module
models it: a configurable per-character error rate substitutes letters within
the A..P alphabet (the most common real failure mode once the glyph set is
restricted to sixteen capital letters).  The per-section CRC32 lines in the
Bootstrap let the user detect a mis-read and re-scan, which the failure
injection tests exercise.
"""

from __future__ import annotations

from repro.bootstrap.letters import ALPHABET
from repro.util.rng import deterministic_rng


class SimulatedOCR:
    """A toy OCR engine with a configurable character error rate."""

    def __init__(self, error_rate: float = 0.0, seed: int | None = None):
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError("error rate must be between 0 and 1")
        self.error_rate = error_rate
        self.seed = seed

    def read(self, text: str) -> str:
        """Return the text as the OCR engine would recognise it."""
        if self.error_rate == 0.0:
            return text
        rng = deterministic_rng(self.seed)
        characters = list(text)
        for index, char in enumerate(characters):
            if char.upper() in ALPHABET and rng.random() < self.error_rate:
                characters[index] = ALPHABET[int(rng.integers(0, len(ALPHABET)))]
        return "".join(characters)
