"""The hexadecimal letter encoding used by the Bootstrap.

The paper specifies the mapping exactly: "letters A to P are used to encode
hexadecimal values 0xF to 0x0 respectively" — that is, ``A`` is 0xF, ``B`` is
0xE, ..., ``P`` is 0x0.  Each byte becomes two letters (high nibble first).
Using only sixteen distinct, visually unambiguous capital letters keeps the
text trivially OCR-able and even hand-typable decades from now.
"""

from __future__ import annotations

from repro.errors import LetterCodecError

#: Letter used for nibble value v is ALPHABET[v]; ALPHABET[0xF] == "A".
ALPHABET = "PONMLKJIHGFEDCBA"

#: Reverse lookup table from letter to nibble value.
LETTER_VALUES = {letter: value for value, letter in enumerate(ALPHABET)}

#: Characters that are ignored when decoding (layout whitespace).
_IGNORED = set(" \t\r\n")


def bytes_to_letters(data: bytes) -> str:
    """Encode bytes as Bootstrap letters, two letters per byte (high nibble first)."""
    letters = []
    for byte in data:
        letters.append(ALPHABET[(byte >> 4) & 0xF])
        letters.append(ALPHABET[byte & 0xF])
    return "".join(letters)


def letters_to_bytes(text: str) -> bytes:
    """Decode Bootstrap letters back into bytes, ignoring whitespace.

    Raises
    ------
    LetterCodecError
        On characters outside A..P or an odd number of letters.
    """
    nibbles = []
    for position, char in enumerate(text):
        if char in _IGNORED:
            continue
        upper = char.upper()
        if upper not in LETTER_VALUES:
            raise LetterCodecError(
                f"invalid Bootstrap letter {char!r} at position {position}"
            )
        nibbles.append(LETTER_VALUES[upper])
    if len(nibbles) % 2:
        raise LetterCodecError("odd number of letters: each byte needs two")
    out = bytearray()
    for index in range(0, len(nibbles), 2):
        out.append((nibbles[index] << 4) | nibbles[index + 1])
    return bytes(out)


def format_letter_pages(
    letters: str,
    letters_per_line: int = 64,
    lines_per_page: int = 60,
) -> list[str]:
    """Lay the letter stream out into printable pages of grouped lines.

    Letters are grouped in blocks of eight separated by spaces so a human can
    keep their place while typing them back in; whitespace is ignored by
    :func:`letters_to_bytes`.
    """
    lines = []
    for start in range(0, len(letters), letters_per_line):
        chunk = letters[start:start + letters_per_line]
        grouped = " ".join(chunk[i:i + 8] for i in range(0, len(chunk), 8))
        lines.append(grouped)
    pages = []
    for start in range(0, len(lines), lines_per_page):
        pages.append("\n".join(lines[start:start + lines_per_page]))
    return pages or [""]
