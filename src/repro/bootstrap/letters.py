"""The hexadecimal letter encoding used by the Bootstrap.

The paper specifies the mapping exactly: "letters A to P are used to encode
hexadecimal values 0xF to 0x0 respectively" — that is, ``A`` is 0xF, ``B`` is
0xE, ..., ``P`` is 0x0.  Each byte becomes two letters (high nibble first).
Using only sixteen distinct, visually unambiguous capital letters keeps the
text trivially OCR-able and even hand-typable decades from now.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LetterCodecError

#: Letter used for nibble value v is ALPHABET[v]; ALPHABET[0xF] == "A".
ALPHABET = "PONMLKJIHGFEDCBA"

#: Reverse lookup table from letter to nibble value.
LETTER_VALUES = {letter: value for value, letter in enumerate(ALPHABET)}

#: Characters that are ignored when decoding (layout whitespace).
_IGNORED = set(" \t\r\n")

#: Per-ASCII-character class for the vectorised decoder: the nibble value for
#: A..P / a..p, ``_CLASS_IGNORED`` for layout whitespace, ``_CLASS_INVALID``
#: otherwise.  Non-ASCII text falls back to the reference loop (a handful of
#: exotic codepoints, e.g. dotless i, also uppercase into A..P).
_CLASS_INVALID = np.int8(-1)
_CLASS_IGNORED = np.int8(-2)
_CHAR_CLASS = np.full(128, _CLASS_INVALID, dtype=np.int8)
for _letter, _value in LETTER_VALUES.items():
    _CHAR_CLASS[ord(_letter)] = _value
    _CHAR_CLASS[ord(_letter.lower())] = _value
for _char in _IGNORED:
    _CHAR_CLASS[ord(_char)] = _CLASS_IGNORED

#: Letter-pair lookup for the vectorised encoder: entry ``b`` is the two
#: letters of byte ``b`` (high nibble first) as two ASCII codes.
_BYTE_PAIRS = np.empty((256, 2), dtype=np.uint8)
for _byte in range(256):
    _BYTE_PAIRS[_byte, 0] = ord(ALPHABET[(_byte >> 4) & 0xF])
    _BYTE_PAIRS[_byte, 1] = ord(ALPHABET[_byte & 0xF])


def bytes_to_letters(data: bytes) -> str:
    """Encode bytes as Bootstrap letters, two letters per byte (high nibble first)."""
    if not data:
        return ""
    pairs = _BYTE_PAIRS[np.frombuffer(bytes(data), dtype=np.uint8)]
    return pairs.tobytes().decode("ascii")


def _bytes_to_letters_reference(data: bytes) -> str:
    """The per-byte encoding loop; ground truth for :func:`bytes_to_letters`."""
    letters = []
    for byte in data:
        letters.append(ALPHABET[(byte >> 4) & 0xF])
        letters.append(ALPHABET[byte & 0xF])
    return "".join(letters)


def letters_to_bytes(text: str) -> bytes:
    """Decode Bootstrap letters back into bytes, ignoring whitespace.

    Raises
    ------
    LetterCodecError
        On characters outside A..P or an odd number of letters.

    The hot path classifies every character with one table gather (the
    Bootstrap document is parsed on each restore, and the reference loop was
    a measurable slice of restore latency); the reference loop remains the
    behaviour it is equivalence-tested against.
    """
    # One uint32 per character keeps error positions aligned with ``text``.
    try:
        encoded = text.encode("utf-32-le")
    except UnicodeEncodeError:  # lone surrogates: let the reference report them
        return _letters_to_bytes_reference(text)
    codes = np.frombuffer(encoded, dtype=np.uint32)
    if codes.size == 0:
        return b""
    if codes.max() >= 128:
        return _letters_to_bytes_reference(text)
    classes = _CHAR_CLASS[codes]
    invalid = classes == _CLASS_INVALID
    if invalid.any():
        position = int(np.nonzero(invalid)[0][0])
        raise LetterCodecError(
            f"invalid Bootstrap letter {text[position]!r} at position {position}"
        )
    nibbles = classes[classes != _CLASS_IGNORED]
    if nibbles.size % 2:
        raise LetterCodecError("odd number of letters: each byte needs two")
    values = nibbles.astype(np.uint8)
    return ((values[0::2] << 4) | values[1::2]).tobytes()


def _letters_to_bytes_reference(text: str) -> bytes:
    """The per-character decoding loop; ground truth for :func:`letters_to_bytes`."""
    nibbles = []
    for position, char in enumerate(text):
        if char in _IGNORED:
            continue
        upper = char.upper()
        if upper not in LETTER_VALUES:
            raise LetterCodecError(
                f"invalid Bootstrap letter {char!r} at position {position}"
            )
        nibbles.append(LETTER_VALUES[upper])
    if len(nibbles) % 2:
        raise LetterCodecError("odd number of letters: each byte needs two")
    out = bytearray()
    for index in range(0, len(nibbles), 2):
        out.append((nibbles[index] << 4) | nibbles[index + 1])
    return bytes(out)


def format_letter_pages(
    letters: str,
    letters_per_line: int = 64,
    lines_per_page: int = 60,
) -> list[str]:
    """Lay the letter stream out into printable pages of grouped lines.

    Letters are grouped in blocks of eight separated by spaces so a human can
    keep their place while typing them back in; whitespace is ignored by
    :func:`letters_to_bytes`.
    """
    lines = []
    for start in range(0, len(letters), letters_per_line):
        chunk = letters[start:start + letters_per_line]
        grouped = " ".join(chunk[i:i + 8] for i in range(0, len(chunk), 8))
        lines.append(grouped)
    pages = []
    for start in range(0, len(lines), lines_per_page):
        pages.append("\n".join(lines[start:start + lines_per_page]))
    return pages or [""]
