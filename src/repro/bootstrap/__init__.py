"""The Bootstrap: the human-readable seed of the whole restoration chain.

§3.2 of the paper: the MOCoder decoder and the DynaRisc emulator cannot be
stored as emblems (they are needed *before* emblems can be read), so their
instruction streams are converted into a list of letters — A to P encoding
hexadecimal 0xF down to 0x0 — and appended to a plain-text description of the
VeRisc emulation algorithm.  The resulting short document ("four pages of
algorithm pseudocode and three pages of alphabetic characters") is written to
the analog medium alongside the emblems and is everything a future user needs
to type in by hand or OCR.
"""

from repro.bootstrap.letters import bytes_to_letters, letters_to_bytes, format_letter_pages
from repro.bootstrap.document import BootstrapDocument, build_bootstrap
from repro.bootstrap.ocr import SimulatedOCR

__all__ = [
    "bytes_to_letters",
    "letters_to_bytes",
    "format_letter_pages",
    "BootstrapDocument",
    "build_bootstrap",
    "SimulatedOCR",
]
