"""The asyncio front end of the archive service.

:class:`ReproServer` binds an :class:`~repro.server.repository.
ArchiveRepository` to a TCP port.  The event loop only parses requests and
shuttles bytes; every blocking repository call runs on a bounded worker
thread pool via ``run_in_executor``.  Uploads stream: each body chunk is
handed to the write session on a worker thread, and when the encode
pipeline's bounded queue is full that call blocks, the coroutine stops
reading the socket, and TCP backpressure reaches the client — the server
never buffers an unbounded body.

Every socket-read await — request headers, keep-alive idle waits, and each
body chunk — is bounded by ``request_timeout`` (default
:data:`DEFAULT_REQUEST_TIMEOUT` seconds): a slowloris client that opens a
connection and trickles bytes gets a 408 and is dropped instead of pinning
a connection handler forever.

Routes
------
===========================================  ==========================================
``GET /archives``                            list archives under the root
``PUT /archives/{name}``                     streaming upload of a new archive
``POST /archives/{name}/append``             streaming append to an existing archive
``GET /archives/{name}/data``                payload bytes; HTTP ``Range`` honoured
``GET /archives/{name}/verify``              fsck (``?shallow=1`` skips frame decode)
``GET /archives/{name}/inspect``             manifest summary
``GET /stats``                               repository + cache + request metrics
===========================================  ==========================================
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import logging
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Awaitable, Callable, TypeVar

from repro.errors import (
    ArchiveBusyError,
    ArchiveNotFoundError,
    BadRequestError,
    ConfigError,
    ReproError,
    UnknownNameError,
)
from repro.server.http import (
    HTTPError,
    HTTPRequest,
    iter_body,
    json_body,
    parse_range,
    read_request,
    send_response,
)
from repro.server.metrics import ServerMetrics
from repro.server.repository import ArchiveRepository, WriteSession

__all__ = ["ReproServer", "ServerHandle", "DEFAULT_REQUEST_TIMEOUT"]

_LOG = logging.getLogger("repro.server")

_R = TypeVar("_R")

#: Worker threads bridging the event loop to the blocking repository.  Write
#: sessions occupy a thread only per chunk (not for their whole lifetime),
#: so this bounds concurrent *blocking calls*, not concurrent clients.
_DEFAULT_WORKERS = 16

#: Default seconds a connection may sit silent — waiting for request headers
#: (including between keep-alive requests) or mid-body between chunks —
#: before the server answers 408 and drops it.  Bounds how long a slowloris
#: client (trickling one byte per minute) can pin a connection handler.
DEFAULT_REQUEST_TIMEOUT = 30.0


@dataclass
class _Reply:
    """What a route handler produces; the connection loop sends it."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)
    bytes_in: int = 0


_Handler = Callable[[HTTPRequest, asyncio.StreamReader, str], Awaitable[_Reply]]


def _status_for(error: ReproError) -> int:
    """Map a library error onto the HTTP status the client should see."""
    if isinstance(error, ArchiveNotFoundError):
        return 404
    if isinstance(error, ArchiveBusyError):
        return 409
    if isinstance(error, (BadRequestError, ConfigError, UnknownNameError)):
        return 400
    return 500


class ReproServer:
    """Serve one :class:`ArchiveRepository` over HTTP/1.1.

    Run it on the current loop (``await server.run()``), or from
    synchronous code via :meth:`start_in_thread`, which returns a
    :class:`ServerHandle` context manager — the shape the tests, the
    benchmark and the CLI all share.
    """

    def __init__(
        self,
        repository: ArchiveRepository,
        *,
        host: str = "127.0.0.1",
        port: int = 8765,
        max_workers: int = _DEFAULT_WORKERS,
        request_timeout: "float | None" = DEFAULT_REQUEST_TIMEOUT,
    ):
        self.repository = repository
        self.host = host
        #: Seconds of silence tolerated while reading a request (headers or
        #: body) and between keep-alive requests; ``None`` disables the
        #: guard.  See :data:`DEFAULT_REQUEST_TIMEOUT`.
        self.request_timeout = request_timeout
        #: Requested port; replaced by the bound port after :meth:`start`
        #: (pass ``0`` for an ephemeral port).
        self.port = port
        self.metrics = ServerMetrics()
        self._pool = ThreadPoolExecutor(max_workers=max_workers, thread_name_prefix="repro-serve")
        self._server: "asyncio.AbstractServer | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stop_requested: "asyncio.Event | None" = None
        # Only touched from the event-loop thread.
        self._writers: set[asyncio.StreamWriter] = set()
        name = r"(?P<name>[^/]+)"
        self._routes: tuple[tuple[str, re.Pattern[str], str, _Handler], ...] = (
            ("GET", re.compile(r"^/archives/?$"), "GET /archives", self._handle_list),
            ("GET", re.compile(r"^/stats/?$"), "GET /stats", self._handle_stats),
            (
                "PUT",
                re.compile(rf"^/archives/{name}$"),
                "PUT /archives/{name}",
                self._handle_upload,
            ),
            (
                "POST",
                re.compile(rf"^/archives/{name}/append$"),
                "POST /archives/{name}/append",
                self._handle_append,
            ),
            (
                "GET",
                re.compile(rf"^/archives/{name}/data$"),
                "GET /archives/{name}/data",
                self._handle_data,
            ),
            (
                "GET",
                re.compile(rf"^/archives/{name}/verify$"),
                "GET /archives/{name}/verify",
                self._handle_verify,
            ),
            (
                "GET",
                re.compile(rf"^/archives/{name}/inspect$"),
                "GET /archives/{name}/inspect",
                self._handle_inspect,
            ),
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind and start accepting (resolves ``port`` when ``0`` was asked)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        sockets = self._server.sockets
        if sockets:
            self.port = sockets[0].getsockname()[1]
        _LOG.info("serving %s on %s", self.repository.root, self.base_url)

    async def stop(self) -> None:
        """Stop accepting, drop open connections, close the repository."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            # Keep-alive connections sit in read_request forever; closing
            # their transports unblocks the handlers so wait_closed returns.
            for writer in list(self._writers):
                writer.close()
            await server.wait_closed()
        self._pool.shutdown(wait=True, cancel_futures=True)
        self.repository.close()

    async def run(self, *, ready: "threading.Event | None" = None) -> None:
        """Serve until :meth:`request_stop` (or cancellation), then clean up."""
        await self.start()
        self._stop_requested = asyncio.Event()
        if ready is not None:
            ready.set()
        try:
            await self._stop_requested.wait()
        finally:
            await self.stop()

    def request_stop(self) -> None:
        """Ask a running :meth:`run` to exit; safe from any thread."""
        loop, event = self._loop, self._stop_requested
        if loop is not None and event is not None:
            loop.call_soon_threadsafe(event.set)

    def start_in_thread(self) -> "ServerHandle":
        """Run the server on a daemon thread; returns once it is accepting."""
        ready = threading.Event()
        failures: list[BaseException] = []

        def main() -> None:
            try:
                asyncio.run(self.run(ready=ready))
            except BaseException as error:  # surfaced to the caller below
                failures.append(error)
                ready.set()

        thread = threading.Thread(target=main, name="repro-server", daemon=True)
        thread.start()
        if not ready.wait(timeout=30.0):
            raise RuntimeError("server did not start within 30s")
        if failures:
            raise RuntimeError(f"server failed to start: {failures[0]}") from failures[0]
        return ServerHandle(self, thread)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _call(self, fn: Callable[..., _R], /, *args: object) -> _R:
        """Run a blocking repository call on the worker pool."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, functools.partial(fn, *args))

    async def _with_timeout(self, awaitable: "Awaitable[_R]") -> _R:
        """Bound a socket-read await by :attr:`request_timeout` (if set)."""
        if self.request_timeout is None:
            return await awaitable
        return await asyncio.wait_for(awaitable, self.request_timeout)

    def _route_for(self, request: HTTPRequest) -> "tuple[str, _Handler, str]":
        """(metrics label, handler, archive name) for a request, or 404/405."""
        allowed: set[str] = set()
        for method, pattern, label, handler in self._routes:
            matched = pattern.match(request.path)
            if matched is None:
                continue
            if method != request.method:
                allowed.add(method)
                continue
            return label, handler, matched.groupdict().get("name", "")
        if allowed:
            raise HTTPError(
                405,
                f"method {request.method} not allowed for {request.path} "
                f"(try {', '.join(sorted(allowed))})",
            )
        raise HTTPError(404, f"no route for {request.method} {request.path}")

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            raise
        except ConnectionError:
            pass  # client went away; nothing to answer
        except Exception:
            _LOG.exception("connection handler crashed")
        finally:
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await self._with_timeout(read_request(reader))
            except TimeoutError:
                # Slow headers (or an idle keep-alive connection): answer 408
                # best-effort and drop the connection — the handler must not
                # stay pinned by a client trickling bytes.
                with contextlib.suppress(Exception):
                    await send_response(
                        writer,
                        408,
                        json_body({"error": "timed out waiting for request headers"}),
                        keep_alive=False,
                    )
                return
            except HTTPError as error:
                await send_response(
                    writer,
                    error.status,
                    json_body({"error": error.message}),
                    keep_alive=False,
                )
                return
            if request is None:
                return
            keep_alive = request.keep_alive
            label = f"{request.method} {request.path}"
            started = time.perf_counter()
            failed = True
            try:
                label, handler, name = self._route_for(request)
                reply = await handler(request, reader, name)
                failed = False
            except HTTPError as error:
                reply = _Reply(error.status, json_body({"error": error.message}))
            except ReproError as error:
                status = _status_for(error)
                if status >= 500:
                    _LOG.exception("request %s failed", label)
                reply = _Reply(
                    status, json_body({"error": str(error), "kind": type(error).__name__})
                )
            except Exception as error:
                _LOG.exception("unhandled error serving %s", label)
                reply = _Reply(500, json_body({"error": f"internal error: {error}"}))
            if failed:
                # The request body may be partly unread; the connection's
                # framing is unknown, so answer and close.
                keep_alive = False
            await send_response(
                writer,
                reply.status,
                reply.body,
                content_type=reply.content_type,
                headers=reply.headers,
                keep_alive=keep_alive,
            )
            self.metrics.observe(
                label,
                time.perf_counter() - started,
                error=failed,
                bytes_in=reply.bytes_in,
                bytes_out=len(reply.body),
            )
            if not keep_alive:
                return

    # ------------------------------------------------------------------ #
    # Route handlers
    # ------------------------------------------------------------------ #
    async def _handle_list(
        self, request: HTTPRequest, reader: asyncio.StreamReader, name: str
    ) -> _Reply:
        listing = await self._call(self.repository.list_archives)
        return _Reply(body=json_body({"archives": listing}))

    async def _handle_stats(
        self, request: HTTPRequest, reader: asyncio.StreamReader, name: str
    ) -> _Reply:
        repository = await self._call(self.repository.stats)
        payload = {
            "server": {"host": self.host, "port": self.port},
            "repository": repository,
            "requests": self.metrics.snapshot(),
        }
        return _Reply(body=json_body(payload))

    async def _handle_inspect(
        self, request: HTTPRequest, reader: asyncio.StreamReader, name: str
    ) -> _Reply:
        summary = await self._call(self.repository.inspect, name)
        return _Reply(body=json_body(summary))

    async def _handle_verify(
        self, request: HTTPRequest, reader: asyncio.StreamReader, name: str
    ) -> _Reply:
        deep = not request.flag("shallow")
        report = await self._call(
            functools.partial(self.repository.verify, name, deep=deep)
        )
        return _Reply(body=json_body({"name": name, **report.to_dict()}))

    async def _handle_data(
        self, request: HTTPRequest, reader: asyncio.StreamReader, name: str
    ) -> _Reply:
        range_header = request.headers.get("range")
        if range_header is not None:
            total = await self._call(self.repository.payload_length, name)
            offset, length = parse_range(range_header, total)
            data, total = await self._call(self.repository.read_range, name, offset, length)
            end = offset + len(data) - 1
            return _Reply(
                206,
                data,
                "application/octet-stream",
                {
                    "Content-Range": f"bytes {offset}-{end}/{total}",
                    "Accept-Ranges": "bytes",
                },
            )
        offset = request.int_param("offset") or 0
        length = request.int_param("length")
        if offset < 0 or (length is not None and length < 0):
            raise HTTPError(400, "offset/length must be non-negative")
        data, total = await self._call(self.repository.read_range, name, offset, length)
        return _Reply(
            200,
            data,
            "application/octet-stream",
            {"Accept-Ranges": "bytes", "X-Archive-Bytes": str(total)},
        )

    async def _handle_upload(
        self, request: HTTPRequest, reader: asyncio.StreamReader, name: str
    ) -> _Reply:
        begin = functools.partial(
            self.repository.begin_upload,
            name,
            store=request.query.get("store", "container"),
            replace=request.flag("replace"),
            wait=not request.flag("nowait"),
            media=request.query.get("media"),
            codec=request.query.get("codec"),
            executor=request.query.get("executor"),
            payload_kind=request.query.get("payload_kind"),
            segment_size=request.int_param("segment_size"),
        )
        session = await self._call(begin)
        summary, received = await self._stream_body(request, reader, name, session)
        return _Reply(201, json_body(summary), bytes_in=received)

    async def _handle_append(
        self, request: HTTPRequest, reader: asyncio.StreamReader, name: str
    ) -> _Reply:
        begin = functools.partial(
            self.repository.begin_append, name, wait=not request.flag("nowait")
        )
        session = await self._call(begin)
        summary, received = await self._stream_body(request, reader, name, session)
        return _Reply(200, json_body(summary), bytes_in=received)

    async def _stream_body(
        self,
        request: HTTPRequest,
        reader: asyncio.StreamReader,
        name: str,
        session: WriteSession,
    ) -> "tuple[dict[str, object], int]":
        """Pump the request body into a write session, then commit.

        Each chunk is written on a worker thread; the write blocks when the
        encode pipeline's bounded queue is full, which pauses this coroutine
        and stops the socket read — end-to-end backpressure.  Any failure
        aborts the session (releasing the archive's writer lock) before the
        error propagates.
        """
        received = 0
        try:
            chunks = iter_body(reader, request).__aiter__()
            while True:
                try:
                    chunk = await self._with_timeout(anext(chunks))
                except StopAsyncIteration:
                    break
                except TimeoutError:
                    # A slowloris body: the client holds the stream open but
                    # stops sending.  408 via the normal error path; the
                    # session aborts below, releasing the writer lock.
                    raise HTTPError(
                        408,
                        f"timed out waiting for request body bytes after "
                        f"{received} received",
                    ) from None
                await self._call(session.write, chunk)
                received += len(chunk)
            summary = await self._call(session.commit)
        except BaseException:
            try:
                await self._call(session.abort)
            except ReproError as abort_error:
                _LOG.warning("abort of write to %r failed: %s", name, abort_error)
            raise
        return summary, received


class ServerHandle:
    """A running background server (from :meth:`ReproServer.start_in_thread`)."""

    def __init__(self, server: ReproServer, thread: threading.Thread):
        self.server = server
        self._thread = thread

    @property
    def base_url(self) -> str:
        return self.server.base_url

    @property
    def port(self) -> int:
        return self.server.port

    def join(self, timeout: "float | None" = None) -> None:
        """Block until the server thread exits (interruptible by Ctrl-C)."""
        self._thread.join(timeout)

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful shutdown; joins the server thread."""
        self.server.request_stop()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not stop in time")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
