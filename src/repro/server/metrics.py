"""Structured request metrics for the archive service (``GET /stats``).

One :class:`ServerMetrics` instance per server aggregates, per route
template (``GET /archives/{name}/data``, not the concrete path — names must
not explode the cardinality): request and error counts, total/max latency,
and bytes in/out.  Everything is lock-guarded and snapshot in one hold, so
``/stats`` always reports a consistent picture even under concurrent
traffic.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = ["ServerMetrics"]


@dataclass
class _RouteStats:
    """Mutable per-route counters (mutated only under the metrics lock)."""

    requests: int = 0
    errors: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0
    bytes_in: int = 0
    bytes_out: int = 0

    def to_dict(self) -> dict[str, object]:
        mean = self.total_seconds / self.requests if self.requests else 0.0
        return {
            "requests": self.requests,
            "errors": self.errors,
            "mean_ms": round(mean * 1000.0, 3),
            "max_ms": round(self.max_seconds * 1000.0, 3),
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
        }


class ServerMetrics:
    """Thread-safe per-route request statistics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._routes: dict[str, _RouteStats] = {}  # lint: guarded-by(_lock)
        self._started = time.monotonic()

    def observe(
        self,
        route: str,
        seconds: float,
        *,
        error: bool = False,
        bytes_in: int = 0,
        bytes_out: int = 0,
    ) -> None:
        """Record one finished request against its route template."""
        with self._lock:
            stats = self._routes.get(route)
            if stats is None:
                stats = self._routes[route] = _RouteStats()
            stats.requests += 1
            if error:
                stats.errors += 1
            stats.total_seconds += seconds
            stats.max_seconds = max(stats.max_seconds, seconds)
            stats.bytes_in += bytes_in
            stats.bytes_out += bytes_out

    def snapshot(self) -> dict[str, object]:
        """A consistent copy of every route's counters plus totals."""
        with self._lock:
            routes = {route: stats.to_dict() for route, stats in sorted(self._routes.items())}
            totals = _RouteStats()
            for stats in self._routes.values():
                totals.requests += stats.requests
                totals.errors += stats.errors
                totals.total_seconds += stats.total_seconds
                totals.max_seconds = max(totals.max_seconds, stats.max_seconds)
                totals.bytes_in += stats.bytes_in
                totals.bytes_out += stats.bytes_out
        return {
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "total": totals.to_dict(),
            "routes": routes,
        }
