"""The archive repository: many named archives under one root, served safely.

This is the concurrency core of :mod:`repro.server` — everything here is
plain blocking code (the asyncio front end calls it on worker threads), and
every rule that keeps concurrent tenants from corrupting each other lives
here rather than in the HTTP handlers:

* **naming** — an archive name maps to ``<root>/<name>`` (directory layout)
  or ``<root>/<name>.ule`` (single-file container); names are validated
  against a strict pattern, so a request path can never escape the root;
* **writer locking** — each archive has one :class:`threading.Lock`; uploads
  and appends hold it for their whole session, so concurrent writers
  *serialize* (or fail fast with :class:`~repro.errors.ArchiveBusyError`
  when the caller asked not to wait) instead of interleaving records;
* **reader pooling** — :class:`repro.api.ArchiveReader` sessions own
  executors and mutate counters, so one reader must not serve two requests
  at once.  A per-archive :class:`_ReaderPool` checks readers out per
  request and back in after, and every committed write *invalidates* the
  pool (epoch bump) so no later request is served off a superseded
  manifest;
* **the shared segment cache** — one :class:`~repro.server.cache.
  SegmentCache` is threaded into every pooled reader, so a segment decoded
  for any request is free for every later request that covers it.
"""

from __future__ import annotations

import re
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

from repro.api import ArchiveConfig, ArchiveReader, open_archive, open_restore
from repro.api.session import ArchiveWriter
from repro.core.restorer import VerifyReport
from repro.errors import (
    ArchiveBusyError,
    ArchiveNotFoundError,
    BadRequestError,
    StoreError,
)
from repro.server.cache import DEFAULT_CACHE_BYTES, SegmentCache
from repro.store import MANIFEST_NAME, open_source

__all__ = ["ArchiveRepository", "WriteSession"]

#: Legal archive names: no path separators, no leading dot, bounded length.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Container archives live as ``<name>`` + this suffix under the root.
_CONTAINER_SUFFIX = ".ule"

#: Idle readers retained per archive between requests.
_MAX_IDLE_READERS = 4


def validate_archive_name(name: str) -> str:
    """``name`` unchanged when it is a legal archive name; raises otherwise."""
    if not _NAME_RE.match(name):
        raise BadRequestError(
            f"illegal archive name {name!r}: use 1-64 letters, digits, '.', "
            "'_' or '-', starting with a letter or digit"
        )
    return name


class _ReaderPool:
    """Check-out/check-in pool of :class:`ArchiveReader` sessions.

    A reader serves exactly one request at a time; between requests up to
    ``max_idle`` readers stay open (keeping their partial-decode executors
    and source handles warm).  :meth:`invalidate` bumps the pool epoch and
    closes the idle readers — readers checked out before the bump finish
    their in-flight request against the old (still fully readable)
    generation and are then closed instead of returning to the pool.
    """

    def __init__(self, opener: Callable[[], ArchiveReader], max_idle: int = _MAX_IDLE_READERS):
        self._opener = opener
        self._max_idle = max_idle
        self._lock = threading.Lock()
        self._idle: list[ArchiveReader] = []  # lint: guarded-by(_lock)
        self._epoch = 0  # lint: guarded-by(_lock)
        self._closed = False  # lint: guarded-by(_lock)

    @contextmanager
    def reader(self) -> Iterator[ArchiveReader]:
        with self._lock:
            epoch = self._epoch
            instance = self._idle.pop() if self._idle else None
        if instance is None:
            instance = self._opener()
        try:
            yield instance
        except BaseException:
            # A failed request may leave the reader's source mid-state;
            # close rather than guess, the next request reopens cleanly.
            instance.close()
            raise
        else:
            with self._lock:
                keep = (
                    not self._closed
                    and epoch == self._epoch
                    and len(self._idle) < self._max_idle
                )
                if keep:
                    self._idle.append(instance)
            if not keep:
                instance.close()

    def invalidate(self) -> None:
        """Retire every idle reader; later check-outs reopen fresh."""
        with self._lock:
            self._epoch += 1
            stale, self._idle = self._idle, []
        for reader in stale:
            reader.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            stale, self._idle = self._idle, []
        for reader in stale:
            reader.close()


@dataclass
class _ArchiveState:
    """Per-archive concurrency state, created lazily per name."""

    pool: _ReaderPool
    #: Serialises uploads and appends to this archive.  Acquired and
    #: released on (possibly different) worker threads of one write
    #: session, which threading.Lock permits.
    writer_lock: threading.Lock = field(default_factory=threading.Lock)


class WriteSession:
    """One serialized write (upload or append) against one archive.

    Returned by :meth:`ArchiveRepository.begin_upload` /
    :meth:`~ArchiveRepository.begin_append` *holding the archive's writer
    lock*; the caller must finish with exactly one of :meth:`commit` or
    :meth:`abort`, which release it.  :meth:`write` blocks on the underlying
    :class:`~repro.api.session.ArchiveWriter`'s bounded queue when the
    encode pipeline falls behind — that is the service's backpressure: the
    HTTP front end awaits the blocked call on a worker thread and stops
    reading the request body until the pipeline catches up.
    """

    def __init__(
        self,
        repository: "ArchiveRepository",
        name: str,
        state: _ArchiveState,
        writer: ArchiveWriter,
        store: str,
    ):
        self._repository = repository
        self._name = name
        self._state = state
        self._writer = writer
        self._store = store
        self._bytes_in = 0
        self._done = False

    @property
    def bytes_written(self) -> int:
        """Payload bytes accepted so far."""
        return self._bytes_in

    def write(self, chunk: bytes) -> None:
        """Feed payload bytes (blocks for backpressure; see class docs)."""
        self._writer.write(chunk)
        self._bytes_in += len(chunk)

    def commit(self) -> dict[str, object]:
        """Finish encoding, finalise the target, release the writer lock."""
        if self._done:
            raise ArchiveBusyError(f"write session for {self._name!r} already finished")
        self._done = True
        try:
            archive = self._writer.close()
        finally:
            self._state.writer_lock.release()
        # Later reads must see the new generation, not a pooled reader's
        # superseded manifest.
        self._state.pool.invalidate()
        manifest = archive.manifest
        return {
            "name": self._name,
            "store": self._store,
            "generation": manifest.generation,
            "payload_bytes": manifest.archive_bytes,
            "payload_crc32": manifest.archive_crc32,
            "segments": max(len(manifest.segments), 1),
            "data_emblems": manifest.data_emblem_count,
            "system_emblems": manifest.system_emblem_count,
        }

    def abort(self) -> None:
        """Drop the session (an append rolls its target back), release the lock."""
        if self._done:
            return
        self._done = True
        try:
            self._writer.abort()
        finally:
            self._state.writer_lock.release()
        self._state.pool.invalidate()


class ArchiveRepository:
    """A root directory of named archives plus their shared runtime state."""

    def __init__(
        self,
        root: "str | Path",
        *,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        lock_timeout: float = 30.0,
        reader_overrides: "dict[str, object] | None" = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: The decoded-segment cache every pooled reader shares.
        self.cache = SegmentCache(cache_bytes)
        #: How long a waiting writer queues for the archive lock before
        #: giving up with :class:`ArchiveBusyError`.
        self.lock_timeout = lock_timeout
        self._reader_overrides = dict(reader_overrides or {})
        self._lock = threading.Lock()
        self._states: dict[str, _ArchiveState] = {}  # lint: guarded-by(_lock)

    # ------------------------------------------------------------------ #
    # Name / target resolution
    # ------------------------------------------------------------------ #
    def _existing(self, name: str) -> "tuple[Path, str] | None":
        """The (target, store) of an existing archive, or ``None``."""
        directory = self.root / name
        if (directory / MANIFEST_NAME).exists():
            return directory, "directory"
        container = self.root / f"{name}{_CONTAINER_SUFFIX}"
        if container.is_file():
            return container, "container"
        return None

    def _resolve(self, name: str) -> "tuple[Path, str]":
        located = self._existing(validate_archive_name(name))
        if located is None:
            raise ArchiveNotFoundError(f"no archive named {name!r} in {self.root}")
        return located

    def _state(self, name: str) -> _ArchiveState:
        with self._lock:
            state = self._states.get(name)
            if state is None:
                opener = _ReaderOpener(self, name)
                state = self._states[name] = _ArchiveState(pool=_ReaderPool(opener))
            return state

    def _open_reader(self, name: str) -> ArchiveReader:
        target, _store = self._resolve(name)
        return open_restore(
            target, segment_cache=self.cache, **self._reader_overrides
        )

    # ------------------------------------------------------------------ #
    # Write side
    # ------------------------------------------------------------------ #
    def _acquire_writer(self, name: str, state: _ArchiveState, wait: bool) -> None:
        if wait:
            acquired = state.writer_lock.acquire(timeout=self.lock_timeout)
        else:
            acquired = state.writer_lock.acquire(blocking=False)
        if not acquired:
            raise ArchiveBusyError(
                f"archive {name!r} has a write in progress"
                + ("" if wait else " (requested no-wait)")
            )

    def begin_upload(
        self,
        name: str,
        *,
        store: str = "container",
        replace: bool = False,
        wait: bool = True,
        **config_fields: object,
    ) -> WriteSession:
        """Start a fresh-archive upload session (holds the writer lock).

        ``store`` picks the layout (``container`` default, ``directory``);
        an existing archive under ``name`` is refused unless ``replace`` is
        true *and* the layouts agree (container targets truncate cleanly).
        """
        validate_archive_name(name)
        if store not in ("container", "directory"):
            raise BadRequestError(
                f"store {store!r} not servable; use 'container' or 'directory'"
            )
        state = self._state(name)
        self._acquire_writer(name, state, wait)
        try:
            located = self._existing(name)
            if located is not None:
                if not replace:
                    raise ArchiveBusyError(
                        f"archive {name!r} already exists; append to it or "
                        "pass replace=1 to overwrite"
                    )
                if located[1] != store:
                    raise BadRequestError(
                        f"archive {name!r} already uses the {located[1]!r} "
                        f"layout; cannot replace it with {store!r}"
                    )
                if store == "directory":
                    raise BadRequestError(
                        f"archive {name!r} uses the directory layout, which "
                        "does not support in-place replace; delete it first"
                    )
            target = (
                self.root / f"{name}{_CONTAINER_SUFFIX}"
                if store == "container"
                else self.root / name
            )
            config = ArchiveConfig(
                **{key: value for key, value in config_fields.items() if value is not None}  # type: ignore[arg-type]
            )
            writer = open_archive(config, target=target, store=store)
        except BaseException:
            state.writer_lock.release()
            raise
        return WriteSession(self, name, state, writer, store)

    def begin_append(self, name: str, *, wait: bool = True) -> WriteSession:
        """Start an append session extending an existing archive."""
        state = self._state(name)
        self._acquire_writer(name, state, wait)
        try:
            target, store = self._resolve(name)
            writer = open_archive(target=target, store=store, append=True)
        except BaseException:
            state.writer_lock.release()
            raise
        return WriteSession(self, name, state, writer, store)

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    def payload_length(self, name: str) -> int:
        """Total payload bytes of the archive's current generation."""
        with self._state(name).pool.reader() as reader:
            return reader.manifest.archive_bytes

    def read_range(self, name: str, offset: int, length: "int | None") -> "tuple[bytes, int]":
        """``(payload[offset:offset+length], total_bytes)`` via a pooled reader."""
        with self._state(name).pool.reader() as reader:
            total = reader.manifest.archive_bytes
            span = total - offset if length is None else length
            if span < 0:
                span = 0
            return reader.read_range(offset, span), total

    def verify(self, name: str, *, deep: bool = True) -> VerifyReport:
        """fsck the named archive on its store target."""
        with self._state(name).pool.reader() as reader:
            return reader.verify(deep=deep)

    def inspect(self, name: str) -> dict[str, object]:
        """The archive's manifest summary (no frame is read)."""
        target, store = self._resolve(name)
        with open_source(target) as source:
            manifest = source.manifest()
        return {
            "name": name,
            "store": store,
            "format_version": manifest.format_version,
            "generation": manifest.generation,
            "parent": manifest.parent,
            "profile": manifest.profile_name,
            "codec": manifest.dbcoder_profile,
            "payload_kind": manifest.payload_kind,
            "payload_bytes": manifest.archive_bytes,
            "payload_crc32": manifest.archive_crc32,
            "segment_size": manifest.segment_size,
            "segments": [segment.to_dict() for segment in manifest.segments],
            "data_emblems": manifest.data_emblem_count,
            "system_emblems": manifest.system_emblem_count,
            "config": manifest.config,
        }

    def list_archives(self) -> list[dict[str, object]]:
        """Every archive under the root, with cheap manifest facts."""
        names: set[str] = set()
        for path in sorted(self.root.iterdir()):
            if path.is_dir() and (path / MANIFEST_NAME).exists():
                names.add(path.name)
            elif path.is_file() and path.suffix == _CONTAINER_SUFFIX:
                names.add(path.stem)
        listing: list[dict[str, object]] = []
        for name in sorted(names):
            entry: dict[str, object] = {"name": name}
            try:
                target, store = self._resolve(name)
                with open_source(target) as source:
                    manifest = source.manifest()
                entry.update(
                    store=store,
                    generation=manifest.generation,
                    payload_bytes=manifest.archive_bytes,
                    segments=max(len(manifest.segments), 1),
                )
            except (StoreError, BadRequestError, ArchiveNotFoundError) as exc:
                # A damaged or mid-creation archive stays listed — with the
                # failure attached — rather than silently vanishing.
                entry["error"] = str(exc)
            listing.append(entry)
        return listing

    def stats(self) -> dict[str, object]:
        """Repository-level counters for ``GET /stats``."""
        return {
            "root": str(self.root),
            "archives": len(self.list_archives()),
            "segment_cache": self.cache.stats(),
        }

    def close(self) -> None:
        """Close every pooled reader (idempotent)."""
        with self._lock:
            states = list(self._states.values())
        for state in states:
            state.pool.close()


class _ReaderOpener:
    """Picklable/no-closure opener for :class:`_ReaderPool` (one per archive)."""

    def __init__(self, repository: ArchiveRepository, name: str):
        self._repository = repository
        self._name = name

    def __call__(self) -> ArchiveReader:
        return self._repository._open_reader(self._name)
