"""A byte-budgeted LRU cache of decoded segment payloads, shared by design.

Partial restore decodes whole *segments* even when the caller asked for a
few bytes — the emblem pipeline's unit of work is the segment.  Across a
multi-tenant server that cost is paid again and again for the same hot
segments, so :class:`SegmentCache` keeps the decoded payload bytes around,
keyed on the manifest-v3 per-segment **SHA-256** digest.

Content addressing is what makes sharing safe:

* one cache serves every archive, reader and request thread — two archives
  holding the same bytes even share entries;
* an appended generation can never surface stale data through the cache:
  its new segments hash to new keys, and the old segments it carries
  forward are byte-identical by construction;
* a re-uploaded (overwritten) archive likewise changes keys wherever it
  changed bytes.

The cache is a plain LRU over a byte budget: admitting an entry evicts
least-recently-used entries until the budget holds, and an entry larger
than the whole budget is declined outright (caching it would evict
everything for a single use).  All operations are thread-safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["SegmentCache"]

#: Default budget: enough for a few thousand small test segments or a
#: couple of hundred paper-profile ones without threatening a small host.
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024


class SegmentCache:
    """Byte-budgeted, thread-safe LRU of decoded segment payloads.

    Implements the :class:`repro.api.SegmentCacheLike` protocol consumed by
    :meth:`repro.api.ArchiveReader.read_range` — pass one instance to every
    ``open_restore`` call that should share it.

    Parameters
    ----------
    budget_bytes:
        Total payload bytes the cache may retain.  ``0`` disables caching
        (every ``get`` misses, every ``put`` is declined) while keeping the
        counters, so a cache-off server still reports coherent stats.
    """

    def __init__(self, budget_bytes: int = DEFAULT_CACHE_BYTES):
        if budget_bytes < 0:
            raise ValueError(f"cache budget must be >= 0, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, bytes] = OrderedDict()  # lint: guarded-by(_lock)
        self._bytes = 0  # lint: guarded-by(_lock)
        self._hits = 0  # lint: guarded-by(_lock)
        self._misses = 0  # lint: guarded-by(_lock)
        self._evictions = 0  # lint: guarded-by(_lock)

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> bytes | None:
        """The cached payload under ``key`` (refreshing its recency), or None."""
        with self._lock:
            data = self._entries.get(key)
            if data is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return data

    def put(self, key: str, data: bytes) -> None:
        """Admit ``data`` under ``key``, evicting LRU entries to fit.

        Oversized entries (larger than the whole budget) are declined; a
        re-``put`` of an existing key refreshes its recency and replaces
        the bytes (content addressing makes a changed value impossible in
        practice, but the cache does not rely on that).
        """
        size = len(data)
        if size > self.budget_bytes:
            return
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= len(previous)
            self._entries[key] = data
            self._bytes += size
            while self._bytes > self.budget_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept — they describe the lifetime)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def current_bytes(self) -> int:
        """Payload bytes currently retained."""
        with self._lock:
            return self._bytes

    def stats(self) -> dict[str, object]:
        """A consistent snapshot of the cache counters (one lock hold)."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "budget_bytes": self.budget_bytes,
                "current_bytes": self._bytes,
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": (self._hits / lookups) if lookups else 0.0,
            }
