"""``repro.server`` — the multi-tenant archive service.

A stdlib-only asyncio HTTP/1.1 front end (:mod:`~repro.server.app`) over a
thread-safe repository of named archives (:mod:`~repro.server.repository`),
sharing one content-addressed decoded-segment cache
(:mod:`~repro.server.cache`) across every archive, reader and request.

Quickstart::

    python -m repro serve --root ./repo --port 8765

or, in-process (tests / benchmarks)::

    from repro.server import ArchiveRepository, ReproServer

    with ReproServer(ArchiveRepository(root), port=0).start_in_thread() as handle:
        ...  # speak HTTP to handle.base_url
"""

from __future__ import annotations

from repro.server.app import ReproServer, ServerHandle
from repro.server.cache import SegmentCache
from repro.server.metrics import ServerMetrics
from repro.server.repository import ArchiveRepository, WriteSession

__all__ = [
    "ArchiveRepository",
    "ReproServer",
    "SegmentCache",
    "ServerHandle",
    "ServerMetrics",
    "WriteSession",
]
