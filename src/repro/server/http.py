"""A minimal HTTP/1.1 layer over :mod:`asyncio` streams.

The container image ships no third-party HTTP stack, and the archive
service needs very little of one: request-line + header parsing,
``Content-Length`` and ``chunked`` request bodies (uploads stream), byte
``Range`` parsing for ranged reads, and keep-alive responses with explicit
``Content-Length``.  This module implements exactly that — deliberately no
routing, no middleware, no TLS — so :mod:`repro.server.app` stays readable
and the whole wire format is auditable in one file.
"""

from __future__ import annotations

import asyncio
import json
import re
from dataclasses import dataclass, field
from typing import AsyncIterator
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HTTPError",
    "HTTPRequest",
    "iter_body",
    "parse_range",
    "read_body",
    "read_request",
    "send_response",
]

#: Reason phrases for the statuses the service actually emits.
STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    206: "Partial Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    416: "Range Not Satisfiable",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}

#: Ceiling on the total header block of one request.
_MAX_HEADER_BYTES = 64 * 1024
#: Read granularity for request bodies.
_BODY_CHUNK = 64 * 1024

_REQUEST_LINE_RE = re.compile(r"^([A-Z]+) (\S+) HTTP/(1\.[01])$")
_RANGE_RE = re.compile(r"^bytes=(\d*)-(\d*)$")


class HTTPError(Exception):
    """An error with a definite HTTP status (the handler's short-circuit)."""

    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(f"{status}: {message}")


@dataclass
class HTTPRequest:
    """One parsed request head (the body stays on the stream reader)."""

    method: str
    target: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    version: str = "1.1"

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked (or defaults) to reuse the connection."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "1.1":
            return connection != "close"
        return connection == "keep-alive"

    def flag(self, name: str) -> bool:
        """A boolean query parameter (absent/0/false/no -> False)."""
        value = self.query.get(name)
        return value is not None and value.lower() not in ("", "0", "false", "no")

    def int_param(self, name: str) -> "int | None":
        value = self.query.get(name)
        if value is None:
            return None
        try:
            return int(value)
        except ValueError:
            raise HTTPError(400, f"query parameter {name!r} must be an integer") from None


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        return await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise HTTPError(431, "request line or header line too long") from None


async def read_request(reader: asyncio.StreamReader) -> "HTTPRequest | None":
    """Parse one request head; ``None`` on clean end-of-stream.

    Raises :class:`HTTPError` on malformed requests (the caller answers
    with the carried status and closes the connection).
    """
    line = await _read_line(reader)
    if not line:
        return None
    text = line.decode("latin-1").strip()
    if not text:  # tolerate a stray CRLF between keep-alive requests
        line = await _read_line(reader)
        if not line:
            return None
        text = line.decode("latin-1").strip()
    matched = _REQUEST_LINE_RE.match(text)
    if matched is None:
        raise HTTPError(400, f"malformed request line: {text[:80]!r}")
    method, target, version = matched.groups()
    split = urlsplit(target)
    query = {key: value for key, value in parse_qsl(split.query, keep_blank_values=True)}
    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await _read_line(reader)
        if not line:
            raise HTTPError(400, "connection closed inside the header block")
        header_bytes += len(line)
        if header_bytes > _MAX_HEADER_BYTES:
            raise HTTPError(431, "request header block too large")
        text = line.decode("latin-1").rstrip("\r\n")
        if not text:
            break
        name, separator, value = text.partition(":")
        if not separator:
            raise HTTPError(400, f"malformed header line: {text[:80]!r}")
        headers[name.strip().lower()] = value.strip()
    return HTTPRequest(
        method=method,
        target=target,
        path=unquote(split.path),
        query=query,
        headers=headers,
        version=version,
    )


async def iter_body(
    reader: asyncio.StreamReader, request: HTTPRequest
) -> AsyncIterator[bytes]:
    """The request body as a stream of chunks (chunked or Content-Length).

    A request with neither ``Transfer-Encoding: chunked`` nor a
    ``Content-Length`` yields nothing (GET and friends).
    """
    encoding = request.headers.get("transfer-encoding", "").lower()
    if "chunked" in encoding:
        while True:
            size_line = await _read_line(reader)
            if not size_line:
                raise HTTPError(400, "truncated chunked body (no chunk size)")
            try:
                size = int(size_line.split(b";", 1)[0].strip() or b"0", 16)
            except ValueError:
                raise HTTPError(400, "malformed chunk size") from None
            if size == 0:
                while True:  # drain the (usually empty) trailer section
                    trailer = await _read_line(reader)
                    if trailer in (b"\r\n", b"\n", b""):
                        return
                    continue
            remaining = size
            while remaining:
                chunk = await reader.read(min(remaining, _BODY_CHUNK))
                if not chunk:
                    raise HTTPError(400, "truncated chunked body")
                remaining -= len(chunk)
                yield chunk
            await _read_line(reader)  # the CRLF terminating the chunk
        return
    length_header = request.headers.get("content-length")
    if length_header is None:
        return
    try:
        remaining = int(length_header)
    except ValueError:
        raise HTTPError(400, "malformed Content-Length") from None
    if remaining < 0:
        raise HTTPError(400, "negative Content-Length")
    while remaining:
        chunk = await reader.read(min(remaining, _BODY_CHUNK))
        if not chunk:
            raise HTTPError(400, "truncated request body")
        remaining -= len(chunk)
        yield chunk


async def read_body(
    reader: asyncio.StreamReader, request: HTTPRequest, limit: int
) -> bytes:
    """The whole request body, bounded by ``limit`` bytes."""
    parts: list[bytes] = []
    total = 0
    async for chunk in iter_body(reader, request):
        total += len(chunk)
        if total > limit:
            raise HTTPError(413, f"request body larger than {limit} bytes")
        parts.append(chunk)
    return b"".join(parts)


def parse_range(header: str, total: int) -> "tuple[int, int]":
    """An HTTP ``Range`` header as ``(offset, length)`` against ``total``.

    Supports the single-range forms ``bytes=a-b``, ``bytes=a-`` and the
    suffix ``bytes=-n``; raises 400 on syntax errors and 416 when the range
    does not overlap ``[0, total)`` — exactly the RFC 9110 semantics a
    generic HTTP client expects from a ranged read.
    """
    matched = _RANGE_RE.match(header.strip())
    if matched is None:
        raise HTTPError(400, f"unsupported Range header {header!r}")
    start_text, end_text = matched.groups()
    if not start_text and not end_text:
        raise HTTPError(400, f"unsupported Range header {header!r}")
    if not start_text:  # suffix form: the last N bytes
        suffix = int(end_text)
        if suffix == 0 or total == 0:
            raise HTTPError(416, f"range {header!r} not satisfiable for {total} bytes")
        offset = max(total - suffix, 0)
        return offset, total - offset
    offset = int(start_text)
    if offset >= total:
        raise HTTPError(416, f"range {header!r} not satisfiable for {total} bytes")
    if not end_text:
        return offset, total - offset
    end = int(end_text)
    if end < offset:
        raise HTTPError(400, f"inverted Range header {header!r}")
    return offset, min(end, total - 1) - offset + 1


async def send_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    headers: "dict[str, str] | None" = None,
    keep_alive: bool = True,
) -> None:
    """Write one complete response (explicit Content-Length, no chunking)."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {phrase}"]
    lines.append(f"Content-Type: {content_type}")
    lines.append(f"Content-Length: {len(body)}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + body)
    await writer.drain()


def json_body(payload: object) -> bytes:
    """Canonical JSON encoding for service responses."""
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
