"""Adaptive arithmetic coding (the entropy-coding half of DBCoder's DENSE profile).

The paper describes DBCoder's generic scheme as "LZ77 and arithmetic coding"
with compression performance close to 7-Zip's LZMA.  This module provides the
arithmetic-coding stage: an adaptive order-0 coder over a 257-symbol alphabet
(256 byte values plus an end-of-stream symbol), using 32-bit integer range
arithmetic and a Fenwick tree for the adaptive frequency model so encoding and
decoding stay O(log n) per symbol.
"""

from __future__ import annotations

from repro.errors import DecompressionError

_EOF_SYMBOL = 256
_ALPHABET = 257

_TOP = 0xFFFFFFFF
_HALF = 0x80000000
_QUARTER = 0x40000000
_THREE_QUARTERS = 0xC0000000

#: Frequencies are rescaled once the total exceeds this bound, which both
#: keeps the model adaptive and guarantees ``total <= range`` never overflows.
_MAX_TOTAL = 1 << 16

#: Increment applied to a symbol's frequency each time it is coded.
_INCREMENT = 32


class _FrequencyModel:
    """Adaptive order-0 frequency model backed by a Fenwick tree."""

    def __init__(self) -> None:
        self._freq = [1] * _ALPHABET
        self._tree = [0] * (_ALPHABET + 1)
        for symbol in range(_ALPHABET):
            self._tree_add(symbol + 1, 1)
        self.total = _ALPHABET

    def _tree_add(self, index: int, delta: int) -> None:
        while index <= _ALPHABET:
            self._tree[index] += delta
            index += index & (-index)

    def _prefix(self, index: int) -> int:
        """Sum of frequencies of symbols < index."""
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total

    def interval(self, symbol: int) -> tuple[int, int, int]:
        """Return (cum_low, cum_high, total) for ``symbol``."""
        low = self._prefix(symbol)
        return low, low + self._freq[symbol], self.total

    def find(self, value: int) -> int:
        """Return the symbol whose cumulative interval contains ``value``."""
        index = 0
        mask = 1
        while mask * 2 <= _ALPHABET:
            mask *= 2
        remaining = value
        while mask:
            probe = index + mask
            if probe <= _ALPHABET and self._tree[probe] <= remaining:
                index = probe
                remaining -= self._tree[probe]
            mask //= 2
        return index

    def update(self, symbol: int) -> None:
        """Increase the frequency of ``symbol``, rescaling when needed."""
        self._freq[symbol] += _INCREMENT
        self._tree_add(symbol + 1, _INCREMENT)
        self.total += _INCREMENT
        if self.total > _MAX_TOTAL:
            self._rescale()

    def _rescale(self) -> None:
        self._freq = [(count + 1) // 2 for count in self._freq]
        self._tree = [0] * (_ALPHABET + 1)
        for symbol, count in enumerate(self._freq):
            self._tree_add(symbol + 1, count)
        self.total = sum(self._freq)


class _BitOutput:
    """MSB-first bit sink used by the encoder."""

    def __init__(self) -> None:
        self.buffer = bytearray()
        self._current = 0
        self._count = 0

    def put(self, bit: int) -> None:
        self._current = (self._current << 1) | bit
        self._count += 1
        if self._count == 8:
            self.buffer.append(self._current)
            self._current = 0
            self._count = 0

    def finish(self) -> bytes:
        if self._count:
            self.buffer.append(self._current << (8 - self._count))
        return bytes(self.buffer)


class _BitInput:
    """MSB-first bit source used by the decoder; reads 0 past the end.

    The number of bits read past the end of the buffer is tracked so the
    decoder can tell a legitimately finished stream (the final symbol may
    need a few phantom zero bits) from a corrupt one that never terminates.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self._current = 0
        self._count = 0
        self.past_end_bits = 0

    def get(self) -> int:
        if self._count == 0:
            if self._pos < len(self._data):
                self._current = self._data[self._pos]
                self._pos += 1
            else:
                self._current = 0
                self.past_end_bits += 8
            self._count = 8
        self._count -= 1
        return (self._current >> self._count) & 1


def arithmetic_encode(data: bytes) -> bytes:
    """Encode ``data`` with the adaptive arithmetic coder."""
    model = _FrequencyModel()
    output = _BitOutput()
    low = 0
    high = _TOP
    pending = 0

    def emit(bit: int) -> None:
        nonlocal pending
        output.put(bit)
        while pending:
            output.put(1 - bit)
            pending -= 1

    symbols = list(data) + [_EOF_SYMBOL]
    for symbol in symbols:
        cum_low, cum_high, total = model.interval(symbol)
        span = high - low + 1
        high = low + (span * cum_high) // total - 1
        low = low + (span * cum_low) // total
        while True:
            if high < _HALF:
                emit(0)
            elif low >= _HALF:
                emit(1)
                low -= _HALF
                high -= _HALF
            elif low >= _QUARTER and high < _THREE_QUARTERS:
                pending += 1
                low -= _QUARTER
                high -= _QUARTER
            else:
                break
            low = low * 2
            high = high * 2 + 1
        model.update(symbol)

    pending += 1
    if low < _QUARTER:
        emit(0)
    else:
        emit(1)
    return output.finish()


def arithmetic_decode(stream: bytes) -> bytes:
    """Decode a stream produced by :func:`arithmetic_encode`.

    Raises
    ------
    DecompressionError
        If the stream ends before the end-of-stream symbol is decoded.
    """
    model = _FrequencyModel()
    bits = _BitInput(stream)

    low = 0
    high = _TOP
    code = 0
    for _ in range(32):
        code = (code << 1) | bits.get()

    output = bytearray()
    while True:
        # A well-formed stream reaches its EOF symbol using at most a few
        # phantom bits beyond the buffer; anything more means corruption.
        if bits.past_end_bits > 128:
            break
        total = model.total
        span = high - low + 1
        value = ((code - low + 1) * total - 1) // span
        symbol = model.find(value)
        cum_low, cum_high, total = model.interval(symbol)
        high = low + (span * cum_high) // total - 1
        low = low + (span * cum_low) // total
        while True:
            if high < _HALF:
                pass
            elif low >= _HALF:
                low -= _HALF
                high -= _HALF
                code -= _HALF
            elif low >= _QUARTER and high < _THREE_QUARTERS:
                low -= _QUARTER
                high -= _QUARTER
                code -= _QUARTER
            else:
                break
            low = low * 2
            high = high * 2 + 1
            code = (code << 1) | bits.get()
        model.update(symbol)
        if symbol == _EOF_SYMBOL:
            return bytes(output)
        output.append(symbol)
    raise DecompressionError("arithmetic stream ended without an end-of-stream symbol")
