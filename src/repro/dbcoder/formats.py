"""The DBCoder container format.

The compressed payload is wrapped in a small self-describing header so that a
restoration can (a) know which decoding profile to apply and (b) prove that
the archive was recovered bit-for-bit, via the stored CRC-32 and original
length.

Layout (all integers little-endian)::

    offset  size  field
    0       4     magic  b"ULEA"
    4       1     format version (currently 1)
    5       1     profile identifier
    6       2     reserved (zero)
    8       4     original (uncompressed) length in bytes
    12      4     CRC-32 of the original data
    16      4     payload length in bytes
    20      n     payload
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ContainerFormatError
from repro.util.crc import crc32_of

MAGIC = b"ULEA"
FORMAT_VERSION = 1
HEADER_SIZE = 20

_HEADER_STRUCT = struct.Struct("<4sBBHIII")


@dataclass(frozen=True)
class ContainerHeader:
    """Parsed DBCoder container header."""

    version: int
    profile_id: int
    original_length: int
    original_crc32: int
    payload_length: int


def pack_container(profile_id: int, original_data: bytes, payload: bytes) -> bytes:
    """Wrap ``payload`` in a container describing ``original_data``."""
    header = _HEADER_STRUCT.pack(
        MAGIC,
        FORMAT_VERSION,
        profile_id & 0xFF,
        0,
        len(original_data),
        crc32_of(original_data),
        len(payload),
    )
    return header + payload


def unpack_container(container: bytes) -> tuple[ContainerHeader, bytes]:
    """Split a container into its parsed header and payload.

    Raises
    ------
    ContainerFormatError
        If the magic, version, or advertised payload length do not match.
    """
    if len(container) < HEADER_SIZE:
        raise ContainerFormatError(
            f"container too short: {len(container)} bytes < header size {HEADER_SIZE}"
        )
    magic, version, profile_id, _reserved, original_length, original_crc32, payload_length = (
        _HEADER_STRUCT.unpack(container[:HEADER_SIZE])
    )
    if magic != MAGIC:
        raise ContainerFormatError(f"bad container magic: {magic!r}")
    if version != FORMAT_VERSION:
        raise ContainerFormatError(f"unsupported container version: {version}")
    payload = container[HEADER_SIZE:]
    if len(payload) != payload_length:
        raise ContainerFormatError(
            f"payload length mismatch: header says {payload_length}, got {len(payload)}"
        )
    header = ContainerHeader(
        version=version,
        profile_id=profile_id,
        original_length=original_length,
        original_crc32=original_crc32,
        payload_length=payload_length,
    )
    return header, payload
