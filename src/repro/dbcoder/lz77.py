"""Byte-aligned LZSS compression (the LZ77 half of DBCoder).

The stream format is deliberately byte-aligned and minimal so that the
archived DynaRisc decoder (:mod:`repro.dynarisc.programs.lzss`) stays small —
the paper's whole point is that the decoder must be easy to run in a far
future with almost no infrastructure.

Format
------
The stream is a sequence of *groups*.  Each group is one flag byte followed by
up to eight items; bit ``i`` of the flag byte (LSB first) describes item ``i``:

* flag bit 1 — the item is a single literal byte;
* flag bit 0 — the item is a match: two bytes encoding a backwards offset
  (1..4095) and a length (3..18)::

      byte0 = offset & 0xFF
      byte1 = ((offset >> 8) << 4) | (length - 3)

The stream carries no explicit length; decoding stops at end of input, which
matches the memory-mapped input port semantics of the emulated decoder.
Matches may overlap the current position (offset < length), which both the
Python and the DynaRisc decoders handle by copying byte-by-byte.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DecompressionError

#: Sliding-window size (offsets must fit in 12 bits).
WINDOW_SIZE = 4096

#: Minimum match length worth encoding (a 2-byte match token must beat it).
MIN_MATCH = 3

#: Maximum match length encodable in the 4-bit length field.
MAX_MATCH = 18


#: Longest hash chain the compressor walks per position.  128 recent
#: candidates recover effectively all of the exhaustive search's ratio on
#: text/SQL payloads while bounding the worst case on pathological inputs.
MAX_CHAIN = 128


def _find_longest_match(data: bytes, pos: int, limit: int) -> tuple[int, int]:
    """Return ``(offset, length)`` of the longest window match at ``pos``.

    The exhaustive reference matcher (``bytes.rfind`` per candidate length
    over the whole 4095-byte window).  The production compressor uses hash
    chains instead; this stays as the ground truth for the equivalence
    tests.  Returns ``(0, 0)`` when no match of at least MIN_MATCH exists.
    """
    best_offset = 0
    best_length = 0
    window_start = max(0, pos - (WINDOW_SIZE - 1))
    length = MIN_MATCH
    while length <= limit:
        # The search region ends at pos + length - 1 so any hit starts at an
        # index <= pos - 1, i.e. strictly before the current position, while
        # still allowing matches that overlap the bytes being encoded.
        index = data.rfind(data[pos:pos + length], window_start, pos + length - 1)
        if index < 0:
            break
        best_offset = pos - index
        best_length = length
        length += 1
    return best_offset, best_length


#: Minimum remaining candidates before the matcher switches from scalar to
#: numpy-batched rejection; below this the array call costs more than it
#: saves.
_BATCH_MIN = 16


def _build_chains(data: bytes) -> list[int]:
    """Hash chains for every position, built in one vectorised pass.

    ``chains[pos]`` is the nearest earlier position whose 3-byte prefix
    equals the one at ``pos`` (or -1).  A stable argsort over the packed
    prefix keys groups equal keys in position order, so each element's
    predecessor within its group is exactly the chain link the incremental
    dict-based filing of the reference compressor would produce — the whole
    ``head``/``prev`` bookkeeping collapses into three array ops.
    """
    n = len(data)
    if n < MIN_MATCH:
        return []
    arr = np.frombuffer(data, dtype=np.uint8)
    keys = (
        arr[:-2].astype(np.int32)
        | (arr[1:-1].astype(np.int32) << 8)
        | (arr[2:].astype(np.int32) << 16)
    )
    order = np.argsort(keys, kind="stable")
    chains = np.full(n - 2, -1, dtype=np.int64)
    same = keys[order[1:]] == keys[order[:-1]]
    chains[order[1:][same]] = order[:-1][same]
    return chains.tolist()


def _scan_tail(
    data: bytes,
    data_arr: np.ndarray,
    chains: list[int],
    pos: int,
    limit: int,
    chain: int,
    candidate: int,
    window_start: int,
    best_offset: int,
    best_length: int,
) -> tuple[int, int]:
    """Finish a chain walk with numpy-batched candidate rejection.

    Entered from the scalar walk after a streak of rejections (so a current
    best exists and many more rejections are likely).  Gathers the
    rejection byte ``data[candidate + best_length]`` across every remaining
    candidate in one indexed read and jumps from survivor to survivor; the
    gather is redone only when ``best_length`` grows (at most ``MAX_MATCH``
    times).  Examines exactly the candidates the scalar walk would have,
    in the same order — bit-identical results, without the per-candidate
    Python compare on the rejected ones.
    """
    tail: list[int] = []
    while candidate >= 0 and candidate >= window_start and len(tail) < chain:
        tail.append(candidate)
        candidate = chains[candidate]
    count = len(tail)
    if not count:
        return best_offset, best_length
    tail_arr = np.asarray(tail, dtype=np.intp)
    hits: np.ndarray | None = None
    hits_pos = 0
    hits_length = -1  # best_length the current gather is valid for
    index = 0
    while index < count:
        if hits_length != best_length:
            hits = index + np.nonzero(
                data_arr[tail_arr[index:] + best_length] == data[pos + best_length]
            )[0]
            hits_pos = 0
            hits_length = best_length
        if hits_pos >= len(hits):
            break
        index = int(hits[hits_pos])
        hits_pos += 1
        surviving = tail[index]
        index += 1
        length = 0
        while length < limit and data[surviving + length] == data[pos + length]:
            length += 1
        if length > best_length:
            best_length = length
            best_offset = pos - surviving
            if length == limit:
                break
    return best_offset, best_length


def lzss_compress(data: bytes, max_chain: int = MAX_CHAIN, lazy: bool = True) -> bytes:
    """Compress ``data`` with LZSS parsing over hash chains.

    The chains over 3-byte prefixes are built up front in one vectorised
    pass (:func:`_build_chains`); matching walks each chain newest-first
    (so ties keep the smallest offset, like the reference matcher),
    stopping early when the maximum encodable length is reached or
    ``max_chain`` candidates were tried.  Long chains batch the one-byte
    candidate rejection test through numpy, skipping straight to the next
    viable candidate.  Output is bit-identical to
    :func:`_lzss_compress_reference`, which keeps the incremental
    dict-filed scan as ground truth.

    ``max_chain=0`` disables matching entirely — every byte is emitted as a
    literal, in both the greedy and the lazy parse.

    With ``lazy`` (the default) the parse adds one token of lookahead: when
    a match is found at ``pos``, the matcher also probes ``pos + 1``, and if
    the next position matches *longer*, the current byte is emitted as a
    literal so the longer match wins — the classic lazy-evaluation parse
    (deflate's ``max_lazy`` idea), worth a few percent of ratio on text/SQL
    at a modest throughput cost.  ``lazy=False`` reproduces the greedy
    parse byte for byte, which is what the exhaustive-matcher equivalence
    test pins.  The stream format is unchanged either way.

    Empty input compresses to an empty stream.
    """
    data = bytes(data)
    n = len(data)
    if n == 0:
        return b""

    out = bytearray()
    flags = 0
    flag_count = 0
    group = bytearray()
    chains = _build_chains(data)
    data_arr = np.frombuffer(data, dtype=np.uint8)

    def find_match(pos: int, limit: int, floor: int = 0, chain: int | None = None) -> tuple[int, int]:
        """Longest chain match at ``pos``.

        ``floor`` sets a length the match must strictly beat; the lazy probe
        passes the current match's length, so most candidates die on the
        single-byte rejection test instead of a full comparison.  ``chain``
        caps the candidates walked (the probe uses a quarter budget, as
        deflate does).  Returns ``(0, floor)`` when nothing beats the floor.
        """
        best_offset = 0
        best_length = floor
        candidate = chains[pos]
        window_start = pos - (WINDOW_SIZE - 1)
        if chain is None:
            chain = max_chain
        misses = 0
        while candidate >= 0 and candidate >= window_start and chain > 0:
            chain -= 1
            # A longer match must extend past the current best; one byte
            # rejects most candidates without a full comparison.
            if not best_length or data[candidate + best_length] == data[pos + best_length]:
                length = 0
                while length < limit and data[candidate + length] == data[pos + length]:
                    length += 1
                if length > best_length:
                    best_length = length
                    best_offset = pos - candidate
                    if length == limit:
                        break
                misses = 0
            else:
                misses += 1
                if misses >= _BATCH_MIN and chain >= _BATCH_MIN:
                    # A long rejection streak with plenty of budget left:
                    # hand the remaining chain to the batched tail scan,
                    # which gathers the rejection byte over all remaining
                    # candidates at once and jumps survivor to survivor.
                    return _scan_tail(
                        data, data_arr, chains, pos, limit, chain,
                        chains[candidate], window_start,
                        best_offset, best_length,
                    )
            candidate = chains[candidate]
        return best_offset, best_length

    def flush_group() -> None:
        nonlocal flags, flag_count, group
        if flag_count:
            out.append(flags)
            out.extend(group)
            flags = 0
            flag_count = 0
            group = bytearray()

    pos = 0
    carried: tuple[int, int] | None = None  # match pre-computed by a lazy probe
    while pos < n:
        limit = min(MAX_MATCH, n - pos)
        if carried is not None:
            best_offset, best_length = carried
            carried = None
        elif limit >= MIN_MATCH:
            best_offset, best_length = find_match(pos, limit)
        else:
            best_offset, best_length = 0, 0

        if lazy and MIN_MATCH <= best_length < limit:
            # One-token lookahead: if pos+1 matches strictly longer, demote
            # this position to a literal and keep the longer match.  A zero
            # max_chain stays zero here too, so literal-only mode holds for
            # the probe as well as the main scan.
            next_limit = min(MAX_MATCH, n - pos - 1)
            if next_limit > best_length:
                next_offset, next_length = find_match(
                    pos + 1,
                    next_limit,
                    floor=best_length,
                    chain=max(1, max_chain // 4) if max_chain else 0,
                )
                if next_offset:
                    flags |= 1 << flag_count
                    group.append(data[pos])
                    carried = (next_offset, next_length)
                    pos += 1
                    flag_count += 1
                    if flag_count == 8:
                        flush_group()
                    continue

        if best_length >= MIN_MATCH:
            group.append(best_offset & 0xFF)
            group.append(((best_offset >> 8) << 4) | (best_length - MIN_MATCH))
            pos += best_length
        else:
            flags |= 1 << flag_count
            group.append(data[pos])
            pos += 1
        flag_count += 1
        if flag_count == 8:
            flush_group()
    flush_group()
    return bytes(out)


def _lzss_compress_reference(
    data: bytes, max_chain: int = MAX_CHAIN, lazy: bool = True
) -> bytes:
    """The incremental dict-filed compressor (pre-vectorisation).

    Files each position under its 3-byte prefix as the scan advances, the
    classic ``head``/``prev`` hash-chain bookkeeping.  Kept as the ground
    truth the vectorised :func:`lzss_compress` must match byte for byte,
    and as the baseline its benchmark is measured against.
    """
    data = bytes(data)
    n = len(data)
    if n == 0:
        return b""

    out = bytearray()
    flags = 0
    flag_count = 0
    group = bytearray()
    head: dict[int, int] = {}
    prev = [-1] * max(0, n - 2)
    filed = 0  # positions < filed are already in the hash chains

    def file_through(end: int) -> None:
        """File positions ``filed .. end-1`` under their 3-byte prefixes.

        Positions in the final two bytes have no full key and are skipped.
        """
        nonlocal filed
        stop = min(end, n - 2)
        while filed < stop:
            key = data[filed] | (data[filed + 1] << 8) | (data[filed + 2] << 16)
            prev[filed] = head.get(key, -1)
            head[key] = filed
            filed += 1
        if end > filed:
            filed = end

    def find_match(pos: int, limit: int, floor: int = 0, chain: int | None = None) -> tuple[int, int]:
        best_offset = 0
        best_length = floor
        key = data[pos] | (data[pos + 1] << 8) | (data[pos + 2] << 16)
        candidate = head.get(key, -1)
        window_start = pos - (WINDOW_SIZE - 1)
        if chain is None:
            chain = max_chain
        while candidate >= 0 and candidate >= window_start and chain > 0:
            chain -= 1
            if not best_length or data[candidate + best_length] == data[pos + best_length]:
                length = 0
                while length < limit and data[candidate + length] == data[pos + length]:
                    length += 1
                if length > best_length:
                    best_length = length
                    best_offset = pos - candidate
                    if length == limit:
                        break
            candidate = prev[candidate]
        return best_offset, best_length

    def flush_group() -> None:
        nonlocal flags, flag_count, group
        if flag_count:
            out.append(flags)
            out.extend(group)
            flags = 0
            flag_count = 0
            group = bytearray()

    pos = 0
    carried: tuple[int, int] | None = None
    while pos < n:
        limit = min(MAX_MATCH, n - pos)
        if carried is not None:
            best_offset, best_length = carried
            carried = None
        elif limit >= MIN_MATCH:
            file_through(pos)
            best_offset, best_length = find_match(pos, limit)
        else:
            best_offset, best_length = 0, 0

        if lazy and MIN_MATCH <= best_length < limit:
            next_limit = min(MAX_MATCH, n - pos - 1)
            if next_limit > best_length:
                file_through(pos + 1)
                next_offset, next_length = find_match(
                    pos + 1,
                    next_limit,
                    floor=best_length,
                    chain=max(1, max_chain // 4) if max_chain else 0,
                )
                if next_offset:
                    flags |= 1 << flag_count
                    group.append(data[pos])
                    carried = (next_offset, next_length)
                    pos += 1
                    flag_count += 1
                    if flag_count == 8:
                        flush_group()
                    continue

        if best_length >= MIN_MATCH:
            group.append(best_offset & 0xFF)
            group.append(((best_offset >> 8) << 4) | (best_length - MIN_MATCH))
            pos += best_length
        else:
            flags |= 1 << flag_count
            group.append(data[pos])
            pos += 1
        flag_count += 1
        if flag_count == 8:
            flush_group()
    flush_group()
    return bytes(out)


def lzss_decompress(stream: bytes) -> bytes:
    """Decompress an LZSS stream (Python reference for the DynaRisc decoder).

    Raises
    ------
    DecompressionError
        If a match token references history that does not exist.
    """
    out = bytearray()
    pos = 0
    n = len(stream)
    while pos < n:
        flags = stream[pos]
        pos += 1
        for item in range(8):
            if pos >= n:
                break
            if (flags >> item) & 1:
                out.append(stream[pos])
                pos += 1
            else:
                if pos + 1 >= n:
                    # A trailing, half-written match token means the encoder
                    # stopped mid-stream; treat it as end of data.
                    pos = n
                    break
                byte0 = stream[pos]
                byte1 = stream[pos + 1]
                pos += 2
                offset = byte0 | ((byte1 >> 4) << 8)
                length = (byte1 & 0x0F) + MIN_MATCH
                if offset == 0 or offset > len(out):
                    raise DecompressionError(
                        f"match offset {offset} exceeds decoded history ({len(out)} bytes)"
                    )
                start = len(out) - offset
                for index in range(length):
                    out.append(out[start + index])
    return bytes(out)
