"""Byte-aligned LZSS compression (the LZ77 half of DBCoder).

The stream format is deliberately byte-aligned and minimal so that the
archived DynaRisc decoder (:mod:`repro.dynarisc.programs.lzss`) stays small —
the paper's whole point is that the decoder must be easy to run in a far
future with almost no infrastructure.

Format
------
The stream is a sequence of *groups*.  Each group is one flag byte followed by
up to eight items; bit ``i`` of the flag byte (LSB first) describes item ``i``:

* flag bit 1 — the item is a single literal byte;
* flag bit 0 — the item is a match: two bytes encoding a backwards offset
  (1..4095) and a length (3..18)::

      byte0 = offset & 0xFF
      byte1 = ((offset >> 8) << 4) | (length - 3)

The stream carries no explicit length; decoding stops at end of input, which
matches the memory-mapped input port semantics of the emulated decoder.
Matches may overlap the current position (offset < length), which both the
Python and the DynaRisc decoders handle by copying byte-by-byte.
"""

from __future__ import annotations

from repro.errors import DecompressionError

#: Sliding-window size (offsets must fit in 12 bits).
WINDOW_SIZE = 4096

#: Minimum match length worth encoding (a 2-byte match token must beat it).
MIN_MATCH = 3

#: Maximum match length encodable in the 4-bit length field.
MAX_MATCH = 18


#: Longest hash chain the compressor walks per position.  128 recent
#: candidates recover effectively all of the exhaustive search's ratio on
#: text/SQL payloads while bounding the worst case on pathological inputs.
MAX_CHAIN = 128


def _find_longest_match(data: bytes, pos: int, limit: int) -> tuple[int, int]:
    """Return ``(offset, length)`` of the longest window match at ``pos``.

    The exhaustive reference matcher (``bytes.rfind`` per candidate length
    over the whole 4095-byte window).  The production compressor uses hash
    chains instead; this stays as the ground truth for the equivalence
    tests.  Returns ``(0, 0)`` when no match of at least MIN_MATCH exists.
    """
    best_offset = 0
    best_length = 0
    window_start = max(0, pos - (WINDOW_SIZE - 1))
    length = MIN_MATCH
    while length <= limit:
        # The search region ends at pos + length - 1 so any hit starts at an
        # index <= pos - 1, i.e. strictly before the current position, while
        # still allowing matches that overlap the bytes being encoded.
        index = data.rfind(data[pos:pos + length], window_start, pos + length - 1)
        if index < 0:
            break
        best_offset = pos - index
        best_length = length
        length += 1
    return best_offset, best_length


def lzss_compress(data: bytes, max_chain: int = MAX_CHAIN, lazy: bool = True) -> bytes:
    """Compress ``data`` with LZSS parsing over hash chains.

    Every position is filed under its 3-byte prefix; matching walks the
    chain of previous occurrences newest-first (so ties keep the smallest
    offset, like the reference matcher), stopping early when the maximum
    encodable length is reached or ``max_chain`` candidates were tried.

    With ``lazy`` (the default) the parse adds one token of lookahead: when
    a match is found at ``pos``, the matcher also probes ``pos + 1``, and if
    the next position matches *longer*, the current byte is emitted as a
    literal so the longer match wins — the classic lazy-evaluation parse
    (deflate's ``max_lazy`` idea), worth a few percent of ratio on text/SQL
    at a modest throughput cost.  ``lazy=False`` reproduces the greedy
    parse byte for byte, which is what the exhaustive-matcher equivalence
    test pins.  The stream format is unchanged either way.

    Empty input compresses to an empty stream.
    """
    data = bytes(data)
    n = len(data)
    if n == 0:
        return b""

    out = bytearray()
    flags = 0
    flag_count = 0
    group = bytearray()
    head: dict[int, int] = {}
    prev = [-1] * max(0, n - 2)
    filed = 0  # positions < filed are already in the hash chains

    def file_through(end: int) -> None:
        """File positions ``filed .. end-1`` under their 3-byte prefixes.

        Positions in the final two bytes have no full key and are skipped.
        """
        nonlocal filed
        stop = min(end, n - 2)
        while filed < stop:
            key = data[filed] | (data[filed + 1] << 8) | (data[filed + 2] << 16)
            prev[filed] = head.get(key, -1)
            head[key] = filed
            filed += 1
        if end > filed:
            filed = end

    def find_match(pos: int, limit: int, floor: int = 0, chain: int | None = None) -> tuple[int, int]:
        """Longest chain match at ``pos`` (positions < pos must be filed).

        ``floor`` sets a length the match must strictly beat; the lazy probe
        passes the current match's length, so most candidates die on the
        single-byte rejection test instead of a full comparison.  ``chain``
        caps the candidates walked (the probe uses a quarter budget, as
        deflate does).  Returns ``(0, floor)`` when nothing beats the floor.
        """
        best_offset = 0
        best_length = floor
        key = data[pos] | (data[pos + 1] << 8) | (data[pos + 2] << 16)
        candidate = head.get(key, -1)
        window_start = pos - (WINDOW_SIZE - 1)
        if chain is None:
            chain = max_chain
        while candidate >= 0 and candidate >= window_start and chain > 0:
            chain -= 1
            # A longer match must extend past the current best; one byte
            # rejects most candidates without a full comparison.
            if not best_length or data[candidate + best_length] == data[pos + best_length]:
                length = 0
                while length < limit and data[candidate + length] == data[pos + length]:
                    length += 1
                if length > best_length:
                    best_length = length
                    best_offset = pos - candidate
                    if length == limit:
                        break
            candidate = prev[candidate]
        return best_offset, best_length

    def flush_group() -> None:
        nonlocal flags, flag_count, group
        if flag_count:
            out.append(flags)
            out.extend(group)
            flags = 0
            flag_count = 0
            group = bytearray()

    pos = 0
    carried: tuple[int, int] | None = None  # match pre-computed by a lazy probe
    while pos < n:
        limit = min(MAX_MATCH, n - pos)
        if carried is not None:
            best_offset, best_length = carried
            carried = None
        elif limit >= MIN_MATCH:
            file_through(pos)
            best_offset, best_length = find_match(pos, limit)
        else:
            best_offset, best_length = 0, 0

        if lazy and MIN_MATCH <= best_length < limit:
            # One-token lookahead: if pos+1 matches strictly longer, demote
            # this position to a literal and keep the longer match.
            next_limit = min(MAX_MATCH, n - pos - 1)
            if next_limit > best_length:
                file_through(pos + 1)
                next_offset, next_length = find_match(
                    pos + 1, next_limit, floor=best_length, chain=max(1, max_chain // 4)
                )
                if next_offset:
                    flags |= 1 << flag_count
                    group.append(data[pos])
                    carried = (next_offset, next_length)
                    pos += 1
                    flag_count += 1
                    if flag_count == 8:
                        flush_group()
                    continue

        if best_length >= MIN_MATCH:
            group.append(best_offset & 0xFF)
            group.append(((best_offset >> 8) << 4) | (best_length - MIN_MATCH))
            pos += best_length
        else:
            flags |= 1 << flag_count
            group.append(data[pos])
            pos += 1
        flag_count += 1
        if flag_count == 8:
            flush_group()
    flush_group()
    return bytes(out)


def lzss_decompress(stream: bytes) -> bytes:
    """Decompress an LZSS stream (Python reference for the DynaRisc decoder).

    Raises
    ------
    DecompressionError
        If a match token references history that does not exist.
    """
    out = bytearray()
    pos = 0
    n = len(stream)
    while pos < n:
        flags = stream[pos]
        pos += 1
        for item in range(8):
            if pos >= n:
                break
            if (flags >> item) & 1:
                out.append(stream[pos])
                pos += 1
            else:
                if pos + 1 >= n:
                    # A trailing, half-written match token means the encoder
                    # stopped mid-stream; treat it as end of data.
                    pos = n
                    break
                byte0 = stream[pos]
                byte1 = stream[pos + 1]
                pos += 2
                offset = byte0 | ((byte1 >> 4) << 8)
                length = (byte1 & 0x0F) + MIN_MATCH
                if offset == 0 or offset > len(out):
                    raise DecompressionError(
                        f"match offset {offset} exceeds decoded history ({len(out)} bytes)"
                    )
                start = len(out) - offset
                for index in range(length):
                    out.append(out[start + index])
    return bytes(out)
