"""Byte-aligned LZSS compression (the LZ77 half of DBCoder).

The stream format is deliberately byte-aligned and minimal so that the
archived DynaRisc decoder (:mod:`repro.dynarisc.programs.lzss`) stays small —
the paper's whole point is that the decoder must be easy to run in a far
future with almost no infrastructure.

Format
------
The stream is a sequence of *groups*.  Each group is one flag byte followed by
up to eight items; bit ``i`` of the flag byte (LSB first) describes item ``i``:

* flag bit 1 — the item is a single literal byte;
* flag bit 0 — the item is a match: two bytes encoding a backwards offset
  (1..4095) and a length (3..18)::

      byte0 = offset & 0xFF
      byte1 = ((offset >> 8) << 4) | (length - 3)

The stream carries no explicit length; decoding stops at end of input, which
matches the memory-mapped input port semantics of the emulated decoder.
Matches may overlap the current position (offset < length), which both the
Python and the DynaRisc decoders handle by copying byte-by-byte.
"""

from __future__ import annotations

from repro.errors import DecompressionError

#: Sliding-window size (offsets must fit in 12 bits).
WINDOW_SIZE = 4096

#: Minimum match length worth encoding (a 2-byte match token must beat it).
MIN_MATCH = 3

#: Maximum match length encodable in the 4-bit length field.
MAX_MATCH = 18


def _find_longest_match(data: bytes, pos: int, limit: int) -> tuple[int, int]:
    """Return ``(offset, length)`` of the longest window match at ``pos``.

    Uses ``bytes.rfind`` so the scanning runs at C speed; candidate start
    positions are restricted to the 4095-byte window ending just before
    ``pos``.  Returns ``(0, 0)`` when no match of at least MIN_MATCH exists.
    """
    best_offset = 0
    best_length = 0
    window_start = max(0, pos - (WINDOW_SIZE - 1))
    length = MIN_MATCH
    while length <= limit:
        # The search region ends at pos + length - 1 so any hit starts at an
        # index <= pos - 1, i.e. strictly before the current position, while
        # still allowing matches that overlap the bytes being encoded.
        index = data.rfind(data[pos:pos + length], window_start, pos + length - 1)
        if index < 0:
            break
        best_offset = pos - index
        best_length = length
        length += 1
    return best_offset, best_length


def lzss_compress(data: bytes) -> bytes:
    """Compress ``data`` with greedy LZSS parsing.

    Empty input compresses to an empty stream.
    """
    data = bytes(data)
    n = len(data)
    if n == 0:
        return b""

    out = bytearray()
    flags = 0
    flag_count = 0
    group = bytearray()
    pos = 0

    def flush_group() -> None:
        nonlocal flags, flag_count, group
        if flag_count:
            out.append(flags)
            out.extend(group)
            flags = 0
            flag_count = 0
            group = bytearray()

    while pos < n:
        limit = min(MAX_MATCH, n - pos)
        offset, length = (0, 0)
        if limit >= MIN_MATCH:
            offset, length = _find_longest_match(data, pos, limit)
        if length >= MIN_MATCH:
            group.append(offset & 0xFF)
            group.append(((offset >> 8) << 4) | (length - MIN_MATCH))
            pos += length
        else:
            flags |= 1 << flag_count
            group.append(data[pos])
            pos += 1
        flag_count += 1
        if flag_count == 8:
            flush_group()
    flush_group()
    return bytes(out)


def lzss_decompress(stream: bytes) -> bytes:
    """Decompress an LZSS stream (Python reference for the DynaRisc decoder).

    Raises
    ------
    DecompressionError
        If a match token references history that does not exist.
    """
    out = bytearray()
    pos = 0
    n = len(stream)
    while pos < n:
        flags = stream[pos]
        pos += 1
        for item in range(8):
            if pos >= n:
                break
            if (flags >> item) & 1:
                out.append(stream[pos])
                pos += 1
            else:
                if pos + 1 >= n:
                    # A trailing, half-written match token means the encoder
                    # stopped mid-stream; treat it as end of data.
                    pos = n
                    break
                byte0 = stream[pos]
                byte1 = stream[pos + 1]
                pos += 2
                offset = byte0 | ((byte1 >> 4) << 8)
                length = (byte1 & 0x0F) + MIN_MATCH
                if offset == 0 or offset > len(out):
                    raise DecompressionError(
                        f"match offset {offset} exceeds decoded history ({len(out)} bytes)"
                    )
                start = len(out) - offset
                for index in range(length):
                    out.append(out[start + index])
    return bytes(out)
