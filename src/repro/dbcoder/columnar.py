"""Columnar, type-aware layout encoding (the paper's first future-work item).

§5: "we are working on adding support for compressed, columnar layout
encoding schemes in DBCoder that are well-known to provide an order of
magnitude reduction to storage utilization over the generic compression
support available today."  This module implements that extension: instead of
compressing the SQL text dump as an opaque byte stream, a table is stored
column by column with an encoding chosen per column type:

* INTEGER  — delta encoding + variable-length integers,
* DECIMAL  — scaled to integer cents, then delta + varint,
* DATE     — days since 1970-01-01, then delta + varint,
* VARCHAR  — dictionary encoding for low-cardinality columns, otherwise
  length-prefixed text; either way the column is finished with LZSS.

The container is self-describing, so decoding rebuilds the exact
:class:`~repro.dbms.database.Table` objects, and ``benchmarks/
bench_columnar_layout.py`` compares its size against the generic DBCoder
profiles on the same TPC-H data.
"""

from __future__ import annotations

import datetime

from repro.errors import ContainerFormatError, DecompressionError
from repro.dbcoder.lz77 import lzss_compress, lzss_decompress
from repro.dbms.database import Column, ColumnType, Database, Table

_MAGIC = b"ULEC"
_EPOCH = datetime.date(1970, 1, 1)

#: Columns whose distinct-value count stays below this fraction of the row
#: count are dictionary encoded.
_DICTIONARY_THRESHOLD = 0.5


# --------------------------------------------------------------------------- #
# Varint / zigzag primitives
# --------------------------------------------------------------------------- #
def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def write_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("varints are unsigned; zigzag-encode signed values first")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint; returns (value, new offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise DecompressionError("varint runs past the end of the column stream")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def _encode_deltas(values: list[int]) -> bytes:
    out = bytearray()
    write_varint(out, len(values))
    previous = 0
    for value in values:
        write_varint(out, _zigzag(value - previous))
        previous = value
    return bytes(out)


def _decode_deltas(data: bytes) -> list[int]:
    count, offset = read_varint(data, 0)
    values = []
    previous = 0
    for _ in range(count):
        delta, offset = read_varint(data, offset)
        previous += _unzigzag(delta)
        values.append(previous)
    return values


# --------------------------------------------------------------------------- #
# Per-column encodings
# --------------------------------------------------------------------------- #
def _date_to_days(value: str) -> int:
    year, month, day = (int(part) for part in value.split("-"))
    return (datetime.date(year, month, day) - _EPOCH).days


def _days_to_date(days: int) -> str:
    return (_EPOCH + datetime.timedelta(days=days)).isoformat()


def _encode_column(column: Column, values: "list[int | str | None]") -> bytes:
    if column.type == ColumnType.INTEGER:
        return b"I" + _encode_deltas([int(value) for value in values])
    if column.type == ColumnType.DECIMAL:
        cents = [int(round(float(value) * 100)) for value in values]
        return b"D" + _encode_deltas(cents)
    if column.type == ColumnType.DATE:
        return b"T" + _encode_deltas([_date_to_days(value) for value in values])
    # VARCHAR: dictionary-encode when the column repeats a lot.
    distinct = sorted(set(values))
    if values and len(distinct) <= max(1, int(len(values) * _DICTIONARY_THRESHOLD)) and len(distinct) < 65536:
        dictionary = "\x00".join(distinct).encode("utf-8")
        indexes = {value: index for index, value in enumerate(distinct)}
        out = bytearray()
        write_varint(out, len(values))
        write_varint(out, len(distinct))
        write_varint(out, len(dictionary))
        out.extend(dictionary)
        for value in values:
            write_varint(out, indexes[value])
        return b"S" + lzss_compress(bytes(out))
    payload = bytearray()
    write_varint(payload, len(values))
    for value in values:
        encoded = value.encode("utf-8")
        write_varint(payload, len(encoded))
        payload.extend(encoded)
    return b"V" + lzss_compress(bytes(payload))


def _decode_column(column: Column, data: bytes) -> "list[int | str]":
    tag, body = data[:1], data[1:]
    if tag == b"I":
        return _decode_deltas(body)
    if tag == b"D":
        return [f"{value / 100:.2f}" for value in _decode_deltas(body)]
    if tag == b"T":
        return [_days_to_date(value) for value in _decode_deltas(body)]
    if tag == b"S":
        raw = lzss_decompress(body)
        count, offset = read_varint(raw, 0)
        distinct_count, offset = read_varint(raw, offset)
        dictionary_length, offset = read_varint(raw, offset)
        dictionary = raw[offset:offset + dictionary_length].decode("utf-8")
        offset += dictionary_length
        distinct = dictionary.split("\x00") if dictionary else [""]
        if len(distinct) != distinct_count:
            raise DecompressionError("dictionary column is corrupt")
        values = []
        for _ in range(count):
            index, offset = read_varint(raw, offset)
            values.append(distinct[index])
        return values
    if tag == b"V":
        raw = lzss_decompress(body)
        count, offset = read_varint(raw, 0)
        values = []
        for _ in range(count):
            length, offset = read_varint(raw, offset)
            values.append(raw[offset:offset + length].decode("utf-8"))
            offset += length
        return values
    raise ContainerFormatError(f"unknown column encoding tag {tag!r}")


# --------------------------------------------------------------------------- #
# Table / database containers
# --------------------------------------------------------------------------- #
def encode_table(table: Table) -> bytes:
    """Encode one table into the columnar container format."""
    out = bytearray()
    name = table.name.encode("utf-8")
    write_varint(out, len(name))
    out.extend(name)
    write_varint(out, len(table.columns))
    write_varint(out, table.row_count)
    for column in table.columns:
        column_name = column.name.encode("utf-8")
        write_varint(out, len(column_name))
        out.extend(column_name)
        out.append(list(ColumnType).index(column.type))
    for index, column in enumerate(table.columns):
        values = [row[index] for row in table.rows]
        encoded = _encode_column(column, values)
        write_varint(out, len(encoded))
        out.extend(encoded)
    return bytes(out)


def decode_table(data: bytes, offset: int = 0) -> tuple[Table, int]:
    """Decode one table; returns the table and the new offset."""
    name_length, offset = read_varint(data, offset)
    name = data[offset:offset + name_length].decode("utf-8")
    offset += name_length
    column_count, offset = read_varint(data, offset)
    row_count, offset = read_varint(data, offset)
    columns = []
    for _ in range(column_count):
        column_name_length, offset = read_varint(data, offset)
        column_name = data[offset:offset + column_name_length].decode("utf-8")
        offset += column_name_length
        type_index = data[offset]
        offset += 1
        columns.append(Column(column_name, list(ColumnType)[type_index]))
    table = Table(name=name, columns=columns)
    column_values = []
    for column in columns:
        encoded_length, offset = read_varint(data, offset)
        encoded = data[offset:offset + encoded_length]
        offset += encoded_length
        values = _decode_column(column, encoded)
        if len(values) != row_count:
            raise DecompressionError(
                f"table {name}: column {column.name} decoded {len(values)} values "
                f"for {row_count} rows"
            )
        column_values.append(values)
    for row_index in range(row_count):
        table.rows.append(tuple(values[row_index] for values in column_values))
    return table, offset


class ColumnarCoder:
    """Database <-> columnar archive bytes."""

    def encode(self, database: Database) -> bytes:
        """Encode a whole database into a single columnar archive."""
        out = bytearray(_MAGIC)
        out.append(1)  # version
        tables = database.tables
        write_varint(out, len(tables))
        for table in tables:
            encoded = encode_table(table)
            write_varint(out, len(encoded))
            out.extend(encoded)
        return bytes(out)

    def decode(self, data: bytes) -> Database:
        """Rebuild the database from a columnar archive."""
        if data[:4] != _MAGIC:
            raise ContainerFormatError("not a columnar archive (bad magic)")
        if data[4] != 1:
            raise ContainerFormatError(f"unsupported columnar archive version {data[4]}")
        offset = 5
        table_count, offset = read_varint(data, offset)
        database = Database()
        for _ in range(table_count):
            encoded_length, offset = read_varint(data, offset)
            table, _ = decode_table(data[offset:offset + encoded_length])
            offset += encoded_length
            database.add_table(table)
        return database
