"""DBCoder: the database layout encoder/decoder of Micr'Olonys.

DBCoder turns the textual, software-independent database archive (a SQL dump)
into a compact binary stream, and back.  The paper's DBCoder uses a generic
scheme "based on LZ77 and arithmetic coding" whose ratio is close to 7-Zip's
LZMA; the decoding half is archived as DynaRisc instructions.

Profiles
--------
``PORTABLE``
    Byte-aligned LZSS only.  This is the profile whose decoder is archived in
    DynaRisc assembly (:mod:`repro.dynarisc.programs.lzss`) and therefore the
    profile used by the emulated restoration path.
``DENSE``
    LZSS followed by an adaptive arithmetic coder; closest to the paper's
    stated LZ77+arithmetic-coding pipeline and to LZMA-class ratios.
``STORE``
    No compression (baseline and debugging aid).

The columnar layout scheme the paper lists as future work is implemented in
:mod:`repro.dbcoder.columnar`.
"""

from repro.dbcoder.lz77 import lzss_compress, lzss_decompress
from repro.dbcoder.arithmetic import arithmetic_encode, arithmetic_decode
from repro.dbcoder.formats import ContainerHeader, pack_container, unpack_container
from repro.dbcoder.dbcoder import DBCoder, Profile

__all__ = [
    "lzss_compress",
    "lzss_decompress",
    "arithmetic_encode",
    "arithmetic_decode",
    "ContainerHeader",
    "pack_container",
    "unpack_container",
    "DBCoder",
    "Profile",
]
