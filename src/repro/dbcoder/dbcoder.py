"""The DBCoder facade: textual database archive <-> compact binary layout.

``DBCoder.encode`` is what step 2 of the paper's archival flow (Figure 2a)
performs: it takes the software-independent textual archive produced by
``db_dump`` and emits a compressed binary stream for MOCoder.  ``decode`` is
the inverse, normally executed inside the emulated DynaRisc environment at
restoration time; the Python implementation here is the reference model and
the encoder-side tool.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import DecompressionError
from repro.dbcoder.arithmetic import arithmetic_decode, arithmetic_encode
from repro.dbcoder.formats import pack_container, unpack_container
from repro.dbcoder.lz77 import lzss_compress, lzss_decompress
from repro.util.crc import crc32_of


class Profile(enum.IntEnum):
    """DBCoder compression profiles."""

    STORE = 0
    """No compression; baseline and debugging aid."""

    PORTABLE = 1
    """Byte-aligned LZSS only — the profile whose decoder is archived as a
    DynaRisc program and therefore the one used on the emulated restoration
    path."""

    DENSE = 2
    """LZSS followed by adaptive arithmetic coding — the paper's stated
    LZ77 + arithmetic-coding pipeline, used when density matters most."""


@dataclass(frozen=True)
class EncodingReport:
    """Statistics describing one DBCoder encoding run."""

    profile: Profile
    original_bytes: int
    encoded_bytes: int

    @property
    def ratio(self) -> float:
        """Compression ratio (original / encoded); 0 for empty input."""
        if self.encoded_bytes == 0:
            return 0.0
        return self.original_bytes / self.encoded_bytes


class DBCoder:
    """Database layout encoder/decoder.

    Parameters
    ----------
    profile:
        Compression profile; see :class:`Profile`.
    """

    def __init__(self, profile: Profile = Profile.PORTABLE):
        self.profile = Profile(profile)

    # ------------------------------------------------------------------ #
    # Encoding (runs today, on the archivist's machine)
    # ------------------------------------------------------------------ #
    def encode(self, data: bytes) -> bytes:
        """Compress ``data`` and wrap it in a DBCoder container."""
        payload = self.compress_payload(data)
        return pack_container(int(self.profile), data, payload)

    def compress_payload(self, data: bytes) -> bytes:
        """Compress ``data`` without the container header.

        This raw form is what the archived DynaRisc decoder consumes directly
        (the container header is interpreted by MOCoder-level tooling).
        """
        if self.profile == Profile.STORE:
            return bytes(data)
        lzss = lzss_compress(data)
        if self.profile == Profile.PORTABLE:
            return lzss
        return arithmetic_encode(lzss)

    def report(self, data: bytes) -> EncodingReport:
        """Encode ``data`` and return size statistics (used by benchmarks)."""
        encoded = self.encode(data)
        return EncodingReport(
            profile=self.profile,
            original_bytes=len(data),
            encoded_bytes=len(encoded),
        )

    # ------------------------------------------------------------------ #
    # Decoding (reference model of the archived decoder)
    # ------------------------------------------------------------------ #
    def decode(self, container: bytes) -> bytes:
        """Decode a DBCoder container back into the original archive bytes.

        Raises
        ------
        DecompressionError
            If the recovered data does not match the stored length/CRC, i.e.
            the restoration would not be bit-for-bit faithful.
        """
        header, payload = unpack_container(container)
        profile = Profile(header.profile_id)
        data = self.decompress_payload(payload, profile)
        if len(data) != header.original_length:
            raise DecompressionError(
                f"restored {len(data)} bytes but the archive recorded "
                f"{header.original_length}"
            )
        if crc32_of(data) != header.original_crc32:
            raise DecompressionError("restored data fails the archived CRC-32 check")
        return data

    @staticmethod
    def decompress_payload(payload: bytes, profile: Profile) -> bytes:
        """Decompress a raw payload according to ``profile``."""
        if profile == Profile.STORE:
            return bytes(payload)
        if profile == Profile.PORTABLE:
            return lzss_decompress(payload)
        return lzss_decompress(arithmetic_decode(payload))
