"""Universal Layout Emulation (ULE) for long-term database archival.

A faithful, pure-Python reproduction of *"Universal Layout Emulation for
Long-Term Database Archival"* (Appuswamy & Joguin, CIDR 2021) and of
Micr'Olonys, its end-to-end archival system for visual analog media.

Public API highlights
---------------------
* :mod:`repro.api` — the unified facade: :class:`~repro.api.ArchiveConfig`
  (one JSON-round-trippable config naming every choice),
  :func:`~repro.api.open_archive` / :func:`~repro.api.open_restore`
  (session-based streaming I/O), :func:`~repro.api.run_end_to_end` (all
  seven Figure 2a steps in one call) and the ``python -m repro`` CLI.
* :mod:`repro.registry` — named, pluggable registries for codecs, media
  channels, executors, distortion profiles and storage backends.
* :mod:`repro.store` — the on-media layout layer: versioned self-describing
  manifests (v2), ``directory``/``container``/``memory`` storage backends,
  and the random-access sources behind
  :meth:`~repro.api.ArchiveReader.read_range`.
* :class:`repro.dbcoder.DBCoder` — database layout coder (LZSS + arithmetic
  coding, plus a columnar extension).
* :class:`repro.mocoder.MOCoder` — media layout coder (emblems, differential
  Manchester cells, nested Reed-Solomon codes).
* :mod:`repro.verisc`, :mod:`repro.dynarisc`, :mod:`repro.nested` — the
  universal emulation stack (4-instruction VeRisc, 23-instruction DynaRisc,
  and the DynaRisc emulator written in VeRisc).
* :mod:`repro.media` — simulated paper, microfilm, cinema film and DNA
  channels with archival-realistic distortions.
* :mod:`repro.dbms` — the miniature relational engine, TPC-H-like generator
  and ``db_dump`` / ``db_load``.

Attribute access is lazy (PEP 562): importing :mod:`repro` does **not** pull
in numpy/scipy — submodules load on first touch of a re-exported name.  This
keeps dependency-light tools (``python -m repro.devtools.lint``) runnable in
environments without the numeric stack installed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

__version__ = "1.1.0"

#: Re-exported name -> the submodule that defines it.  ``__getattr__`` below
#: resolves each entry on first access so importing :mod:`repro` stays cheap.
_EXPORTS: dict[str, str] = {
    # repro.api — unified facade
    "ArchiveConfig": "repro.api",
    "ArchiveReader": "repro.api",
    "ArchiveWriter": "repro.api",
    "EndToEndResult": "repro.api",
    "SegmentCacheLike": "repro.api",
    "open_archive": "repro.api",
    "open_restore": "repro.api",
    "run_end_to_end": "repro.api",
    # whole submodules
    "registry": "repro",
    "store": "repro",
    "devtools": "repro",
    "server": "repro",
    # repro.core — engines, manifests, profiles
    "Archiver": "repro.core",
    "Restorer": "repro.core",
    "RestoreEngine": "repro.core",
    "RestorationResult": "repro.core",
    "VerifyReport": "repro.core",
    "MicrOlonysArchive": "repro.core",
    "ArchiveManifest": "repro.core",
    "SegmentRecord": "repro.core",
    "MediaProfile": "repro.core",
    "PAPER_PROFILE": "repro.core",
    "MICROFILM_PROFILE": "repro.core",
    "MICROFILM_DENSE_PROFILE": "repro.core",
    "CINEMA_PROFILE": "repro.core",
    "TEST_PROFILE": "repro.core",
    "DNA_PROFILE": "repro.core",
    "PROFILES": "repro.core",
    "get_profile": "repro.core",
    # repro.pipeline
    "ArchivePipeline": "repro.pipeline",
    "RestorePipeline": "repro.pipeline",
    "DEFAULT_SEGMENT_SIZE": "repro.pipeline",
    "get_executor": "repro.pipeline",
    # coders
    "DBCoder": "repro.dbcoder",
    "Profile": "repro.dbcoder",
    "MOCoder": "repro.mocoder",
    "EmblemSpec": "repro.mocoder",
    "EmblemKind": "repro.mocoder",
    # repro.dbms
    "Database": "repro.dbms",
    "Table": "repro.dbms",
    "Column": "repro.dbms",
    "ColumnType": "repro.dbms",
    "db_dump": "repro.dbms",
    "db_load": "repro.dbms",
    "generate_tpch": "repro.dbms",
    # repro.errors
    "ReproError": "repro.errors",
    "RegistryError": "repro.errors",
    "UnknownNameError": "repro.errors",
    "ConfigError": "repro.errors",
    "StoreError": "repro.errors",
}

__all__ = [*_EXPORTS, "__version__"]


def __getattr__(name: str) -> Any:
    target = _EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    if target == "repro":  # the name *is* a submodule (repro.store, ...)
        return importlib.import_module(f"repro.{name}")
    module = importlib.import_module(target)
    value = getattr(module, name)
    globals()[name] = value  # cache so __getattr__ runs once per name
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))


if TYPE_CHECKING:  # static importers see the eager imports
    from repro import registry, server, store  # noqa: F401
    from repro.api import (  # noqa: F401
        ArchiveConfig,
        ArchiveReader,
        ArchiveWriter,
        EndToEndResult,
        SegmentCacheLike,
        open_archive,
        open_restore,
        run_end_to_end,
    )
    from repro.core import (  # noqa: F401
        CINEMA_PROFILE,
        DNA_PROFILE,
        MICROFILM_DENSE_PROFILE,
        MICROFILM_PROFILE,
        PAPER_PROFILE,
        PROFILES,
        TEST_PROFILE,
        ArchiveManifest,
        Archiver,
        MediaProfile,
        MicrOlonysArchive,
        RestorationResult,
        RestoreEngine,
        Restorer,
        SegmentRecord,
        VerifyReport,
        get_profile,
    )
    from repro.dbcoder import DBCoder, Profile  # noqa: F401
    from repro.dbms import (  # noqa: F401
        Column,
        ColumnType,
        Database,
        Table,
        db_dump,
        db_load,
        generate_tpch,
    )
    from repro.errors import (  # noqa: F401
        ConfigError,
        RegistryError,
        ReproError,
        StoreError,
        UnknownNameError,
    )
    from repro.mocoder import EmblemKind, EmblemSpec, MOCoder  # noqa: F401
    from repro.pipeline import (  # noqa: F401
        DEFAULT_SEGMENT_SIZE,
        ArchivePipeline,
        RestorePipeline,
        get_executor,
    )
