"""Universal Layout Emulation (ULE) for long-term database archival.

A faithful, pure-Python reproduction of *"Universal Layout Emulation for
Long-Term Database Archival"* (Appuswamy & Joguin, CIDR 2021) and of
Micr'Olonys, its end-to-end archival system for visual analog media.

Public API highlights
---------------------
* :mod:`repro.api` — the unified facade: :class:`~repro.api.ArchiveConfig`
  (one JSON-round-trippable config naming every choice),
  :func:`~repro.api.open_archive` / :func:`~repro.api.open_restore`
  (session-based streaming I/O), :func:`~repro.api.run_end_to_end` (all
  seven Figure 2a steps in one call) and the ``python -m repro`` CLI.
* :mod:`repro.registry` — named, pluggable registries for codecs, media
  channels, executors, distortion profiles and storage backends.
* :mod:`repro.store` — the on-media layout layer: versioned self-describing
  manifests (v2), ``directory``/``container``/``memory`` storage backends,
  and the random-access sources behind
  :meth:`~repro.api.ArchiveReader.read_range`.
* :class:`repro.dbcoder.DBCoder` — database layout coder (LZSS + arithmetic
  coding, plus a columnar extension).
* :class:`repro.mocoder.MOCoder` — media layout coder (emblems, differential
  Manchester cells, nested Reed-Solomon codes).
* :mod:`repro.verisc`, :mod:`repro.dynarisc`, :mod:`repro.nested` — the
  universal emulation stack (4-instruction VeRisc, 23-instruction DynaRisc,
  and the DynaRisc emulator written in VeRisc).
* :mod:`repro.media` — simulated paper, microfilm, cinema film and DNA
  channels with archival-realistic distortions.
* :mod:`repro.dbms` — the miniature relational engine, TPC-H-like generator
  and ``db_dump`` / ``db_load``.
"""

from repro.core import (
    Archiver,
    Restorer,
    RestoreEngine,
    RestorationResult,
    VerifyReport,
    MicrOlonysArchive,
    ArchiveManifest,
    MediaProfile,
    PAPER_PROFILE,
    MICROFILM_PROFILE,
    MICROFILM_DENSE_PROFILE,
    CINEMA_PROFILE,
    TEST_PROFILE,
    DNA_PROFILE,
    PROFILES,
    get_profile,
)
from repro.core import SegmentRecord
from repro.dbcoder import DBCoder, Profile
from repro.mocoder import MOCoder, EmblemSpec, EmblemKind
from repro.pipeline import (
    ArchivePipeline,
    RestorePipeline,
    DEFAULT_SEGMENT_SIZE,
    get_executor,
)
from repro.dbms import Database, Table, Column, ColumnType, db_dump, db_load, generate_tpch
from repro.errors import ConfigError, RegistryError, ReproError, StoreError, UnknownNameError
from repro import registry
from repro import store
from repro.api import (
    ArchiveConfig,
    ArchiveReader,
    ArchiveWriter,
    EndToEndResult,
    open_archive,
    open_restore,
    run_end_to_end,
)

__version__ = "1.1.0"

__all__ = [
    "ArchiveConfig",
    "ArchiveReader",
    "ArchiveWriter",
    "EndToEndResult",
    "open_archive",
    "open_restore",
    "run_end_to_end",
    "registry",
    "store",
    "Archiver",
    "Restorer",
    "RestoreEngine",
    "RestorationResult",
    "VerifyReport",
    "MicrOlonysArchive",
    "ArchiveManifest",
    "SegmentRecord",
    "ArchivePipeline",
    "RestorePipeline",
    "DEFAULT_SEGMENT_SIZE",
    "get_executor",
    "MediaProfile",
    "PAPER_PROFILE",
    "MICROFILM_PROFILE",
    "MICROFILM_DENSE_PROFILE",
    "CINEMA_PROFILE",
    "TEST_PROFILE",
    "DNA_PROFILE",
    "PROFILES",
    "get_profile",
    "DBCoder",
    "Profile",
    "MOCoder",
    "EmblemSpec",
    "EmblemKind",
    "Database",
    "Table",
    "Column",
    "ColumnType",
    "db_dump",
    "db_load",
    "generate_tpch",
    "ReproError",
    "RegistryError",
    "UnknownNameError",
    "ConfigError",
    "StoreError",
    "__version__",
]
