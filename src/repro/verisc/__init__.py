"""VeRisc: the four-instruction bootstrap machine of Olonys.

The paper's restoration story rests on a user in the far future implementing,
from a plain-text description, an interpreter for a machine with only four
instructions: ``LD``, ``ST``, ``SBB`` and ``AND``.  This package contains

* :mod:`repro.verisc.isa` — the instruction set and binary encoding,
* :mod:`repro.verisc.machine` — the reference emulator,
* :mod:`repro.verisc.assembler` — a primitive assembler plus a macro layer
  (ADD/JMP/conditional jumps built from the four primitives, exactly as a
  DynaRisc-emulator author would have to do),
* :mod:`repro.verisc.program` — the program container serialised into the
  Bootstrap's letter encoding.
"""

from repro.verisc.isa import Op, Instruction, SPECIAL_ADDRESSES
from repro.verisc.machine import VeRiscMachine, MachineState
from repro.verisc.assembler import VeRiscAssembler, MacroAssembler
from repro.verisc.program import VeRiscProgram

__all__ = [
    "Op",
    "Instruction",
    "SPECIAL_ADDRESSES",
    "VeRiscMachine",
    "MachineState",
    "VeRiscAssembler",
    "MacroAssembler",
    "VeRiscProgram",
]
