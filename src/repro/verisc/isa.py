"""The VeRisc instruction set.

VeRisc is the minimal machine a future user has to implement by hand from the
Bootstrap document.  The paper fixes the four opcodes (LD, ST, SBB, AND) and
the single general-purpose register ``R``; the rest of the machine model is
reconstructed here (and documented identically in the generated Bootstrap) so
that the four opcodes suffice for arbitrary computation:

* memory is 65,536 sixteen-bit words, word-addressed;
* the program counter and the borrow flag live at fixed memory addresses, so
  storing to the PC is a jump and loading the borrow flag enables conditional
  control flow;
* a handful of additional memory-mapped ports provide byte-stream input,
  byte-stream output and halting, which is how archived decoders consume
  scanned data and emit restored data.

Each instruction occupies two consecutive words: the opcode word followed by
the operand address word.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Number of addressable 16-bit words.
MEMORY_WORDS = 65536

#: Mask for 16-bit arithmetic.
WORD_MASK = 0xFFFF


class Op(enum.IntEnum):
    """The four VeRisc opcodes, in their binary encoding order."""

    LD = 0   #: R = mem[addr]
    ST = 1   #: mem[addr] = R
    SBB = 2  #: R = R - mem[addr] - borrow; borrow = 1 on underflow else 0
    AND = 3  #: R = R & mem[addr]; borrow = 0


class SpecialAddress(enum.IntEnum):
    """Memory-mapped registers and ports.

    These addresses sit at the very top of the address space so ordinary
    programs and data never collide with them.
    """

    PC = 0xFFFF        #: reading yields the address of the next instruction; writing jumps
    BORROW = 0xFFFE    #: reading yields 0/1; writing sets the borrow flag from bit 0
    OUTPUT = 0xFFFD    #: ST appends the low byte of R to the output stream
    INPUT = 0xFFFC     #: LD yields the next input byte (borrow set to 1 at end of input)
    HALT = 0xFFFB      #: ST stops the machine


#: Convenience mapping used by the assembler's symbol table.
SPECIAL_ADDRESSES = {
    "PC": int(SpecialAddress.PC),
    "BORROW": int(SpecialAddress.BORROW),
    "OUTPUT": int(SpecialAddress.OUTPUT),
    "INPUT": int(SpecialAddress.INPUT),
    "HALT": int(SpecialAddress.HALT),
}


@dataclass(frozen=True)
class Instruction:
    """A decoded VeRisc instruction."""

    op: Op
    address: int

    def __post_init__(self) -> None:
        if not 0 <= self.address < MEMORY_WORDS:
            raise ValueError(f"address out of range: {self.address:#x}")

    def encode(self) -> tuple[int, int]:
        """Return the two memory words that encode this instruction."""
        return int(self.op), self.address

    @classmethod
    def decode(cls, opcode_word: int, address_word: int) -> "Instruction":
        """Decode two memory words into an instruction.

        Raises
        ------
        ValueError
            If the opcode word is not one of the four VeRisc opcodes.
        """
        try:
            op = Op(opcode_word)
        except ValueError as exc:
            raise ValueError(f"invalid VeRisc opcode word: {opcode_word}") from exc
        return cls(op, address_word & WORD_MASK)

    def __str__(self) -> str:
        return f"{self.op.name} &{self.address:#06x}"
