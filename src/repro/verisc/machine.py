"""The reference VeRisc emulator.

This is the component the paper expects a future user to re-implement from the
Bootstrap document in "less than 500 lines of pseudocode".  The reference
implementation here is the oracle against which independently written
emulators (see ``benchmarks/bench_portability.py``) are checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ExecutionLimitExceeded, InvalidInstructionError, MachineFault
from repro.verisc.isa import MEMORY_WORDS, WORD_MASK, Op, SpecialAddress


@dataclass
class MachineState:
    """Snapshot of the architectural state of a VeRisc machine."""

    accumulator: int = 0
    borrow: int = 0
    pc: int = 0
    halted: bool = False
    steps: int = 0
    memory: list[int] = field(default_factory=lambda: [0] * MEMORY_WORDS)


class VeRiscMachine:
    """Interprets VeRisc programs.

    Parameters
    ----------
    memory_image:
        Initial memory contents, a sequence of 16-bit words loaded at
        address 0.  The rest of memory is zero-filled.
    input_data:
        Byte stream available through the memory-mapped ``INPUT`` port.
    step_limit:
        Safety budget; exceeding it raises :class:`ExecutionLimitExceeded`
        rather than looping forever on a buggy archived program.
    """

    def __init__(
        self,
        memory_image: list[int] | tuple[int, ...] | bytes | None = None,
        input_data: bytes = b"",
        step_limit: int = 50_000_000,
    ):
        self.state = MachineState()
        self.step_limit = step_limit
        self.input_data = bytes(input_data)
        self.input_pos = 0
        self.output = bytearray()
        if memory_image is not None:
            self.load_image(memory_image)

    # ------------------------------------------------------------------ #
    # Memory image handling
    # ------------------------------------------------------------------ #
    def load_image(
        self, words: "bytes | bytearray | Sequence[int]", origin: int = 0
    ) -> None:
        """Copy a word image into memory starting at ``origin``."""
        if isinstance(words, (bytes, bytearray)):
            if len(words) % 2:
                raise MachineFault("byte image must contain an even number of bytes")
            words = [
                words[i] | (words[i + 1] << 8) for i in range(0, len(words), 2)
            ]
        if origin + len(words) > MEMORY_WORDS:
            raise MachineFault("memory image does not fit in VeRisc memory")
        for offset, word in enumerate(words):
            self.state.memory[origin + offset] = word & WORD_MASK

    # ------------------------------------------------------------------ #
    # Memory-mapped accesses
    # ------------------------------------------------------------------ #
    def _read(self, address: int) -> int:
        if address == SpecialAddress.PC:
            return self.state.pc
        if address == SpecialAddress.BORROW:
            return self.state.borrow
        if address == SpecialAddress.INPUT:
            if self.input_pos >= len(self.input_data):
                self.state.borrow = 1
                return 0
            value = self.input_data[self.input_pos]
            self.input_pos += 1
            self.state.borrow = 0
            return value
        if address == SpecialAddress.OUTPUT or address == SpecialAddress.HALT:
            return 0
        return self.state.memory[address]

    def _write(self, address: int, value: int) -> None:
        value &= WORD_MASK
        if address == SpecialAddress.PC:
            self.state.pc = value
            return
        if address == SpecialAddress.BORROW:
            self.state.borrow = value & 1
            return
        if address == SpecialAddress.OUTPUT:
            self.output.append(value & 0xFF)
            return
        if address == SpecialAddress.HALT:
            self.state.halted = True
            return
        if address == SpecialAddress.INPUT:
            raise MachineFault("the INPUT port is read-only")
        self.state.memory[address] = value

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> None:
        """Execute a single instruction."""
        state = self.state
        if state.halted:
            return
        if state.pc + 1 >= MEMORY_WORDS:
            raise MachineFault(f"program counter ran off memory: {state.pc:#x}")
        opcode_word = state.memory[state.pc]
        address = state.memory[state.pc + 1]
        state.pc = (state.pc + 2) & WORD_MASK
        if opcode_word == Op.LD:
            state.accumulator = self._read(address)
        elif opcode_word == Op.ST:
            self._write(address, state.accumulator)
        elif opcode_word == Op.SBB:
            operand = self._read(address)
            result = state.accumulator - operand - state.borrow
            state.borrow = 1 if result < 0 else 0
            state.accumulator = result & WORD_MASK
        elif opcode_word == Op.AND:
            state.accumulator &= self._read(address)
            state.borrow = 0
        else:
            raise InvalidInstructionError(
                f"invalid VeRisc opcode {opcode_word} at address {state.pc - 2:#x}"
            )
        state.steps += 1

    def run(self, start: int = 0) -> bytes:
        """Run from ``start`` until the program halts; return the output bytes."""
        self.state.pc = start
        while not self.state.halted:
            if self.state.steps >= self.step_limit:
                raise ExecutionLimitExceeded(
                    f"VeRisc program exceeded {self.step_limit} steps"
                )
            self.step()
        return bytes(self.output)
