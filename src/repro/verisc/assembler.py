"""Assemblers for VeRisc.

Two layers are provided:

* :class:`VeRiscAssembler` — a tiny textual assembler for the four primitive
  instructions plus ``.word``/``.space`` directives and labels.  This is the
  level at which the Bootstrap document describes programs.

* :class:`MacroAssembler` — a programmatic builder exposing the synthetic
  operations (ADD, MOVE, INC/DEC, unconditional and conditional jumps,
  indirect loads and stores) that any real VeRisc programmer has to build out
  of the four primitives.  The nested DynaRisc-emulator-in-VeRisc
  (:mod:`repro.nested`) is written against this layer, which demonstrates that
  the four-instruction ISA genuinely suffices.

Control flow uses the two classic minimal-machine idioms, both documented in
the generated Bootstrap text: storing to the memory-mapped program counter is
a jump, and storing into the *operand word* of a later instruction
(self-modifying code) provides indirection and computed jumps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssemblyError
from repro.verisc.isa import SPECIAL_ADDRESSES, WORD_MASK, Op
from repro.verisc.program import VeRiscProgram


# --------------------------------------------------------------------------- #
# Reference kinds used before symbol resolution
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LabelRef:
    """A reference to a label, optionally displaced by a word offset."""

    name: str
    offset: int = 0


@dataclass(frozen=True)
class ConstRef:
    """A reference to a pooled constant word holding ``value``."""

    value: int


Operand = int | LabelRef | ConstRef


class VeRiscAssembler:
    """Assemble VeRisc source text into a :class:`VeRiscProgram`.

    Syntax::

        ; comments start with a semicolon
        start:              ; labels end with a colon
            LD   value      ; operands: label, special name, decimal or 0x hex
            SBB  one
            ST   OUTPUT
            ST   HALT
        value: .word 65
        one:   .word 1
        buf:   .space 16    ; reserve 16 zero words
    """

    def assemble(self, source: str, origin: int = 0) -> VeRiscProgram:
        items: list[tuple[str, object]] = []
        labels: dict[str, int] = {}
        address = origin

        for line_number, raw_line in enumerate(source.splitlines(), start=1):
            line = raw_line.split(";", 1)[0].strip()
            if not line:
                continue
            while ":" in line:
                label, line = line.split(":", 1)
                label = label.strip()
                if not label.isidentifier():
                    raise AssemblyError(f"invalid label {label!r}", line=line_number)
                if label in labels:
                    raise AssemblyError(f"duplicate label {label!r}", line=line_number)
                labels[label] = address
                line = line.strip()
            if not line:
                continue
            mnemonic, _, rest = line.partition(" ")
            mnemonic = mnemonic.upper()
            rest = rest.strip()
            if mnemonic == ".WORD":
                values = [value.strip() for value in rest.split(",") if value.strip()]
                if not values:
                    raise AssemblyError(".word requires at least one value", line=line_number)
                for value in values:
                    items.append(("word", (value, line_number)))
                    address += 1
            elif mnemonic == ".SPACE":
                try:
                    count = int(rest, 0)
                except ValueError as exc:
                    raise AssemblyError(f"invalid .space count {rest!r}", line=line_number) from exc
                items.extend(("word", ("0", line_number)) for _ in range(count))
                address += count
            elif mnemonic in Op.__members__:
                if not rest:
                    raise AssemblyError(f"{mnemonic} requires an operand", line=line_number)
                items.append(("insn", (Op[mnemonic], rest, line_number)))
                address += 2
            else:
                raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line=line_number)

        words: list[int] = []
        for kind, payload in items:
            if kind == "word":
                text, line_number = payload
                words.append(self._resolve(text, labels, line_number))
            else:
                op, text, line_number = payload
                words.append(int(op))
                words.append(self._resolve(text, labels, line_number))
        entry = labels.get("start", origin)
        return VeRiscProgram(words=words, origin=origin, entry=entry, symbols=labels)

    @staticmethod
    def _resolve(text: str, labels: dict[str, int], line_number: int) -> int:
        text = text.strip()
        if text in labels:
            return labels[text] & WORD_MASK
        if text.upper() in SPECIAL_ADDRESSES:
            return SPECIAL_ADDRESSES[text.upper()]
        try:
            return int(text, 0) & WORD_MASK
        except ValueError as exc:
            raise AssemblyError(f"unknown symbol or value {text!r}", line=line_number) from exc


class MacroAssembler:
    """Programmatic builder of VeRisc programs with synthetic macro operations.

    The builder tracks the exact address of every emitted word (instructions
    are two words, data words one word), so macros that rely on self-modifying
    code can reference the operand slot of an instruction they just emitted.
    Constants are pooled and de-duplicated; labels may be referenced before
    they are defined and are resolved in :meth:`assemble`.
    """

    #: Number of reserved scratch words available to macros.
    SCRATCH_WORDS = 8

    def __init__(self, origin: int = 0):
        self.origin = origin
        self._items: list[tuple[str, object]] = []
        self._length = 0
        self._labels: dict[str, int] = {}
        self._pending_entry: str | int | None = None
        self._const_values: list[int] = []
        self._label_counter = 0
        # Reserve the scratch area immediately; macros address it as labels
        # scratch0..scratchN-1.
        for index in range(self.SCRATCH_WORDS):
            self.label(f"scratch{index}")
            self.word(0)

    # ------------------------------------------------------------------ #
    # Low-level emission
    # ------------------------------------------------------------------ #
    @property
    def current_address(self) -> int:
        """Address of the next word that will be emitted."""
        return self.origin + self._length

    def label(self, name: str | None = None) -> str:
        """Define a label at the current address; auto-generate a name if omitted."""
        if name is None:
            name = f"__auto{self._label_counter}"
            self._label_counter += 1
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = self.current_address
        return name

    def new_label(self) -> str:
        """Reserve a unique label name without placing it yet."""
        name = f"__fwd{self._label_counter}"
        self._label_counter += 1
        return name

    def place(self, name: str) -> None:
        """Place a previously reserved label at the current address."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = self.current_address

    def word(self, value: int | LabelRef | ConstRef = 0) -> int:
        """Emit a raw data word; return its address."""
        address = self.current_address
        self._items.append(("word", value))
        self._length += 1
        return address

    def const(self, value: int) -> ConstRef:
        """Return a reference to a pooled constant word holding ``value``."""
        value &= WORD_MASK
        if value not in self._const_values:
            self._const_values.append(value)
        return ConstRef(value)

    def ref(self, name: str, offset: int = 0) -> LabelRef:
        """Return a reference to ``label + offset`` (word offset)."""
        return LabelRef(name, offset)

    def emit(self, op: Op, operand: Operand) -> int:
        """Emit a primitive instruction; return the address of its opcode word."""
        address = self.current_address
        self._items.append(("insn", (op, operand)))
        self._length += 2
        return address

    # Primitive instruction helpers -------------------------------------- #
    def ld(self, operand: Operand) -> int:
        return self.emit(Op.LD, operand)

    def st(self, operand: Operand) -> int:
        return self.emit(Op.ST, operand)

    def sbb(self, operand: Operand) -> int:
        return self.emit(Op.SBB, operand)

    def and_(self, operand: Operand) -> int:
        return self.emit(Op.AND, operand)

    # ------------------------------------------------------------------ #
    # Special addresses as operands
    # ------------------------------------------------------------------ #
    PC = SPECIAL_ADDRESSES["PC"]
    BORROW = SPECIAL_ADDRESSES["BORROW"]
    OUTPUT = SPECIAL_ADDRESSES["OUTPUT"]
    INPUT = SPECIAL_ADDRESSES["INPUT"]
    HALT = SPECIAL_ADDRESSES["HALT"]

    # ------------------------------------------------------------------ #
    # Macros (synthetic operations built from the four primitives)
    # ------------------------------------------------------------------ #
    def clear_borrow(self) -> None:
        """Force the borrow flag to zero without touching the accumulator."""
        self.and_(self.const(0xFFFF))

    def load_imm(self, value: int) -> None:
        """R = value (through the constant pool)."""
        self.ld(self.const(value))

    def move(self, src: Operand, dst: Operand) -> None:
        """mem[dst] = mem[src] (through the accumulator)."""
        self.ld(src)
        self.st(dst)

    def store_imm(self, value: int, dst: Operand) -> None:
        """mem[dst] = value."""
        self.load_imm(value)
        self.st(dst)

    def add(self, operand: Operand) -> None:
        """R = R + mem[operand]  (borrow left in an unspecified state)."""
        self.st(self.ref("scratch0"))
        self.load_imm(0)
        self.clear_borrow()
        self.sbb(operand)                 # R = -mem[operand]
        self.st(self.ref("scratch1"))
        self.ld(self.ref("scratch0"))
        self.clear_borrow()
        self.sbb(self.ref("scratch1"))    # R = R + mem[operand]

    def add_imm(self, value: int) -> None:
        """R = R + value."""
        self.add(self.const(value))

    def sub(self, operand: Operand) -> None:
        """R = R - mem[operand]; borrow = 1 if the subtraction underflowed."""
        self.clear_borrow()
        self.sbb(operand)

    def sub_imm(self, value: int) -> None:
        """R = R - value; borrow reflects underflow."""
        self.sub(self.const(value))

    def inc(self, operand: Operand) -> None:
        """mem[operand] += 1."""
        self.ld(operand)
        self.add_imm(1)
        self.st(operand)

    def dec(self, operand: Operand) -> None:
        """mem[operand] -= 1."""
        self.ld(operand)
        self.sub_imm(1)
        self.st(operand)

    # NOTE: on a machine whose only way to jump is "store the accumulator into
    # the memory-mapped PC", *every* jump macro necessarily clobbers the
    # accumulator.  Values that must survive a jump belong in memory (the
    # scratch words or program variables), never in R.

    def jmp(self, target: str) -> None:
        """Unconditional jump to a label (clobbers the accumulator)."""
        self.ld(self.const_label(target))
        self.st(self.PC)

    def const_label(self, target: str) -> Operand:
        """Reference to a pooled word that will hold the address of ``target``.

        Label addresses are not known until assembly, so label constants are
        stored as in-line words right after a jump-over stub would be wasteful;
        instead they are resolved via a dedicated pool entry per target.
        """
        # Defer emission: label-address constants are appended (and
        # de-duplicated) in assemble().
        self._items.append(("labelconst_decl", target))
        return LabelRef(f"__labelconst_{target}")

    def jump_if_borrow(self, target: str) -> None:
        """Jump to ``target`` when the borrow flag is 1 (clobbers the accumulator)."""
        self._conditional_jump(target, taken_when=1)

    def jump_if_not_borrow(self, target: str) -> None:
        """Jump to ``target`` when the borrow flag is 0 (clobbers the accumulator)."""
        self._conditional_jump(target, taken_when=0)

    def _conditional_jump(self, target: str, taken_when: int) -> None:
        table = self.new_label()
        fallthrough = self.new_label()
        # R = borrow, then compute table + borrow and patch the operand of the
        # dispatch LD instruction (self-modifying indirection).
        self.ld(self.BORROW)
        self.st(self.ref("scratch2"))
        self.ld(self.const_label(table))
        self.add(self.ref("scratch2"))
        dispatch = self.new_label()
        self.st(self.ref(dispatch, offset=1))
        self.place(dispatch)
        self.ld(0)                       # operand patched at run time
        self.st(self.PC)
        self.place(table)
        if taken_when == 1:
            self.word(LabelRef(fallthrough))
            self.word(LabelRef(target))
        else:
            self.word(LabelRef(target))
            self.word(LabelRef(fallthrough))
        self.place(fallthrough)

    def jump_if_zero(self, operand: Operand, target: str) -> None:
        """Jump to ``target`` when mem[operand] == 0."""
        self.ld(operand)
        self.sub_imm(1)                  # borrow set iff value was 0
        self.jump_if_borrow(target)

    def jump_if_nonzero(self, operand: Operand, target: str) -> None:
        """Jump to ``target`` when mem[operand] != 0."""
        self.ld(operand)
        self.sub_imm(1)
        self.jump_if_not_borrow(target)

    def jump_if_equal(self, operand: Operand, value: int, target: str) -> None:
        """Jump to ``target`` when mem[operand] == value."""
        self.ld(operand)
        self.sub_imm(value)
        self.st(self.ref("scratch3"))
        self.jump_if_zero(self.ref("scratch3"), target)

    def load_indirect(self, pointer: Operand) -> None:
        """R = mem[mem[pointer]] via self-modification of a LD operand."""
        dispatch = self.new_label()
        self.ld(pointer)
        self.st(self.ref(dispatch, offset=1))
        self.place(dispatch)
        self.ld(0)                       # operand patched at run time

    def store_indirect(self, pointer: Operand) -> None:
        """mem[mem[pointer]] = R via self-modification of a ST operand."""
        dispatch = self.new_label()
        self.st(self.ref("scratch4"))
        self.ld(pointer)
        self.st(self.ref(dispatch, offset=1))
        self.ld(self.ref("scratch4"))
        self.place(dispatch)
        self.st(0)                       # operand patched at run time

    def output_byte(self) -> None:
        """Append the low byte of R to the machine's output stream."""
        self.st(self.OUTPUT)

    def input_byte(self) -> None:
        """R = next input byte; borrow = 1 when the input is exhausted."""
        self.ld(self.INPUT)

    def halt(self) -> None:
        """Stop the machine."""
        self.st(self.HALT)

    def set_entry(self, target: str | int) -> None:
        """Select the program entry point (label name or absolute address)."""
        self._pending_entry = target

    # ------------------------------------------------------------------ #
    # Assembly
    # ------------------------------------------------------------------ #
    def assemble(self) -> VeRiscProgram:
        """Resolve labels and constants and return the finished program."""
        # Materialise label-address constants and the constant pool as data
        # words appended after the emitted code.
        label_consts: list[str] = []
        body: list[tuple[str, object]] = []
        for kind, payload in self._items:
            if kind == "labelconst_decl":
                if payload not in label_consts:
                    label_consts.append(payload)
            else:
                body.append((kind, payload))

        address = self.origin
        layout: list[tuple[str, object]] = []
        for kind, payload in body:
            layout.append((kind, payload))
            address += 2 if kind == "insn" else 1

        labels = dict(self._labels)
        for target in label_consts:
            labels[f"__labelconst_{target}"] = address
            layout.append(("word", LabelRef(target)))
            address += 1
        const_addresses: dict[int, int] = {}
        for value in self._const_values:
            labels[f"__const_{value}"] = address
            const_addresses[value] = address
            layout.append(("word", value))
            address += 1

        def resolve(operand: Operand) -> int:
            if isinstance(operand, ConstRef):
                return const_addresses[operand.value]
            if isinstance(operand, LabelRef):
                if operand.name not in labels:
                    raise AssemblyError(f"undefined label {operand.name!r}")
                return (labels[operand.name] + operand.offset) & WORD_MASK
            return int(operand) & WORD_MASK

        words: list[int] = []
        for kind, payload in layout:
            if kind == "insn":
                op, operand = payload
                words.append(int(op))
                words.append(resolve(operand))
            else:
                words.append(resolve(payload))

        entry = self.origin
        if self._pending_entry is not None:
            if isinstance(self._pending_entry, str):
                if self._pending_entry not in labels:
                    raise AssemblyError(f"undefined entry label {self._pending_entry!r}")
                entry = labels[self._pending_entry]
            else:
                entry = int(self._pending_entry)
        return VeRiscProgram(words=words, origin=self.origin, entry=entry, symbols=labels)
