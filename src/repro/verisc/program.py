"""Container for assembled VeRisc programs.

A :class:`VeRiscProgram` is what ends up archived in the Bootstrap document:
a flat list of 16-bit words (instructions, data and constant pool) plus the
entry point.  The Bootstrap's letter encoding operates on the little-endian
byte serialisation produced by :meth:`VeRiscProgram.to_bytes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.verisc.isa import MEMORY_WORDS, WORD_MASK
from repro.verisc.machine import VeRiscMachine


@dataclass
class VeRiscProgram:
    """An assembled VeRisc memory image.

    Attributes
    ----------
    words:
        The memory image, starting at :attr:`origin`.
    origin:
        Load address of the first word (almost always 0).
    entry:
        Address at which execution starts.
    symbols:
        Resolved label addresses, kept for debugging and tests.
    """

    words: list[int]
    origin: int = 0
    entry: int = 0
    symbols: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.origin + len(self.words) > MEMORY_WORDS:
            raise ValueError("program does not fit in VeRisc memory")
        self.words = [w & WORD_MASK for w in self.words]

    def __len__(self) -> int:
        return len(self.words)

    def to_bytes(self) -> bytes:
        """Serialise the word image as little-endian bytes."""
        out = bytearray()
        for word in self.words:
            out.append(word & 0xFF)
            out.append((word >> 8) & 0xFF)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes, origin: int = 0, entry: int = 0) -> "VeRiscProgram":
        """Rebuild a program from its little-endian byte serialisation."""
        if len(data) % 2:
            raise ValueError("a VeRisc image must contain an even number of bytes")
        words = [data[i] | (data[i + 1] << 8) for i in range(0, len(data), 2)]
        return cls(words=words, origin=origin, entry=entry)

    def run(self, input_data: bytes = b"", step_limit: int = 50_000_000) -> bytes:
        """Convenience wrapper: load into a fresh machine, run, return output."""
        machine = VeRiscMachine(step_limit=step_limit, input_data=input_data)
        machine.load_image(self.words, origin=self.origin)
        return machine.run(start=self.entry)

    def machine(self, input_data: bytes = b"", step_limit: int = 50_000_000) -> VeRiscMachine:
        """Return a machine with this program loaded but not yet started."""
        machine = VeRiscMachine(step_limit=step_limit, input_data=input_data)
        machine.load_image(self.words, origin=self.origin)
        machine.state.pc = self.entry
        return machine
