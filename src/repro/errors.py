"""Exception hierarchy for the ULE / Micr'Olonys reproduction.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  Sub-hierarchies mirror the major subsystems:
the virtual machines, the database coder, the media coder, the analog media
channels, the Bootstrap document, and the DBMS substrate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# --------------------------------------------------------------------------- #
# Virtual machines (VeRisc / DynaRisc)
# --------------------------------------------------------------------------- #
class EmulationError(ReproError):
    """Base class for errors raised while assembling or emulating programs."""


class AssemblyError(EmulationError):
    """A source program could not be assembled.

    Attributes
    ----------
    line:
        1-based line number in the source text, when known.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class InvalidInstructionError(EmulationError):
    """An instruction word could not be decoded by the emulator."""


class MachineFault(EmulationError):
    """The emulated machine performed an illegal operation (bad address,
    stack underflow, division fault, ...)."""


class ExecutionLimitExceeded(EmulationError):
    """The emulated program ran longer than the configured step budget."""


# --------------------------------------------------------------------------- #
# DBCoder (database layout coder)
# --------------------------------------------------------------------------- #
class DBCoderError(ReproError):
    """Base class for database-layout encoding/decoding errors."""


class CompressionError(DBCoderError):
    """Raised when a payload cannot be compressed."""


class DecompressionError(DBCoderError):
    """Raised when a compressed stream is corrupt or truncated."""


class ContainerFormatError(DBCoderError):
    """Raised when a DBCoder container header is malformed."""


# --------------------------------------------------------------------------- #
# MOCoder (media layout coder)
# --------------------------------------------------------------------------- #
class MOCoderError(ReproError):
    """Base class for media-layout encoding/decoding errors."""


class EmblemFormatError(MOCoderError):
    """An emblem image does not have the expected structure."""


class EmblemDetectionError(MOCoderError):
    """The emblem geometry could not be located in a scanned image."""


class ClockRecoveryError(MOCoderError):
    """The differential-Manchester cell stream lost synchronisation."""


class ECCError(MOCoderError):
    """Base class for error-correction failures."""


class UncorrectableBlockError(ECCError):
    """An inner Reed-Solomon block had more errors than the code can fix."""


class MissingEmblemError(ECCError):
    """More emblems are missing from a group than the outer code can rebuild."""


# --------------------------------------------------------------------------- #
# Media channels (paper / microfilm / cinema film / dna)
# --------------------------------------------------------------------------- #
class MediaError(ReproError):
    """Base class for analog-media channel errors."""


class MediaCapacityError(MediaError):
    """The payload does not fit on the configured medium."""


class ScanError(MediaError):
    """A scanned frame could not be produced or parsed."""


# --------------------------------------------------------------------------- #
# Bootstrap document
# --------------------------------------------------------------------------- #
class BootstrapError(ReproError):
    """Base class for Bootstrap document errors."""


class LetterCodecError(BootstrapError):
    """The hexadecimal letter encoding encountered an invalid character."""


class BootstrapParseError(BootstrapError):
    """The Bootstrap document text could not be parsed back into sections."""


# --------------------------------------------------------------------------- #
# DBMS substrate
# --------------------------------------------------------------------------- #
class DBMSError(ReproError):
    """Base class for the miniature relational engine."""


class SchemaError(DBMSError):
    """A table definition or row does not match the declared schema."""


class SQLDumpError(DBMSError):
    """A SQL archive file could not be parsed by ``db_load``."""


# --------------------------------------------------------------------------- #
# End-to-end pipeline
# --------------------------------------------------------------------------- #
class ArchiveError(ReproError):
    """Base class for end-to-end archival/restoration errors."""


class RestorationError(ArchiveError):
    """The archived database could not be restored bit-for-bit."""


class StoreError(ArchiveError):
    """An on-media archive store (directory/container/memory) is invalid,
    corrupt, or was asked for something it does not contain."""


# --------------------------------------------------------------------------- #
# Archive service (repro.server)
# --------------------------------------------------------------------------- #
class ServerError(ReproError):
    """Base class for the multi-tenant archive service layer."""


class ArchiveNotFoundError(ServerError):
    """The repository holds no archive under the requested name (HTTP 404)."""


class ArchiveBusyError(ServerError):
    """A conflicting writer holds the archive's writer lock, or the name is
    already taken by an existing archive (HTTP 409)."""


class BadRequestError(ServerError):
    """A service request is malformed: an illegal archive name, an invalid
    Range header, unparsable parameters (HTTP 400)."""


# --------------------------------------------------------------------------- #
# Registries and the unified configuration facade
# --------------------------------------------------------------------------- #
class RegistryError(ReproError):
    """Base class for registry registration/lookup errors."""


class UnknownNameError(RegistryError, KeyError):
    """A registry lookup (codec, media channel, executor, ...) failed.

    Carries the failed ``name``, the registry ``kind``, the valid ``choices``
    and a did-you-mean ``suggestion`` (closest valid name, when one is close
    enough).  Inherits :class:`KeyError` so pre-registry callers that caught
    ``KeyError`` from ``get_profile`` keep working.
    """

    def __init__(self, kind: str, name: str, choices: list[str], suggestion: str | None = None):
        self.kind = kind
        self.name = name
        self.choices = list(choices)
        self.suggestion = suggestion
        message = f"unknown {kind} {name!r}"
        if suggestion:
            message += f"; did you mean {suggestion!r}?"
        message += f" (valid names: {', '.join(self.choices) or 'none registered'})"
        super().__init__(message)

    def __str__(self) -> str:
        # KeyError.__str__ would repr() the message and mangle the quotes.
        return self.args[0]

    def __reduce__(
        self,
    ) -> "tuple[type[UnknownNameError], tuple[str, str, list[str], str | None]]":
        # Exceptions pickle via (cls, self.args) by default, which would call
        # __init__ with the rendered message instead of the four fields; this
        # matters when the error crosses a process-pool boundary.
        return (UnknownNameError, (self.kind, self.name, self.choices, self.suggestion))


class ConfigError(ArchiveError):
    """An :class:`repro.api.ArchiveConfig` is invalid or cannot be parsed."""
