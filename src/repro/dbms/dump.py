"""``db_dump`` and ``db_load``: the software-independent textual archive.

The state of the art the paper builds on (§1, §2) converts a database into a
human-readable SQL text file through well-established interfaces — this is
step 1 of the archival flow and step 6 of restoration (Figure 2).  The format
produced here mirrors ``pg_dump --inserts``: a header comment, one
``CREATE TABLE`` per table, and one ``INSERT`` statement per row, so any
future SQL engine (or human) can reconstruct the data.
"""

from __future__ import annotations

import re

from repro.errors import SQLDumpError
from repro.dbms.database import Column, ColumnType, Database

_DUMP_HEADER = (
    "--\n"
    "-- Database archive produced by repro.dbms.db_dump\n"
    "-- Software-independent SQL text format (pg_dump --inserts style)\n"
    "--\n"
)


# --------------------------------------------------------------------------- #
# Dumping
# --------------------------------------------------------------------------- #
def _sql_type(column: Column) -> str:
    if column.type == ColumnType.INTEGER:
        return "INTEGER"
    if column.type == ColumnType.DECIMAL:
        return "DECIMAL(15,2)"
    if column.type == ColumnType.DATE:
        return "DATE"
    return "VARCHAR(255)"


def _sql_literal(value: "int | str | None") -> str:
    if value is None:
        return "NULL"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        # Decimals and dates are stored as strings but are unquoted SQL
        # literals only when they are numeric; dates and text are quoted.
        if re.fullmatch(r"-?\d+\.\d{2}", value):
            return value
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    raise SQLDumpError(f"cannot render SQL literal for {value!r}")


def db_dump(database: Database) -> str:
    """Serialise a database as a SQL text archive."""
    parts = [_DUMP_HEADER]
    for table in database.tables:
        column_definitions = ",\n".join(
            f"    {column.name} {_sql_type(column)}" for column in table.columns
        )
        parts.append(f"CREATE TABLE {table.name} (\n{column_definitions}\n);\n")
    for table in database.tables:
        parts.append(f"\n-- Data for table {table.name} ({table.row_count} rows)\n")
        for row in table.rows:
            values = ", ".join(_sql_literal(value) for value in row)
            parts.append(f"INSERT INTO {table.name} VALUES ({values});\n")
    return "".join(parts)


# --------------------------------------------------------------------------- #
# Loading
# --------------------------------------------------------------------------- #
_CREATE_PATTERN = re.compile(
    r"CREATE\s+TABLE\s+(\w+)\s*\((.*?)\)\s*;", re.IGNORECASE | re.DOTALL
)
_INSERT_PATTERN = re.compile(
    r"INSERT\s+INTO\s+(\w+)\s+VALUES\s*\((.*?)\)\s*;\s*$",
    re.IGNORECASE | re.MULTILINE,
)


def _parse_column_definitions(body: str) -> list[Column]:
    columns = []
    for definition in _split_top_level(body):
        definition = definition.strip()
        if not definition:
            continue
        parts = definition.split(None, 1)
        if len(parts) != 2:
            raise SQLDumpError(f"cannot parse column definition {definition!r}")
        name, type_text = parts
        columns.append(Column(name=name, type=ColumnType.from_sql(type_text)))
    return columns


def _split_top_level(text: str) -> list[str]:
    """Split on commas that are not inside parentheses or quotes."""
    pieces = []
    depth = 0
    in_string = False
    current = []
    index = 0
    while index < len(text):
        char = text[index]
        if in_string:
            current.append(char)
            if char == "'":
                if index + 1 < len(text) and text[index + 1] == "'":
                    current.append("'")
                    index += 1
                else:
                    in_string = False
        elif char == "'":
            in_string = True
            current.append(char)
        elif char == "(":
            depth += 1
            current.append(char)
        elif char == ")":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            pieces.append("".join(current))
            current = []
        else:
            current.append(char)
        index += 1
    pieces.append("".join(current))
    return pieces


def _parse_value(text: str, column: Column) -> "int | str | None":
    text = text.strip()
    if text.upper() == "NULL":
        return None
    if text.startswith("'") and text.endswith("'"):
        unquoted = text[1:-1].replace("''", "'")
        return unquoted
    if column.type == ColumnType.INTEGER:
        try:
            return int(text)
        except ValueError as exc:
            raise SQLDumpError(f"invalid integer literal {text!r}") from exc
    if column.type == ColumnType.DECIMAL:
        return text
    return text


def db_load(archive_text: str) -> Database:
    """Rebuild a database from a SQL text archive.

    Raises
    ------
    SQLDumpError
        If the archive references unknown tables or contains malformed rows.
    """
    database = Database()
    for match in _CREATE_PATTERN.finditer(archive_text):
        table_name, body = match.group(1), match.group(2)
        database.create_table(table_name, _parse_column_definitions(body))
    if not database.table_names:
        raise SQLDumpError("archive contains no CREATE TABLE statement")
    for match in _INSERT_PATTERN.finditer(archive_text):
        table_name, body = match.group(1), match.group(2)
        table = database.table(table_name)
        raw_values = _split_top_level(body)
        if len(raw_values) != len(table.columns):
            raise SQLDumpError(
                f"INSERT into {table_name} has {len(raw_values)} values for "
                f"{len(table.columns)} columns"
            )
        row = tuple(
            _parse_value(raw, column) for raw, column in zip(raw_values, table.columns)
        )
        table.insert(row)
    return database


def dump_roundtrip_equal(database: Database) -> bool:
    """True when dumping and reloading reproduces an identical database."""
    return db_load(db_dump(database)) == database
