"""A deterministic TPC-H-like data generator.

The paper's paper-archive experiment (§4) uses "the industry-standard TPC-H
benchmark to generate a test dataset", loads it into PostgreSQL and dumps it
with ``pg_dump``, tuning the scale factor so the SQL archive is roughly 1 MB
(1.2 MB).  This module generates the same eight-table schema with the same
row-count ratios, entirely deterministically (seeded), and offers
:func:`tpch_archive_of_size` to pick the scale factor that hits a target
archive size, exactly as the authors tuned theirs.
"""

from __future__ import annotations

import numpy as np

from repro.dbms.database import Column, ColumnType, Database
from repro.dbms.dump import db_dump
from repro.util.rng import deterministic_rng

#: Row counts at scale factor 1.0, per the TPC-H specification.
BASE_ROW_COUNTS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
]
_WORDS = (
    "carefully final deposits furiously silent requests sleep quickly regular "
    "accounts nag blithely ironic packages boost express theodolites cajole "
    "slyly pending foxes among even instructions haggle bold courts wake "
    "daring pinto beans unusual platelets detect special excuses"
).split()
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIP_MODES = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"]
_CONTAINERS = ["SM BOX", "LG CASE", "MED BAG", "JUMBO JAR", "WRAP PACK"]
_TYPES = ["ECONOMY ANODIZED STEEL", "STANDARD POLISHED BRASS", "PROMO BURNISHED COPPER",
          "MEDIUM PLATED TIN", "SMALL BRUSHED NICKEL"]


def _decimal(value: float) -> str:
    return f"{value:.2f}"


def _date(rng: np.random.Generator) -> str:
    year = int(rng.integers(1992, 1999))
    month = int(rng.integers(1, 13))
    day = int(rng.integers(1, 29))
    return f"{year:04d}-{month:02d}-{day:02d}"


def _comment(rng: np.random.Generator, words: int) -> str:
    chosen = rng.choice(len(_WORDS), size=words)
    return " ".join(_WORDS[int(index)] for index in chosen)


def _scaled(base: int, scale_factor: float, minimum: int = 1) -> int:
    return max(minimum, int(round(base * scale_factor)))


def generate_tpch(scale_factor: float = 0.001, seed: int = 7) -> Database:
    """Generate the eight-table TPC-H-like database at ``scale_factor``."""
    if scale_factor <= 0:
        raise ValueError("scale factor must be positive")
    rng = deterministic_rng(seed)
    database = Database(name=f"tpch_sf{scale_factor:g}")

    region = database.create_table("region", [
        Column("r_regionkey", ColumnType.INTEGER),
        Column("r_name", ColumnType.VARCHAR),
        Column("r_comment", ColumnType.VARCHAR),
    ])
    for key, name in enumerate(_REGIONS):
        region.insert((key, name, _comment(rng, 6)))

    nation = database.create_table("nation", [
        Column("n_nationkey", ColumnType.INTEGER),
        Column("n_name", ColumnType.VARCHAR),
        Column("n_regionkey", ColumnType.INTEGER),
        Column("n_comment", ColumnType.VARCHAR),
    ])
    for key, (name, region_key) in enumerate(_NATIONS):
        nation.insert((key, name, region_key, _comment(rng, 6)))

    supplier_count = _scaled(BASE_ROW_COUNTS["supplier"], scale_factor)
    supplier = database.create_table("supplier", [
        Column("s_suppkey", ColumnType.INTEGER),
        Column("s_name", ColumnType.VARCHAR),
        Column("s_address", ColumnType.VARCHAR),
        Column("s_nationkey", ColumnType.INTEGER),
        Column("s_phone", ColumnType.VARCHAR),
        Column("s_acctbal", ColumnType.DECIMAL),
        Column("s_comment", ColumnType.VARCHAR),
    ])
    for key in range(1, supplier_count + 1):
        nation_key = int(rng.integers(0, 25))
        supplier.insert((
            key,
            f"Supplier#{key:09d}",
            _comment(rng, 2).title(),
            nation_key,
            f"{10 + nation_key}-{int(rng.integers(100, 1000))}-"
            f"{int(rng.integers(100, 1000))}-{int(rng.integers(1000, 10000))}",
            _decimal(float(rng.uniform(-999.99, 9999.99))),
            _comment(rng, 8),
        ))

    customer_count = _scaled(BASE_ROW_COUNTS["customer"], scale_factor)
    customer = database.create_table("customer", [
        Column("c_custkey", ColumnType.INTEGER),
        Column("c_name", ColumnType.VARCHAR),
        Column("c_address", ColumnType.VARCHAR),
        Column("c_nationkey", ColumnType.INTEGER),
        Column("c_phone", ColumnType.VARCHAR),
        Column("c_acctbal", ColumnType.DECIMAL),
        Column("c_mktsegment", ColumnType.VARCHAR),
        Column("c_comment", ColumnType.VARCHAR),
    ])
    for key in range(1, customer_count + 1):
        nation_key = int(rng.integers(0, 25))
        customer.insert((
            key,
            f"Customer#{key:09d}",
            _comment(rng, 2).title(),
            nation_key,
            f"{10 + nation_key}-{int(rng.integers(100, 1000))}-"
            f"{int(rng.integers(100, 1000))}-{int(rng.integers(1000, 10000))}",
            _decimal(float(rng.uniform(-999.99, 9999.99))),
            _SEGMENTS[int(rng.integers(0, len(_SEGMENTS)))],
            _comment(rng, 10),
        ))

    part_count = _scaled(BASE_ROW_COUNTS["part"], scale_factor)
    part = database.create_table("part", [
        Column("p_partkey", ColumnType.INTEGER),
        Column("p_name", ColumnType.VARCHAR),
        Column("p_mfgr", ColumnType.VARCHAR),
        Column("p_brand", ColumnType.VARCHAR),
        Column("p_type", ColumnType.VARCHAR),
        Column("p_size", ColumnType.INTEGER),
        Column("p_container", ColumnType.VARCHAR),
        Column("p_retailprice", ColumnType.DECIMAL),
        Column("p_comment", ColumnType.VARCHAR),
    ])
    for key in range(1, part_count + 1):
        manufacturer = int(rng.integers(1, 6))
        part.insert((
            key,
            _comment(rng, 4),
            f"Manufacturer#{manufacturer}",
            f"Brand#{manufacturer}{int(rng.integers(1, 6))}",
            _TYPES[int(rng.integers(0, len(_TYPES)))],
            int(rng.integers(1, 51)),
            _CONTAINERS[int(rng.integers(0, len(_CONTAINERS)))],
            _decimal(900.0 + key % 1000 + float(rng.uniform(0, 100))),
            _comment(rng, 3),
        ))

    partsupp_count = _scaled(BASE_ROW_COUNTS["partsupp"], scale_factor)
    partsupp = database.create_table("partsupp", [
        Column("ps_partkey", ColumnType.INTEGER),
        Column("ps_suppkey", ColumnType.INTEGER),
        Column("ps_availqty", ColumnType.INTEGER),
        Column("ps_supplycost", ColumnType.DECIMAL),
        Column("ps_comment", ColumnType.VARCHAR),
    ])
    for index in range(partsupp_count):
        partsupp.insert((
            (index % part_count) + 1,
            int(rng.integers(1, supplier_count + 1)),
            int(rng.integers(1, 10000)),
            _decimal(float(rng.uniform(1.0, 1000.0))),
            _comment(rng, 12),
        ))

    orders_count = _scaled(BASE_ROW_COUNTS["orders"], scale_factor)
    orders = database.create_table("orders", [
        Column("o_orderkey", ColumnType.INTEGER),
        Column("o_custkey", ColumnType.INTEGER),
        Column("o_orderstatus", ColumnType.VARCHAR),
        Column("o_totalprice", ColumnType.DECIMAL),
        Column("o_orderdate", ColumnType.DATE),
        Column("o_orderpriority", ColumnType.VARCHAR),
        Column("o_clerk", ColumnType.VARCHAR),
        Column("o_shippriority", ColumnType.INTEGER),
        Column("o_comment", ColumnType.VARCHAR),
    ])
    for key in range(1, orders_count + 1):
        orders.insert((
            key,
            int(rng.integers(1, customer_count + 1)),
            ["O", "F", "P"][int(rng.integers(0, 3))],
            _decimal(float(rng.uniform(1000.0, 400000.0))),
            _date(rng),
            _PRIORITIES[int(rng.integers(0, len(_PRIORITIES)))],
            f"Clerk#{int(rng.integers(1, 1000)):09d}",
            0,
            _comment(rng, 8),
        ))

    lineitem_count = _scaled(BASE_ROW_COUNTS["lineitem"], scale_factor)
    lineitem = database.create_table("lineitem", [
        Column("l_orderkey", ColumnType.INTEGER),
        Column("l_partkey", ColumnType.INTEGER),
        Column("l_suppkey", ColumnType.INTEGER),
        Column("l_linenumber", ColumnType.INTEGER),
        Column("l_quantity", ColumnType.INTEGER),
        Column("l_extendedprice", ColumnType.DECIMAL),
        Column("l_discount", ColumnType.DECIMAL),
        Column("l_tax", ColumnType.DECIMAL),
        Column("l_returnflag", ColumnType.VARCHAR),
        Column("l_linestatus", ColumnType.VARCHAR),
        Column("l_shipdate", ColumnType.DATE),
        Column("l_commitdate", ColumnType.DATE),
        Column("l_receiptdate", ColumnType.DATE),
        Column("l_shipinstruct", ColumnType.VARCHAR),
        Column("l_shipmode", ColumnType.VARCHAR),
        Column("l_comment", ColumnType.VARCHAR),
    ])
    line_number = 1
    for index in range(lineitem_count):
        order_key = (index % orders_count) + 1
        line_number = line_number + 1 if index and order_key == ((index - 1) % orders_count) + 1 else 1
        lineitem.insert((
            order_key,
            int(rng.integers(1, part_count + 1)),
            int(rng.integers(1, supplier_count + 1)),
            line_number,
            int(rng.integers(1, 51)),
            _decimal(float(rng.uniform(900.0, 100000.0))),
            _decimal(float(rng.uniform(0.0, 0.10))),
            _decimal(float(rng.uniform(0.0, 0.08))),
            ["A", "N", "R"][int(rng.integers(0, 3))],
            ["O", "F"][int(rng.integers(0, 2))],
            _date(rng),
            _date(rng),
            _date(rng),
            ["DELIVER IN PERSON", "COLLECT COD", "TAKE BACK RETURN", "NONE"][int(rng.integers(0, 4))],
            _SHIP_MODES[int(rng.integers(0, len(_SHIP_MODES)))],
            _comment(rng, 5),
        ))

    return database


def tpch_archive_of_size(target_bytes: int, seed: int = 7, tolerance: float = 0.15) -> tuple[Database, str]:
    """Generate a TPC-H database whose SQL archive is roughly ``target_bytes``.

    Mirrors the paper's methodology ("we configured the TPC-H scale factor to
    produce an archive file that was roughly 1 MB in size").  Returns the
    database and its SQL archive text.
    """
    if target_bytes < 10_000:
        raise ValueError("target archive size must be at least 10 kB")
    # Estimate bytes per unit of scale factor from a small probe, then refine.
    probe_scale = 0.0005
    probe_dump = db_dump(generate_tpch(probe_scale, seed=seed))
    bytes_per_scale = len(probe_dump) / probe_scale
    scale = target_bytes / bytes_per_scale
    for _ in range(4):
        database = generate_tpch(scale, seed=seed)
        dump = db_dump(database)
        error = (len(dump) - target_bytes) / target_bytes
        if abs(error) <= tolerance:
            return database, dump
        scale *= target_bytes / max(len(dump), 1)
    return database, dump
