"""The DBMS substrate: what gets archived.

The paper's end-to-end experiment loads a TPC-H dataset into PostgreSQL and
uses ``pg_dump`` to produce a textual SQL archive, which is then fed to
DBCoder.  This package provides the equivalent substrate without an external
database: a miniature in-memory relational engine, a deterministic TPC-H-like
data generator, and a ``db_dump`` / ``db_load`` pair producing and consuming a
software-independent SQL-text archive.
"""

from repro.dbms.database import Column, ColumnType, Table, Database
from repro.dbms.dump import db_dump, db_load
from repro.dbms.tpch import generate_tpch, tpch_archive_of_size

__all__ = [
    "Column",
    "ColumnType",
    "Table",
    "Database",
    "db_dump",
    "db_load",
    "generate_tpch",
    "tpch_archive_of_size",
]
