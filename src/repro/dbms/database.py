"""A miniature in-memory relational engine.

Only what the archival pipeline and its benchmarks need: typed tables, row
insertion with validation, simple scans/filters/aggregations, and equality
comparison so a restored database can be proven identical to the original.
Values are kept in their textual-archive-friendly forms (ints, fixed-point
decimals as strings, dates as ISO strings), which keeps ``db_dump`` followed
by ``db_load`` exactly reversible.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """SQL column types supported by the engine."""

    INTEGER = "INTEGER"
    DECIMAL = "DECIMAL(15,2)"
    VARCHAR = "VARCHAR"
    DATE = "DATE"

    @classmethod
    def from_sql(cls, text: str) -> "ColumnType":
        """Parse a SQL type name (ignoring length/precision arguments)."""
        normalised = text.strip().upper()
        if normalised.startswith("INT") or normalised in ("BIGINT", "SMALLINT"):
            return cls.INTEGER
        if normalised.startswith(("DECIMAL", "NUMERIC")):
            return cls.DECIMAL
        if normalised.startswith(("VARCHAR", "CHAR", "TEXT")):
            return cls.VARCHAR
        if normalised.startswith("DATE"):
            return cls.DATE
        raise SchemaError(f"unsupported SQL type {text!r}")


_DATE_PATTERN = re.compile(r"^\d{4}-\d{2}-\d{2}$")
_DECIMAL_PATTERN = re.compile(r"^-?\d+\.\d{2}$")


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: ColumnType

    def validate(self, value: "int | str | None") -> None:
        """Raise :class:`SchemaError` if ``value`` does not fit this column."""
        if value is None:
            return
        if self.type == ColumnType.INTEGER:
            if not isinstance(value, int) or isinstance(value, bool):
                raise SchemaError(f"column {self.name}: expected int, got {value!r}")
        elif self.type == ColumnType.DECIMAL:
            if not isinstance(value, str) or not _DECIMAL_PATTERN.match(value):
                raise SchemaError(
                    f"column {self.name}: decimals are fixed-point strings like '12.34', "
                    f"got {value!r}"
                )
        elif self.type == ColumnType.VARCHAR:
            if not isinstance(value, str):
                raise SchemaError(f"column {self.name}: expected str, got {value!r}")
            if "\n" in value or "\r" in value:
                raise SchemaError(
                    f"column {self.name}: text values must not contain line breaks "
                    "(the SQL archive format is line-oriented)"
                )
        elif self.type == ColumnType.DATE:
            if not isinstance(value, str) or not _DATE_PATTERN.match(value):
                raise SchemaError(
                    f"column {self.name}: dates are ISO strings like '1995-03-17', got {value!r}"
                )


@dataclass
class Table:
    """A named collection of typed rows."""

    name: str
    columns: list[Column]
    rows: "list[tuple[int | str | None, ...]]" = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {self.name}: duplicate column names")

    # ------------------------------------------------------------------ #
    @property
    def column_names(self) -> list[str]:
        """Column names, in declaration order."""
        return [column.name for column in self.columns]

    def column_index(self, name: str) -> int:
        """Position of a column by name."""
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise SchemaError(f"table {self.name}: no column named {name!r}")

    @property
    def row_count(self) -> int:
        """Number of rows currently stored."""
        return len(self.rows)

    # ------------------------------------------------------------------ #
    def insert(self, row: "Iterable[int | str | None]") -> None:
        """Insert a row after validating it against the schema."""
        values = tuple(row)
        if len(values) != len(self.columns):
            raise SchemaError(
                f"table {self.name}: row has {len(values)} values for "
                f"{len(self.columns)} columns"
            )
        for column, value in zip(self.columns, values):
            column.validate(value)
        self.rows.append(values)

    def insert_many(self, rows: "Iterable[Iterable[int | str | None]]") -> None:
        """Insert many rows."""
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------ #
    def scan(self) -> "Iterator[tuple[int | str | None, ...]]":
        """Iterate over all rows."""
        return iter(self.rows)

    def select(
        self, predicate: "Callable[[tuple[int | str | None, ...]], bool]"
    ) -> "list[tuple[int | str | None, ...]]":
        """Rows satisfying ``predicate``."""
        return [row for row in self.rows if predicate(row)]

    def column_values(self, name: str) -> "list[int | str | None]":
        """All values of one column."""
        index = self.column_index(name)
        return [row[index] for row in self.rows]

    def sum(self, name: str) -> float:
        """Sum of a numeric column (decimals are parsed from their strings)."""
        index = self.column_index(name)
        column = self.columns[index]
        if column.type == ColumnType.INTEGER:
            return float(sum(row[index] for row in self.rows))
        if column.type == ColumnType.DECIMAL:
            return float(sum(float(row[index]) for row in self.rows))
        raise SchemaError(f"column {name} of table {self.name} is not numeric")

    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (
            self.name == other.name
            and self.columns == other.columns
            and self.rows == other.rows
        )


class Database:
    """A named collection of tables."""

    def __init__(self, name: str = "archive"):
        self.name = name
        self._tables: dict[str, Table] = {}

    # ------------------------------------------------------------------ #
    def create_table(self, name: str, columns: list[Column]) -> Table:
        """Create a new empty table."""
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name=name, columns=list(columns))
        self._tables[name] = table
        return table

    def add_table(self, table: Table) -> None:
        """Register an existing table object."""
        if table.name in self._tables:
            raise SchemaError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look a table up by name."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise SchemaError(f"no table named {name!r}") from exc

    @property
    def table_names(self) -> list[str]:
        """Names of all tables, in creation order."""
        return list(self._tables)

    @property
    def tables(self) -> list[Table]:
        """All tables, in creation order."""
        return list(self._tables.values())

    @property
    def total_rows(self) -> int:
        """Total number of rows across all tables."""
        return sum(table.row_count for table in self.tables)

    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self.table_names == other.table_names and all(
            self.table(name) == other.table(name) for name in self.table_names
        )
