"""Cost model of archiving the whole DBMS stack under emulation.

§2 of the paper rejects the "archive the DBMS software stack and emulate it"
approach: it requires meticulously archiving the DBMS, its libraries, runtime
and OS with every archive, ties every restoration to one emulated DBMS
version, complicates licensing, and presumes a faithful x86-class emulator
will exist.  This module quantifies the storage side of that argument so the
benchmarks can print a concrete comparison between the two approaches for the
same archived database.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class StackComponent:
    """One component that must be archived alongside the data."""

    name: str
    size_bytes: int
    must_be_emulated: bool = True


#: A representative full-stack inventory (sizes are typical installed sizes).
DEFAULT_STACK = (
    StackComponent("DBMS server binaries + extensions", 250_000_000),
    StackComponent("Language runtimes and client libraries", 400_000_000),
    StackComponent("Operating system image", 2_500_000_000),
    StackComponent("x86-class full-system emulator", 50_000_000),
    StackComponent("Device firmware / BIOS images", 16_000_000),
)


@dataclass
class StackEmulationBaseline:
    """Storage accounting for the DBMS-stack-emulation alternative."""

    components: tuple[StackComponent, ...] = DEFAULT_STACK
    notes: list[str] = field(default_factory=lambda: [
        "every archived snapshot pins one DBMS version; restored data must be "
        "manually synchronised with the then-current version",
        "archived proprietary software raises licensing questions decades later",
        "the approach presumes a future emulator faithful to today's ISA "
        "extensions (SIMD, HTM, virtualisation), which must be maintained forever",
    ])

    @property
    def stack_bytes(self) -> int:
        """Bytes of software that must be archived with every database."""
        return sum(component.size_bytes for component in self.components)

    def archive_bytes(self, database_archive_bytes: int) -> int:
        """Total archived bytes for one database snapshot under this approach."""
        return self.stack_bytes + database_archive_bytes

    def overhead_factor(self, database_archive_bytes: int) -> float:
        """How many times larger the archive is than the data itself."""
        if database_archive_bytes <= 0:
            raise ValueError("database archive size must be positive")
        return self.archive_bytes(database_archive_bytes) / database_archive_bytes


def ule_decoder_footprint(
    bootstrap_text_bytes: int,
    system_emblem_payload_bytes: int,
) -> int:
    """Bytes of decoding machinery ULE archives with each database.

    The counterpart number to :meth:`StackEmulationBaseline.stack_bytes`: the
    Bootstrap document plus the system-emblem payload (the archived DBCoder
    decoder), typically a few kilobytes in total.
    """
    return bootstrap_text_bytes + system_emblem_payload_bytes
