"""A conventional QR-style 2-D barcode baseline.

§3.1 contrasts emblems with QR codes and Data Matrix: such codes use a
*separate* clocking system (position patterns in three corners, timing rows),
assume generous capture resolution, and top out at a few kilobytes — they are
"mainly used as tags or placeholders for short textual information".  This
module implements a representative member of that family so the robustness
and density benchmarks can compare it with MOCoder emblems under the same
simulated scanners:

* finder squares in three corners and alternating timing lines (clocking is
  *positional*, not self-clocking);
* one data bit per module (denser per cell than differential Manchester, but
  with no local clock redundancy);
* a CRC-32 to detect — but not correct — read errors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EmblemDetectionError, EmblemFormatError
from repro.mocoder.emblem import otsu_threshold
from repro.util.bits import bits_to_bytes, bytes_to_bits
from repro.util.crc import crc32_of

_FINDER = 7       # finder pattern size in modules
_SEPARATOR = 1    # white separator around finder patterns
_TIMING_INDEX = _FINDER + _SEPARATOR  # row/column carrying the timing pattern


@dataclass(frozen=True)
class BarcodeSpec:
    """Geometry of the baseline barcode."""

    modules: int = 177          # QR version 40 uses 177x177 modules
    module_pixels: int = 4
    quiet_modules: int = 4

    def __post_init__(self) -> None:
        if self.modules < 21:
            raise EmblemFormatError("a barcode needs at least 21 modules per side")

    @property
    def data_module_count(self) -> int:
        """Modules available for data bits."""
        reserved = 3 * (_FINDER + _SEPARATOR) ** 2      # three corner patterns
        reserved += 2 * (self.modules - 2 * (_FINDER + _SEPARATOR))  # timing row + column
        return self.modules * self.modules - reserved

    @property
    def payload_capacity(self) -> int:
        """Payload bytes per barcode (after the 4-byte CRC and 2-byte length)."""
        return self.data_module_count // 8 - 6

    @property
    def total_pixels(self) -> int:
        """Raster side length in pixels."""
        return (self.modules + 2 * self.quiet_modules) * self.module_pixels


class SimpleBarcode:
    """Encoder/decoder for the QR-style baseline."""

    def __init__(self, spec: BarcodeSpec | None = None):
        self.spec = spec or BarcodeSpec()

    # ------------------------------------------------------------------ #
    def _reserved_mask(self) -> np.ndarray:
        modules = self.spec.modules
        reserved = np.zeros((modules, modules), dtype=bool)
        block = _FINDER + _SEPARATOR
        reserved[:block, :block] = True                 # top-left
        reserved[:block, modules - block:] = True       # top-right
        reserved[modules - block:, :block] = True       # bottom-left
        reserved[_TIMING_INDEX, :] = True               # timing row
        reserved[:, _TIMING_INDEX] = True               # timing column
        return reserved

    def _fixed_patterns(self) -> np.ndarray:
        modules = self.spec.modules
        grid = np.zeros((modules, modules), dtype=np.uint8)

        def draw_finder(top: int, left: int) -> None:
            grid[top:top + _FINDER, left:left + _FINDER] = 1
            grid[top + 1:top + _FINDER - 1, left + 1:left + _FINDER - 1] = 0
            grid[top + 2:top + _FINDER - 2, left + 2:left + _FINDER - 2] = 1

        draw_finder(0, 0)
        draw_finder(0, modules - _FINDER)
        draw_finder(modules - _FINDER, 0)
        indices = np.arange(modules)
        grid[_TIMING_INDEX, :] = (indices + 1) % 2
        grid[:, _TIMING_INDEX] = (indices + 1) % 2
        return grid

    # ------------------------------------------------------------------ #
    def encode(self, payload: bytes) -> np.ndarray:
        """Render a payload as a barcode raster.

        Raises
        ------
        EmblemFormatError
            If the payload exceeds the barcode's capacity.
        """
        spec = self.spec
        if len(payload) > spec.payload_capacity:
            raise EmblemFormatError(
                f"payload of {len(payload)} bytes exceeds the barcode capacity of "
                f"{spec.payload_capacity} bytes"
            )
        framed = (
            len(payload).to_bytes(2, "little")
            + crc32_of(payload).to_bytes(4, "little")
            + payload
        )
        bits = bytes_to_bits(framed)
        grid = self._fixed_patterns()
        reserved = self._reserved_mask()
        data_positions = np.nonzero(~reserved)
        usable = min(bits.size, data_positions[0].size)
        values = np.zeros(data_positions[0].size, dtype=np.uint8)
        values[:usable] = bits[:usable]
        grid[data_positions] = values
        image = np.full(
            (spec.modules + 2 * spec.quiet_modules,) * 2, 255, dtype=np.uint8
        )
        inner = np.where(grid == 1, 0, 255).astype(np.uint8)
        q = spec.quiet_modules
        image[q:q + spec.modules, q:q + spec.modules] = inner
        if spec.module_pixels > 1:
            image = np.kron(
                image, np.ones((spec.module_pixels, spec.module_pixels), dtype=np.uint8)
            )
        return image

    # ------------------------------------------------------------------ #
    def decode(self, image: np.ndarray) -> bytes:
        """Read a payload back from a (possibly degraded) scan.

        Raises
        ------
        EmblemDetectionError
            If the code cannot be located or fails its CRC (the baseline has
            no error *correction*, only detection).
        """
        spec = self.spec
        image = np.asarray(image, dtype=np.float64)
        threshold = otsu_threshold(image)
        dark = image < threshold
        # Positional clocking: the code is located from the bounding box of
        # rows/columns with a significant amount of ink.
        row_ink = dark.sum(axis=1)
        column_ink = dark.sum(axis=0)
        significant_rows = np.nonzero(row_ink > max(3, 0.01 * dark.shape[1]))[0]
        significant_columns = np.nonzero(column_ink > max(3, 0.01 * dark.shape[0]))[0]
        if significant_rows.size == 0 or significant_columns.size == 0:
            raise EmblemDetectionError("no barcode found in the scan")
        top, bottom = significant_rows[0], significant_rows[-1]
        left, right = significant_columns[0], significant_columns[-1]
        module_height = (bottom - top + 1) / spec.modules
        module_width = (right - left + 1) / spec.modules
        centers = np.arange(spec.modules) + 0.5
        ys = np.clip(np.round(top + centers * module_height).astype(int), 0, image.shape[0] - 1)
        xs = np.clip(np.round(left + centers * module_width).astype(int), 0, image.shape[1] - 1)
        sampled = image[np.ix_(ys, xs)] < threshold
        reserved = self._reserved_mask()
        bits = sampled[~reserved].astype(np.uint8)
        data = bits_to_bytes(bits)
        if len(data) < 6:
            raise EmblemDetectionError("barcode data area is too small")
        length = int.from_bytes(data[0:2], "little")
        checksum = int.from_bytes(data[2:6], "little")
        payload = data[6:6 + length]
        if len(payload) != length or crc32_of(payload) != checksum:
            raise EmblemDetectionError(
                "barcode failed its CRC check (no error correction is available)"
            )
        return payload
