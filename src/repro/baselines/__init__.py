"""Baselines the paper argues against.

* :mod:`repro.baselines.barcode2d` — a conventional QR-style 2-D barcode with
  a separate clocking system (finder + timing patterns), small per-code
  capacity and no archival-grade error correction; §3.1 explains why such
  codes are the wrong tool for multi-megabyte archival streams.
* :mod:`repro.baselines.stack_emulation` — a cost model of the alternative
  §2 rejects: archiving the whole DBMS software stack and emulating it.
* Plain-text / no-compression archival is covered by
  :class:`repro.dbcoder.Profile.STORE`.
"""

from repro.baselines.barcode2d import BarcodeSpec, SimpleBarcode
from repro.baselines.stack_emulation import StackEmulationBaseline, StackComponent

__all__ = [
    "BarcodeSpec",
    "SimpleBarcode",
    "StackEmulationBaseline",
    "StackComponent",
]
