"""DynaRisc: the 16-bit, 23-instruction software processor of Olonys.

The decoding halves of DBCoder and MOCoder are written in DynaRisc assembly
and archived as instruction streams (as emblems or as Bootstrap letters).
This package provides the complete toolchain:

* :mod:`repro.dynarisc.isa` — the reconstructed 23-instruction ISA and its
  binary encoding (the paper's Table 1 shows a sample of it),
* :mod:`repro.dynarisc.assembler` — a two-pass assembler with labels and data
  directives,
* :mod:`repro.dynarisc.emulator` — the reference emulator,
* :mod:`repro.dynarisc.disassembler` — the inverse of the assembler,
* :mod:`repro.dynarisc.programs` — the archived decoder programs themselves,
  written in DynaRisc assembly.
"""

from repro.dynarisc.isa import Opcode, Register, Condition, PAPER_TABLE1_MNEMONICS
from repro.dynarisc.assembler import DynaRiscAssembler
from repro.dynarisc.emulator import DynaRiscEmulator
from repro.dynarisc.disassembler import disassemble

__all__ = [
    "Opcode",
    "Register",
    "Condition",
    "PAPER_TABLE1_MNEMONICS",
    "DynaRiscAssembler",
    "DynaRiscEmulator",
    "disassemble",
]
