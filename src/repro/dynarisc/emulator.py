"""The reference DynaRisc emulator.

In the Micr'Olonys deployment this emulator is itself an archived VeRisc
program (see :mod:`repro.nested`); the Python implementation here is the
reference model used by the encoders of today and by the test suite, exactly
as the paper's authors run the encoding half on a contemporary machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionLimitExceeded, InvalidInstructionError, MachineFault
from repro.dynarisc.isa import (
    DEFAULT_STACK_TOP,
    INPUT_PORT,
    MEMORY_BYTES,
    OUTPUT_PORT,
    WORD_MASK,
    Condition,
    Opcode,
    Register,
    REGISTER_COUNT,
)


@dataclass
class Flags:
    """The DynaRisc condition flags."""

    zero: bool = False
    negative: bool = False
    carry: bool = False


@dataclass
class TraceEntry:
    """One executed instruction, recorded when tracing is enabled."""

    pc: int
    opcode: Opcode
    rd: int
    rs: int
    immediate: int | None
    registers: tuple[int, ...] = field(default_factory=tuple)


class DynaRiscEmulator:
    """Interprets DynaRisc machine code.

    Parameters
    ----------
    program:
        Machine code bytes loaded at ``origin``.
    input_data:
        Byte stream readable through the memory-mapped input port.
    origin:
        Load address (and default entry point) of the program.
    step_limit:
        Safety budget against runaway archived programs.
    trace:
        When true, every executed instruction is appended to :attr:`trace_log`
        (used by tests and by the nested-emulation cross-checks).
    """

    def __init__(
        self,
        program: bytes = b"",
        input_data: bytes = b"",
        origin: int = 0,
        step_limit: int = 100_000_000,
        trace: bool = False,
    ):
        self.memory = bytearray(MEMORY_BYTES)
        self.registers = [0] * REGISTER_COUNT
        self.registers[Register.SP] = DEFAULT_STACK_TOP
        self.flags = Flags()
        self.pc = origin
        self.halted = False
        self.steps = 0
        self.step_limit = step_limit
        self.origin = origin
        self.input_data = bytes(input_data)
        self.input_pos = 0
        self.output = bytearray()
        self.trace_enabled = trace
        self.trace_log: list[TraceEntry] = []
        if program:
            self.load(program, origin)

    # ------------------------------------------------------------------ #
    # Loading and memory access
    # ------------------------------------------------------------------ #
    def load(self, data: bytes, origin: int = 0) -> None:
        """Copy ``data`` into memory at ``origin``."""
        if origin + len(data) > MEMORY_BYTES:
            raise MachineFault("program does not fit in DynaRisc memory")
        self.memory[origin:origin + len(data)] = data

    def read_byte(self, address: int) -> int:
        """Read a data byte, honouring the memory-mapped input port."""
        address &= WORD_MASK
        if address == INPUT_PORT:
            if self.input_pos >= len(self.input_data):
                self.flags.carry = True
                return 0
            value = self.input_data[self.input_pos]
            self.input_pos += 1
            self.flags.carry = False
            return value
        return self.memory[address]

    def write_byte(self, address: int, value: int) -> None:
        """Write a data byte, honouring the memory-mapped output port."""
        address &= WORD_MASK
        value &= 0xFF
        if address == OUTPUT_PORT:
            self.output.append(value)
            return
        self.memory[address] = value

    def read_word(self, address: int) -> int:
        """Read a little-endian 16-bit word from memory."""
        address &= WORD_MASK
        low = self.memory[address]
        high = self.memory[(address + 1) & WORD_MASK]
        return low | (high << 8)

    def write_word(self, address: int, value: int) -> None:
        """Write a little-endian 16-bit word to memory."""
        address &= WORD_MASK
        self.memory[address] = value & 0xFF
        self.memory[(address + 1) & WORD_MASK] = (value >> 8) & 0xFF

    # ------------------------------------------------------------------ #
    # Flag helpers
    # ------------------------------------------------------------------ #
    def _set_zn(self, value: int) -> int:
        value &= WORD_MASK
        self.flags.zero = value == 0
        self.flags.negative = bool(value & 0x8000)
        return value

    def _condition_met(self, condition: int) -> bool:
        try:
            cond = Condition(condition)
        except ValueError as exc:
            raise InvalidInstructionError(f"invalid JCOND condition: {condition}") from exc
        if cond == Condition.EQ:
            return self.flags.zero
        if cond == Condition.NE:
            return not self.flags.zero
        if cond == Condition.CS:
            return self.flags.carry
        if cond == Condition.CC:
            return not self.flags.carry
        if cond == Condition.MI:
            return self.flags.negative
        return not self.flags.negative

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> None:
        """Fetch, decode and execute one instruction."""
        if self.halted:
            return
        word = self.read_word(self.pc)
        opcode_field = (word >> 11) & 0x1F
        rd = (word >> 7) & 0xF
        rs = (word >> 3) & 0xF
        try:
            opcode = Opcode(opcode_field)
        except ValueError as exc:
            raise InvalidInstructionError(
                f"invalid opcode {opcode_field} at pc={self.pc:#06x}"
            ) from exc

        next_pc = (self.pc + 2) & WORD_MASK
        immediate = None
        if opcode in (Opcode.LDI, Opcode.JUMP, Opcode.JCOND, Opcode.CALL):
            immediate = self.read_word(next_pc)
            next_pc = (next_pc + 2) & WORD_MASK

        if self.trace_enabled:
            self.trace_log.append(
                TraceEntry(self.pc, opcode, rd, rs, immediate, tuple(self.registers))
            )

        regs = self.registers
        flags = self.flags
        self.pc = next_pc

        if opcode == Opcode.HALT:
            self.halted = True
        elif opcode == Opcode.MOVE:
            self._check_reg(rd)
            self._check_reg(rs)
            regs[rd] = self._set_zn(regs[rs])
        elif opcode == Opcode.LDI:
            self._check_reg(rd)
            regs[rd] = self._set_zn(immediate)
        elif opcode == Opcode.LDM:
            self._check_reg(rd)
            self._check_reg(rs)
            regs[rd] = self._set_zn(self.read_byte(regs[rs]))
        elif opcode == Opcode.STM:
            # rd field = pointer register, rs field = source register.
            self._check_reg(rd)
            self._check_reg(rs)
            self.write_byte(regs[rd], regs[rs] & 0xFF)
        elif opcode == Opcode.ADD:
            self._binary_add(rd, rs, carry_in=0)
        elif opcode == Opcode.ADC:
            self._binary_add(rd, rs, carry_in=1 if flags.carry else 0)
        elif opcode == Opcode.SUB:
            self._binary_sub(rd, rs, borrow_in=0, writeback=True)
        elif opcode == Opcode.SBB:
            self._binary_sub(rd, rs, borrow_in=1 if flags.carry else 0, writeback=True)
        elif opcode == Opcode.CMP:
            self._binary_sub(rd, rs, borrow_in=0, writeback=False)
        elif opcode == Opcode.MUL:
            self._check_reg(rd)
            self._check_reg(rs)
            product = regs[rd] * regs[rs]
            flags.carry = product > WORD_MASK
            regs[rd] = self._set_zn(product)
        elif opcode == Opcode.AND:
            self._check_reg(rd)
            self._check_reg(rs)
            regs[rd] = self._set_zn(regs[rd] & regs[rs])
        elif opcode == Opcode.OR:
            self._check_reg(rd)
            self._check_reg(rs)
            regs[rd] = self._set_zn(regs[rd] | regs[rs])
        elif opcode == Opcode.XOR:
            self._check_reg(rd)
            self._check_reg(rs)
            regs[rd] = self._set_zn(regs[rd] ^ regs[rs])
        elif opcode == Opcode.NOT:
            self._check_reg(rd)
            regs[rd] = self._set_zn(~regs[rd])
        elif opcode in (Opcode.LSL, Opcode.LSR, Opcode.ASR, Opcode.ROR):
            self._shift(opcode, rd, rs)
        elif opcode == Opcode.JUMP:
            self.pc = immediate
        elif opcode == Opcode.JCOND:
            if self._condition_met(rd):
                self.pc = immediate
        elif opcode == Opcode.CALL:
            sp = (regs[Register.SP] - 2) & WORD_MASK
            regs[Register.SP] = sp
            self.write_word(sp, self.pc)
            self.pc = immediate
        elif opcode == Opcode.RET:
            sp = regs[Register.SP]
            self.pc = self.read_word(sp)
            regs[Register.SP] = (sp + 2) & WORD_MASK
        else:  # pragma: no cover - the Opcode conversion above is exhaustive
            raise InvalidInstructionError(f"unhandled opcode {opcode!r}")
        self.steps += 1

    def _check_reg(self, index: int) -> None:
        if index >= REGISTER_COUNT:
            raise MachineFault(f"register field {index} does not name a register")

    def _binary_add(self, rd: int, rs: int, carry_in: int) -> None:
        self._check_reg(rd)
        self._check_reg(rs)
        total = self.registers[rd] + self.registers[rs] + carry_in
        self.flags.carry = total > WORD_MASK
        self.registers[rd] = self._set_zn(total)

    def _binary_sub(self, rd: int, rs: int, borrow_in: int, writeback: bool) -> None:
        self._check_reg(rd)
        self._check_reg(rs)
        total = self.registers[rd] - self.registers[rs] - borrow_in
        self.flags.carry = total < 0
        result = self._set_zn(total)
        if writeback:
            self.registers[rd] = result

    def _shift(self, opcode: Opcode, rd: int, rs: int) -> None:
        self._check_reg(rd)
        self._check_reg(rs)
        amount = self.registers[rs] & 0xF
        value = self.registers[rd]
        carry = self.flags.carry
        if amount:
            if opcode == Opcode.LSL:
                carry = bool((value << amount) & 0x10000)
                value = (value << amount) & WORD_MASK
            elif opcode == Opcode.LSR:
                carry = bool((value >> (amount - 1)) & 1)
                value >>= amount
            elif opcode == Opcode.ASR:
                carry = bool((value >> (amount - 1)) & 1)
                sign = value & 0x8000
                for _ in range(amount):
                    value = (value >> 1) | sign
            else:  # ROR
                for _ in range(amount):
                    carry = bool(value & 1)
                    value = (value >> 1) | ((value & 1) << 15)
        self.flags.carry = carry
        self.registers[rd] = self._set_zn(value)

    def run(self, entry: int | None = None) -> bytes:
        """Run until HALT; return the bytes written to the output port."""
        if entry is not None:
            self.pc = entry
        while not self.halted:
            if self.steps >= self.step_limit:
                raise ExecutionLimitExceeded(
                    f"DynaRisc program exceeded {self.step_limit} steps"
                )
            self.step()
        return bytes(self.output)
