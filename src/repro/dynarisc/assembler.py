"""Two-pass assembler for DynaRisc assembly source.

The archived decoders (:mod:`repro.dynarisc.programs`) are written in this
assembly language; the binary instruction streams the assembler produces are
what Micr'Olonys stores on the analog medium (as emblems for DBCoder, as
Bootstrap letters for MOCoder and the DynaRisc emulator).

Syntax
------
::

    ; comments run to end of line
    start:                      ; labels end with a colon
        LDI  r0, #42            ; immediates take a leading '#'
        LDI  d0, #buffer        ; labels and .equ symbols are valid immediates
        LDM  r1, [d0]           ; byte load through a pointer register
        STM  r1, [d1]           ; byte store through a pointer register
        ADD  r0, r1
        CMP  r0, r2
        JCOND ne, start         ; conditions: eq ne cs cc mi pl
        CALL subroutine
        RET
        HALT

    buffer: .byte 1, 2, 0x10
    text:   .ascii "hello"
            .word 0x1234, 7
            .space 32
            .equ WINDOW, 4096
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssemblyError
from repro.dynarisc.isa import (
    INPUT_PORT,
    OUTPUT_PORT,
    OPCODES_WITH_IMMEDIATE,
    WORD_MASK,
    Condition,
    Instruction,
    Opcode,
    Register,
)

#: Symbols that are always defined (memory-mapped port addresses).
BUILTIN_SYMBOLS = {
    "INPUT_PORT": INPUT_PORT,
    "OUTPUT_PORT": OUTPUT_PORT,
}


@dataclass
class AssembledProgram:
    """Result of assembling a DynaRisc source file."""

    code: bytes
    origin: int
    entry: int
    symbols: dict[str, int]

    def __len__(self) -> int:
        return len(self.code)


@dataclass
class _Statement:
    kind: str           # "insn" | "byte" | "word" | "space" | "ascii"
    payload: object
    line: int
    address: int = 0
    size: int = 0


class DynaRiscAssembler:
    """Assemble DynaRisc source text into machine code."""

    def assemble(self, source: str, origin: int = 0) -> AssembledProgram:
        """Assemble ``source``; the entry point is the ``start`` label if present."""
        statements, labels, equates = self._parse(source, origin)
        symbols = dict(BUILTIN_SYMBOLS)
        symbols.update(equates)
        symbols.update(labels)
        code = bytearray()
        for statement in statements:
            code.extend(self._emit(statement, symbols))
        entry = labels.get("start", origin)
        return AssembledProgram(bytes(code), origin, entry, symbols)

    # ------------------------------------------------------------------ #
    # Pass 1: parse and lay out
    # ------------------------------------------------------------------ #
    def _parse(
        self, source: str, origin: int
    ) -> "tuple[list[_Statement], dict[str, int], dict[str, int]]":
        statements: list[_Statement] = []
        labels: dict[str, int] = {}
        equates: dict[str, int] = {}
        address = origin

        for line_number, raw_line in enumerate(source.splitlines(), start=1):
            line = self._strip_comment(raw_line).strip()
            if not line:
                continue
            while ":" in line and not line.startswith((".ascii", ".byte")):
                candidate, rest = line.split(":", 1)
                candidate = candidate.strip()
                if not candidate.isidentifier():
                    break
                if candidate.lower() in labels:
                    raise AssemblyError(f"duplicate label {candidate!r}", line=line_number)
                labels[candidate.lower()] = address
                line = rest.strip()
            if not line:
                continue
            statement = self._parse_statement(line, line_number)
            if statement is None:
                continue
            if statement.kind == "equ":
                name, value = statement.payload
                equates[name] = value
                continue
            statement.address = address
            address += statement.size
            statements.append(statement)
        return statements, labels, equates

    @staticmethod
    def _strip_comment(line: str) -> str:
        # A ';' inside a string literal (only used by .ascii) must be kept.
        result = []
        in_string = False
        for char in line:
            if char == '"':
                in_string = not in_string
            if char == ";" and not in_string:
                break
            result.append(char)
        return "".join(result)

    def _parse_statement(self, line: str, line_number: int) -> _Statement | None:
        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.lower()
        rest = rest.strip()
        if mnemonic == ".equ":
            name, _, value_text = rest.partition(",")
            name = name.strip().lower()
            if not name.isidentifier():
                raise AssemblyError(f"invalid .equ name {name!r}", line=line_number)
            try:
                value = int(value_text.strip(), 0)
            except ValueError as exc:
                raise AssemblyError(f"invalid .equ value {value_text!r}", line=line_number) from exc
            return _Statement("equ", (name, value & WORD_MASK), line_number)
        if mnemonic == ".byte":
            values = [value.strip() for value in rest.split(",") if value.strip()]
            if not values:
                raise AssemblyError(".byte requires at least one value", line=line_number)
            return _Statement("byte", values, line_number, size=len(values))
        if mnemonic == ".word":
            values = [value.strip() for value in rest.split(",") if value.strip()]
            if not values:
                raise AssemblyError(".word requires at least one value", line=line_number)
            return _Statement("word", values, line_number, size=2 * len(values))
        if mnemonic == ".ascii":
            text = rest.strip()
            if len(text) < 2 or not (text.startswith('"') and text.endswith('"')):
                raise AssemblyError(".ascii requires a double-quoted string", line=line_number)
            literal = text[1:-1]
            return _Statement("ascii", literal, line_number, size=len(literal))
        if mnemonic == ".space":
            try:
                count = int(rest, 0)
            except ValueError as exc:
                raise AssemblyError(f"invalid .space count {rest!r}", line=line_number) from exc
            return _Statement("space", count, line_number, size=count)
        if mnemonic.startswith("."):
            raise AssemblyError(f"unknown directive {mnemonic!r}", line=line_number)

        try:
            opcode = Opcode[mnemonic.upper()]
        except KeyError as exc:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line=line_number) from exc
        operands = [operand.strip() for operand in rest.split(",")] if rest else []
        operands = [operand for operand in operands if operand]
        size = 4 if opcode in OPCODES_WITH_IMMEDIATE else 2
        return _Statement("insn", (opcode, operands), line_number, size=size)

    # ------------------------------------------------------------------ #
    # Pass 2: emit
    # ------------------------------------------------------------------ #
    def _emit(self, statement: _Statement, symbols: dict[str, int]) -> bytes:
        if statement.kind == "byte":
            return bytes(
                self._value(text, symbols, statement.line) & 0xFF
                for text in statement.payload
            )
        if statement.kind == "word":
            out = bytearray()
            for text in statement.payload:
                value = self._value(text, symbols, statement.line)
                out.append(value & 0xFF)
                out.append((value >> 8) & 0xFF)
            return bytes(out)
        if statement.kind == "ascii":
            return statement.payload.encode("ascii")
        if statement.kind == "space":
            return bytes(statement.payload)
        opcode, operands = statement.payload
        return self._emit_instruction(opcode, operands, symbols, statement.line)

    def _emit_instruction(
        self, opcode: Opcode, operands: list[str], symbols: dict[str, int], line: int
    ) -> bytes:
        rd = rs = 0
        immediate = None

        def reg(text: str) -> int:
            return self._register(text, line)

        if opcode in (Opcode.HALT, Opcode.RET):
            self._expect(operands, 0, opcode, line)
        elif opcode == Opcode.NOT:
            self._expect(operands, 1, opcode, line)
            rd = reg(operands[0])
        elif opcode == Opcode.LDI:
            self._expect(operands, 2, opcode, line)
            rd = reg(operands[0])
            immediate = self._immediate(operands[1], symbols, line)
        elif opcode == Opcode.LDM:
            self._expect(operands, 2, opcode, line)
            rd = reg(operands[0])
            rs = self._pointer(operands[1], line)
        elif opcode == Opcode.STM:
            self._expect(operands, 2, opcode, line)
            rs = reg(operands[0])
            rd = self._pointer(operands[1], line)
        elif opcode == Opcode.JUMP or opcode == Opcode.CALL:
            self._expect(operands, 1, opcode, line)
            immediate = self._address(operands[0], symbols, line)
        elif opcode == Opcode.JCOND:
            self._expect(operands, 2, opcode, line)
            rd = self._condition(operands[0], line)
            immediate = self._address(operands[1], symbols, line)
        else:
            self._expect(operands, 2, opcode, line)
            rd = reg(operands[0])
            rs = reg(operands[1])
        return Instruction(opcode, rd, rs, immediate).encode()

    @staticmethod
    def _expect(operands: list[str], count: int, opcode: Opcode, line: int) -> None:
        if len(operands) != count:
            raise AssemblyError(
                f"{opcode.name} expects {count} operand(s), got {len(operands)}", line=line
            )

    @staticmethod
    def _register(text: str, line: int) -> int:
        name = text.strip().upper()
        if name in Register.__members__:
            return int(Register[name])
        raise AssemblyError(f"invalid register {text!r}", line=line)

    def _pointer(self, text: str, line: int) -> int:
        text = text.strip()
        if not (text.startswith("[") and text.endswith("]")):
            raise AssemblyError(f"memory operand must be written [reg], got {text!r}", line=line)
        return self._register(text[1:-1], line)

    @staticmethod
    def _condition(text: str, line: int) -> int:
        name = text.strip().upper()
        if name in Condition.__members__:
            return int(Condition[name])
        raise AssemblyError(f"invalid condition {text!r}", line=line)

    def _immediate(self, text: str, symbols: dict[str, int], line: int) -> int:
        text = text.strip()
        if not text.startswith("#"):
            raise AssemblyError(f"immediate operands must start with '#', got {text!r}", line=line)
        return self._value(text[1:], symbols, line)

    def _address(self, text: str, symbols: dict[str, int], line: int) -> int:
        return self._value(text.lstrip("#"), symbols, line)

    @staticmethod
    def _value(text: str, symbols: dict[str, int], line: int) -> int:
        text = text.strip()
        key = text.lower()
        if key in symbols:
            return symbols[key] & WORD_MASK
        if text.upper() in BUILTIN_SYMBOLS:
            return BUILTIN_SYMBOLS[text.upper()]
        if len(text) == 3 and text.startswith("'") and text.endswith("'"):
            return ord(text[1])
        try:
            return int(text, 0) & WORD_MASK
        except ValueError as exc:
            raise AssemblyError(f"unknown symbol or value {text!r}", line=line) from exc
