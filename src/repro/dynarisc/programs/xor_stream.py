"""A keyed XOR stream transform in DynaRisc assembly.

The smallest non-trivial archived program: the first input byte is the key,
every following byte is emitted XOR-ed with that key.  Because the transform
is its own inverse it makes a convenient round-trip fixture for the emulator,
the nested emulator and the Bootstrap letter encoding.
"""

XOR_STREAM_SOURCE = """
; ---------------------------------------------------------------------------
; XOR stream transform.
;   input : key byte, then payload bytes
;   output: payload bytes XOR key
; ---------------------------------------------------------------------------
start:
        LDI  d2, #INPUT_PORT
        LDI  d3, #OUTPUT_PORT
        LDM  r1, [d2]            ; r1 = key
        JCOND cs, done

next_byte:
        LDM  r0, [d2]
        JCOND cs, done
        XOR  r0, r1
        STM  r0, [d3]
        JUMP next_byte

done:
        HALT
"""
