"""Archived DynaRisc programs.

These are the decoder programs that Micr'Olonys stores on the analog medium:
the database-layout decoder (DBCoder's decompressor) plus a few smaller
programs used by tests, examples and the portability benchmarks.  All of them
are written in DynaRisc assembly and assembled on demand; the resulting
instruction streams are what gets turned into system emblems or Bootstrap
letters.
"""

from __future__ import annotations

from repro.dynarisc.assembler import AssembledProgram, DynaRiscAssembler
from repro.dynarisc.programs.lzss import LZSS_DECODER_SOURCE
from repro.dynarisc.programs.rle import RLE_DECODER_SOURCE
from repro.dynarisc.programs.xor_stream import XOR_STREAM_SOURCE
from repro.dynarisc.programs.checksum import CHECKSUM_SOURCE
from repro.dynarisc.programs.manchester import MANCHESTER_UNPACK_SOURCE

#: Registry of archived program sources by name.
PROGRAM_SOURCES: dict[str, str] = {
    "lzss_decoder": LZSS_DECODER_SOURCE,
    "rle_decoder": RLE_DECODER_SOURCE,
    "xor_stream": XOR_STREAM_SOURCE,
    "checksum": CHECKSUM_SOURCE,
    "manchester_unpack": MANCHESTER_UNPACK_SOURCE,
}

_CACHE: dict[str, AssembledProgram] = {}


def program_names() -> list[str]:
    """Names of all archived DynaRisc programs."""
    return sorted(PROGRAM_SOURCES)


def get_source(name: str) -> str:
    """Return the assembly source of an archived program."""
    try:
        return PROGRAM_SOURCES[name]
    except KeyError as exc:
        raise KeyError(f"unknown DynaRisc program {name!r}") from exc


def get_program(name: str) -> AssembledProgram:
    """Assemble (and cache) an archived program by name."""
    if name not in _CACHE:
        _CACHE[name] = DynaRiscAssembler().assemble(get_source(name))
    return _CACHE[name]


__all__ = [
    "PROGRAM_SOURCES",
    "program_names",
    "get_source",
    "get_program",
    "LZSS_DECODER_SOURCE",
    "RLE_DECODER_SOURCE",
    "XOR_STREAM_SOURCE",
    "CHECKSUM_SOURCE",
]
