"""The cell-stream half of the MOCoder decoder, in DynaRisc assembly.

This is the program carried by the Bootstrap's ``MOCODER-DECODER`` section:
it converts a stream of binarised emblem cells (one byte per cell, 0 or 1, in
data-area order) back into packed bytes by undoing the differential
Manchester pairing — a bit is 1 when the two half-cells of a bit period carry
the same level.  Geometry detection and Reed-Solomon correction are described
in the Bootstrap prose; this archived program covers the clock-recovery step
that is unique to MOCoder.
"""

MANCHESTER_UNPACK_SOURCE = """
; ---------------------------------------------------------------------------
; Differential-Manchester cell unpacker.
;   input : pairs of cell bytes (each 0 or 1)
;   output: packed bytes, MSB first; one output bit per input cell pair
;           (bit = 1 when the two half-cells are equal)
; ---------------------------------------------------------------------------
start:
        LDI  d2, #INPUT_PORT
        LDI  d3, #OUTPUT_PORT
        LDI  r6, #1

next_byte:
        LDI  r3, #0              ; byte being assembled
        LDI  r4, #8              ; bits still needed

next_bit:
        LDM  r0, [d2]            ; first half-cell
        JCOND cs, done
        LDM  r1, [d2]            ; second half-cell
        JCOND cs, done
        CMP  r0, r1
        JCOND ne, bit_zero
        LSL  r3, r6
        ADD  r3, r6              ; equal half-cells -> bit 1
        JUMP bit_done
bit_zero:
        LSL  r3, r6
bit_done:
        SUB  r4, r6
        JCOND ne, next_bit
        STM  r3, [d3]
        JUMP next_byte

done:
        HALT
"""
