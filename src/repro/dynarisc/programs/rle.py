"""A run-length-decoding program in DynaRisc assembly.

Used by the examples and by the nested-emulation benchmarks as a small,
easily-inspected archived decoder.  The stream is a sequence of
``(count, value)`` byte pairs with ``count >= 1``; decoding stops when the
input stream is exhausted.
"""

RLE_DECODER_SOURCE = """
; ---------------------------------------------------------------------------
; Run-length decoder.
;   input : pairs of bytes (count, value), count >= 1
;   output: `value` repeated `count` times for every pair
; ---------------------------------------------------------------------------
start:
        LDI  d2, #INPUT_PORT
        LDI  d3, #OUTPUT_PORT
        LDI  r6, #1

next_pair:
        LDM  r1, [d2]            ; r1 = run length
        JCOND cs, done
        LDM  r2, [d2]            ; r2 = value
        JCOND cs, done

run:
        LDI  r0, #0
        CMP  r1, r0
        JCOND eq, next_pair
        STM  r2, [d3]
        SUB  r1, r6
        JUMP run

done:
        HALT
"""
