"""A 16-bit additive checksum program in DynaRisc assembly.

Sums every input byte modulo 2**16 and emits the two-byte little-endian sum.
The restoration examples use it as an integrity self-check that runs entirely
inside the emulated environment.
"""

CHECKSUM_SOURCE = """
; ---------------------------------------------------------------------------
; 16-bit additive checksum.
;   input : any byte stream
;   output: two bytes, little-endian sum of all input bytes (mod 65536)
; ---------------------------------------------------------------------------
start:
        LDI  d2, #INPUT_PORT
        LDI  d3, #OUTPUT_PORT
        LDI  r1, #0              ; running sum

next_byte:
        LDM  r0, [d2]
        JCOND cs, done
        ADD  r1, r0
        JUMP next_byte

done:
        MOVE r0, r1              ; low byte
        STM  r0, [d3]
        LDI  r2, #8
        MOVE r0, r1
        LSR  r0, r2              ; high byte
        STM  r0, [d3]
        HALT
"""
