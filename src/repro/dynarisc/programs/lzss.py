"""The archived DBCoder decoder: an LZSS decompressor in DynaRisc assembly.

This is the program the paper stores as *system emblems* (step 5 of the
archival flow in Figure 2a): the database-layout decoder, ported to DynaRisc
so that a future user can run it under the emulated processor.  It decodes
the byte-aligned LZSS stream produced by
:func:`repro.dbcoder.lz77.lzss_compress`.

Stream format (also documented in :mod:`repro.dbcoder.lz77`)::

    repeat until end of input:
        flag byte F                (bit i, LSB first, describes item i)
        8 items, item i is
            if F bit i == 1: one literal byte
            if F bit i == 0: a match  -> two bytes:
                 byte0 = offset & 0xFF
                 byte1 = ((offset >> 8) << 4) | (length - 3)
            offset in 1..4095 counts backwards from the current position,
            length in 3..18

The decoder keeps a 4096-byte sliding window in memory at WINDOW_BASE and
streams every restored byte to the memory-mapped output port.
"""

LZSS_DECODER_SOURCE = """
; ---------------------------------------------------------------------------
; DBCoder layout decoder (LZSS), DynaRisc assembly.
;
; register allocation:
;   d0 - scratch pointer (window addressing inside emit)
;   d1 - scratch pointer (window addressing for match copies)
;   d2 - input port pointer
;   d3 - output port pointer
;   r0 - current byte / scratch
;   r1 - flag byte (shifted right as items are consumed)
;   r2 - items remaining in the current group
;   r3 - window position (only the low 12 bits are significant)
;   r4 - match length countdown
;   r5 - match offset / scratch
;   r6 - constant 1
;   r7 - scratch (masks, window index)
; ---------------------------------------------------------------------------
        .equ WINDOW_BASE, 0x4000
        .equ WINDOW_MASK, 0x0FFF

start:
        LDI  d2, #INPUT_PORT
        LDI  d3, #OUTPUT_PORT
        LDI  r3, #0
        LDI  r6, #1

next_group:
        LDM  r1, [d2]            ; flag byte (carry set once input is exhausted)
        JCOND cs, done
        LDI  r2, #8

next_item:
        LDI  r0, #0
        CMP  r2, r0
        JCOND eq, next_group
        MOVE r0, r1
        LDI  r5, #1
        AND  r0, r5              ; r0 = flag bit for this item
        LSR  r1, r6
        SUB  r2, r6
        LDI  r5, #1
        CMP  r0, r5
        JCOND eq, literal

match:
        LDM  r0, [d2]            ; offset low byte
        JCOND cs, done
        MOVE r5, r0
        LDM  r0, [d2]            ; (offset high nibble << 4) | (length - 3)
        JCOND cs, done
        MOVE r4, r0
        LDI  r7, #0x000F
        AND  r4, r7
        LDI  r7, #3
        ADD  r4, r7              ; r4 = match length
        LDI  r7, #0x00F0
        AND  r0, r7
        LDI  r7, #4
        LSL  r0, r7              ; r0 = offset high bits << 8
        ADD  r5, r0              ; r5 = full offset

copy_loop:
        LDI  r0, #0
        CMP  r4, r0
        JCOND eq, next_item
        MOVE r0, r3
        SUB  r0, r5              ; source index = position - offset
        LDI  r7, #WINDOW_MASK
        AND  r0, r7
        LDI  d1, #WINDOW_BASE
        ADD  d1, r0
        LDM  r0, [d1]            ; r0 = history byte
        CALL emit
        SUB  r4, r6
        JUMP copy_loop

literal:
        LDM  r0, [d2]
        JCOND cs, done
        CALL emit
        JUMP next_item

; emit: write r0 to the output stream and into the sliding window,
;       then advance the window position.  Clobbers r7 and d0.
emit:
        STM  r0, [d3]
        MOVE r7, r3
        LDI  d0, #WINDOW_MASK
        AND  r7, d0
        LDI  d0, #WINDOW_BASE
        ADD  d0, r7
        STM  r0, [d0]
        ADD  r3, r6
        RET

done:
        HALT
"""
