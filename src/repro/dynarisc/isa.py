"""The DynaRisc instruction set architecture.

DynaRisc is the 16-bit, 23-instruction RISC processor that Olonys emulates in
order to run the archived DBCoder and MOCoder decoders.  The paper's Table 1
lists a *sample* of the ISA (arithmetic, logical, and control/data-movement
instructions) and refers to a patent for the remainder; this module
reconstructs a complete, self-consistent 23-instruction ISA that contains
every instruction named in Table 1.

Machine model
-------------
* sixteen-bit data paths and registers;
* eight data registers ``R0``–``R7``, four memory-pointer registers
  ``D0``–``D3`` and a stack pointer ``SP`` (thirteen architectural registers);
* a byte-addressed memory of 65,536 bytes;
* three condition flags: zero (Z), negative (N) and carry/borrow (C);
* memory-mapped byte-stream ports for decoder input and output.

Instruction encoding
--------------------
Every instruction is one 16-bit word, optionally followed by one 16-bit
immediate/address word (LDI, JUMP, JCOND, CALL)::

    bits 15..11   opcode        (5 bits)
    bits 10..7    rd / cond     (4 bits)
    bits  6..3    rs            (4 bits)
    bits  2..0    reserved      (3 bits, must be zero)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Size of DynaRisc memory in bytes.
MEMORY_BYTES = 65536

#: Mask for 16-bit arithmetic.
WORD_MASK = 0xFFFF

#: Memory-mapped port: a byte load from this address returns the next input
#: byte (carry flag set once the input stream is exhausted).
INPUT_PORT = 0xFFF0

#: Memory-mapped port: a byte store to this address appends to the output.
OUTPUT_PORT = 0xFFF1

#: Default initial stack pointer (grows downwards).  Decoder programs keep all
#: of their state below this address, which also lets the nested
#: DynaRisc-in-VeRisc emulator host the full working memory of a decoder.
DEFAULT_STACK_TOP = 0x7F00


class Opcode(enum.IntEnum):
    """The 23 DynaRisc opcodes."""

    HALT = 0
    MOVE = 1
    LDI = 2
    LDM = 3
    STM = 4
    ADD = 5
    ADC = 6
    SUB = 7
    SBB = 8
    CMP = 9
    MUL = 10
    AND = 11
    OR = 12
    XOR = 13
    NOT = 14
    LSL = 15
    LSR = 16
    ASR = 17
    ROR = 18
    JUMP = 19
    JCOND = 20
    CALL = 21
    RET = 22


#: Opcodes that are followed by a 16-bit immediate or address word.
OPCODES_WITH_IMMEDIATE = frozenset(
    {Opcode.LDI, Opcode.JUMP, Opcode.JCOND, Opcode.CALL}
)

#: The instruction mnemonics that appear in the paper's Table 1.
PAPER_TABLE1_MNEMONICS = (
    "ADC", "SBB", "SUB", "CMP", "MUL",
    "AND", "OR", "XOR", "LSL", "LSR", "ASR", "ROR",
    "MOVE", "LDI", "LDM", "STM", "JUMP",
)


class Register(enum.IntEnum):
    """Architectural registers addressable by the 4-bit register fields."""

    R0 = 0
    R1 = 1
    R2 = 2
    R3 = 3
    R4 = 4
    R5 = 5
    R6 = 6
    R7 = 7
    D0 = 8
    D1 = 9
    D2 = 10
    D3 = 11
    SP = 12


#: Number of architectural registers.
REGISTER_COUNT = 13


class Condition(enum.IntEnum):
    """Condition codes usable with ``JCOND`` (encoded in the rd field)."""

    EQ = 0  #: Z == 1
    NE = 1  #: Z == 0
    CS = 2  #: C == 1 (carry set / borrow occurred)
    CC = 3  #: C == 0
    MI = 4  #: N == 1 (negative)
    PL = 5  #: N == 0


@dataclass(frozen=True)
class Instruction:
    """A decoded DynaRisc instruction."""

    opcode: Opcode
    rd: int = 0
    rs: int = 0
    immediate: int | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.rd < 16:
            raise ValueError(f"rd field out of range: {self.rd}")
        if not 0 <= self.rs < 16:
            raise ValueError(f"rs field out of range: {self.rs}")
        needs_immediate = self.opcode in OPCODES_WITH_IMMEDIATE
        if needs_immediate and self.immediate is None:
            raise ValueError(f"{self.opcode.name} requires an immediate word")
        if not needs_immediate and self.immediate is not None:
            raise ValueError(f"{self.opcode.name} does not take an immediate word")
        if self.immediate is not None and not 0 <= self.immediate <= WORD_MASK:
            raise ValueError(f"immediate out of range: {self.immediate}")

    @property
    def size_bytes(self) -> int:
        """Encoded size in bytes (2 or 4)."""
        return 4 if self.opcode in OPCODES_WITH_IMMEDIATE else 2

    def encode(self) -> bytes:
        """Encode to little-endian bytes."""
        word = (int(self.opcode) << 11) | (self.rd << 7) | (self.rs << 3)
        parts = [word & 0xFF, (word >> 8) & 0xFF]
        if self.immediate is not None:
            parts.extend([self.immediate & 0xFF, (self.immediate >> 8) & 0xFF])
        return bytes(parts)

    @classmethod
    def decode_word(cls, word: int, immediate: int | None = None) -> "Instruction":
        """Decode an instruction word (plus optional pre-fetched immediate).

        Raises
        ------
        ValueError
            If the opcode field does not name a DynaRisc instruction or the
            reserved bits are non-zero.
        """
        opcode_field = (word >> 11) & 0x1F
        try:
            opcode = Opcode(opcode_field)
        except ValueError as exc:
            raise ValueError(f"invalid DynaRisc opcode field: {opcode_field}") from exc
        if word & 0b111:
            raise ValueError("reserved instruction bits must be zero")
        rd = (word >> 7) & 0xF
        rs = (word >> 3) & 0xF
        if opcode in OPCODES_WITH_IMMEDIATE:
            if immediate is None:
                raise ValueError(f"{opcode.name} requires an immediate word")
            return cls(opcode, rd, rs, immediate & WORD_MASK)
        return cls(opcode, rd, rs, None)

    def __str__(self) -> str:
        from repro.dynarisc.disassembler import format_instruction

        return format_instruction(self)
