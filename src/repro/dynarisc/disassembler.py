"""Disassembler for DynaRisc machine code.

Used by the test suite to verify assembler/encoder round trips and by the
benchmark harness to print archived decoder listings, mirroring the way the
Bootstrap document describes instruction streams to a future implementer.
"""

from __future__ import annotations

from repro.errors import InvalidInstructionError
from repro.dynarisc.isa import (
    OPCODES_WITH_IMMEDIATE,
    Condition,
    Instruction,
    Opcode,
    Register,
)


def format_instruction(instruction: Instruction) -> str:
    """Render a decoded instruction in the assembler's source syntax."""
    opcode = instruction.opcode
    if opcode in (Opcode.HALT, Opcode.RET):
        return opcode.name
    if opcode == Opcode.NOT:
        return f"{opcode.name} {Register(instruction.rd).name}"
    if opcode == Opcode.LDI:
        return f"{opcode.name} {Register(instruction.rd).name}, #{instruction.immediate:#06x}"
    if opcode == Opcode.LDM:
        return f"{opcode.name} {Register(instruction.rd).name}, [{Register(instruction.rs).name}]"
    if opcode == Opcode.STM:
        return f"{opcode.name} {Register(instruction.rs).name}, [{Register(instruction.rd).name}]"
    if opcode in (Opcode.JUMP, Opcode.CALL):
        return f"{opcode.name} {instruction.immediate:#06x}"
    if opcode == Opcode.JCOND:
        return f"{opcode.name} {Condition(instruction.rd).name}, {instruction.immediate:#06x}"
    return f"{opcode.name} {Register(instruction.rd).name}, {Register(instruction.rs).name}"


def decode_stream(code: bytes, origin: int = 0) -> list[tuple[int, Instruction]]:
    """Decode a flat machine-code buffer into (address, instruction) pairs.

    Decoding stops cleanly at the end of the buffer; a trailing partial
    instruction raises :class:`InvalidInstructionError`.
    """
    result: list[tuple[int, Instruction]] = []
    offset = 0
    while offset < len(code):
        if offset + 2 > len(code):
            raise InvalidInstructionError("truncated instruction word at end of stream")
        word = code[offset] | (code[offset + 1] << 8)
        opcode_field = (word >> 11) & 0x1F
        try:
            opcode = Opcode(opcode_field)
        except ValueError as exc:
            raise InvalidInstructionError(
                f"invalid opcode field {opcode_field} at offset {offset}"
            ) from exc
        immediate = None
        size = 2
        if opcode in OPCODES_WITH_IMMEDIATE:
            if offset + 4 > len(code):
                raise InvalidInstructionError("truncated immediate word at end of stream")
            immediate = code[offset + 2] | (code[offset + 3] << 8)
            size = 4
        result.append((origin + offset, Instruction.decode_word(word, immediate)))
        offset += size
    return result


def disassemble(code: bytes, origin: int = 0) -> str:
    """Return a printable listing of ``code``.

    Note that DynaRisc programs freely mix code and data; disassembling the
    data region of a program is not meaningful, so callers normally pass only
    the code section.
    """
    lines = []
    for address, instruction in decode_stream(code, origin):
        lines.append(f"{address:#06x}:  {format_instruction(instruction)}")
    return "\n".join(lines)
