"""Named, pluggable registries: one string-keyed contract for every substrate.

The ULE paper's core argument is a *single self-describing contract* between
the writer and the future reader; this module is the in-process half of that
contract.  Every pluggable substrate of the library — compression codecs,
media channels, pipeline executors and scanner distortion models — is
resolvable by a short string name, so an :class:`repro.api.ArchiveConfig`
(and therefore a saved ``config.json``) fully describes a run without any
Python object wiring.

Five registries ship populated with the built-ins:

* :data:`codecs` — DBCoder compression codecs (``store`` / ``portable`` /
  ``dense``); user codecs register a byte-level compress/decompress pair via
  :func:`register_codec`.
* :data:`media` — :class:`~repro.core.profiles.MediaProfile` entries pairing
  an emblem geometry with its analog channel (paper, microfilm, cinema film,
  synthetic DNA), with short aliases (``paper``, ``microfilm``, ``cinema``,
  ``dna``, ``test``).
* :data:`executors` — factories for the pipeline's segment executors
  (``serial`` / ``thread`` / ``process`` / ``auto``).
* :data:`distortions` — named scanner/medium degradation profiles.
* :data:`stores` — :class:`~repro.store.backends.StorageBackend` archive
  layouts (``directory`` / ``container`` / ``memory``).

Lookups are case-insensitive and failures raise
:class:`~repro.errors.UnknownNameError` with a did-you-mean suggestion.

Plugin discovery: the ``REPRO_PLUGINS`` environment variable names a
comma-separated list of modules imported when this module loads.  A plugin
module registers its codecs/media/backends at import time, and because
*worker processes re-import this module*, plugins named there resolve inside
``process``-executor workers too — the supported way to run a
:func:`register_codec` codec under the process pool.  Codecs registered only
by calling :func:`register_codec` in the parent process remain invisible to
workers; run those with the ``serial``/``thread`` executors.
"""

from __future__ import annotations

import difflib
import importlib
import os
import warnings
from dataclasses import dataclass, field
from typing import Callable, Generic, Iterator, TypeVar

from repro.errors import DecompressionError, RegistryError, UnknownNameError
from repro.core.profiles import (
    CINEMA_PROFILE,
    DNA_PROFILE,
    MICROFILM_DENSE_PROFILE,
    MICROFILM_PROFILE,
    MediaProfile,
    PAPER_PROFILE,
    TEST_PROFILE,
)
from repro.dbcoder.dbcoder import DBCoder, Profile
from repro.dbcoder.formats import pack_container, unpack_container
from repro.media.distortions import (
    AGED_MICROFILM,
    CINEMA_SCAN,
    DistortionProfile,
    OFFICE_SCAN,
    PRISTINE,
)
from repro.pipeline.executors import (
    ProcessPoolSegmentExecutor,
    SegmentExecutor,
    SerialExecutor,
    ThreadPoolSegmentExecutor,
)
from repro.store.backends import (
    ContainerBackend,
    DirectoryBackend,
    MemoryBackend,
    StorageBackend,
)
from repro.store.volumes import VolumeSetBackend
from repro.util.crc import crc32_of

ValueT = TypeVar("ValueT")

__all__ = [
    "Registry",
    "Codec",
    "codecs",
    "media",
    "executors",
    "distortions",
    "stores",
    "get_codec",
    "get_media",
    "get_executor_factory",
    "get_distortion",
    "get_store",
    "register_codec",
    "load_plugins",
    "CUSTOM_CODEC_PROFILE_ID",
    "PLUGINS_ENV_VAR",
]


class Registry(Generic[ValueT]):
    """A case-insensitive name -> value mapping with aliases and suggestions.

    ``register``/``unregister`` let users plug their own entries in at run
    time; ``get`` resolves aliases and raises
    :class:`~repro.errors.UnknownNameError` (with the closest valid name)
    instead of a bare ``KeyError``.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, ValueT] = {}
        self._aliases: dict[str, str] = {}

    @staticmethod
    def _normalize(name: str) -> str:
        return str(name).strip().lower()

    # ------------------------------------------------------------------ #
    def register(self, name: str, value: ValueT, *, overwrite: bool = False) -> ValueT:
        """Register ``value`` under ``name``.

        Raises
        ------
        RegistryError
            If the name (or an alias of it) is already taken and
            ``overwrite`` is false.
        """
        key = self._normalize(name)
        if not key:
            raise RegistryError(f"{self.kind} names must be non-empty")
        if not overwrite and (key in self._entries or key in self._aliases):
            raise RegistryError(
                f"{self.kind} {name!r} is already registered; "
                f"pass overwrite=True to replace it"
            )
        self._aliases.pop(key, None)
        self._entries[key] = value
        return value

    def alias(self, alias: str, target: str, *, overwrite: bool = False) -> None:
        """Make ``alias`` resolve to the already-registered ``target``.

        Raises
        ------
        RegistryError
            If the alias collides with a registered name, or with an
            existing alias and ``overwrite`` is false.
        """
        target_key = self.resolve_name(target)
        key = self._normalize(alias)
        if key in self._entries:
            raise RegistryError(f"{self.kind} {alias!r} is already a registered name")
        if key in self._aliases and not overwrite:
            raise RegistryError(
                f"{self.kind} alias {alias!r} already points at "
                f"{self._aliases[key]!r}; pass overwrite=True to repoint it"
            )
        self._aliases[key] = target_key

    def unregister(self, name: str) -> None:
        """Remove a name (and any aliases pointing at it) or an alias."""
        key = self._normalize(name)
        if key in self._entries:
            del self._entries[key]
            self._aliases = {
                alias: target for alias, target in self._aliases.items() if target != key
            }
            return
        if key in self._aliases:
            del self._aliases[key]
            return
        raise self._unknown(name)

    # ------------------------------------------------------------------ #
    def resolve_name(self, name: str) -> str:
        """Return the canonical registered name for ``name`` (alias-aware)."""
        key = self._normalize(name)
        key = self._aliases.get(key, key)
        if key not in self._entries:
            raise self._unknown(name)
        return key

    def get(self, name: str) -> ValueT:
        """Look ``name`` up, raising :class:`UnknownNameError` on a miss."""
        return self._entries[self.resolve_name(name)]

    def _unknown(self, name: str) -> UnknownNameError:
        valid = sorted(self._entries) + sorted(self._aliases)
        close = difflib.get_close_matches(self._normalize(name), valid, n=1, cutoff=0.5)
        return UnknownNameError(self.kind, name, valid, close[0] if close else None)

    # ------------------------------------------------------------------ #
    def names(self) -> list[str]:
        """Canonical registered names, sorted (aliases excluded)."""
        return sorted(self._entries)

    def aliases(self) -> dict[str, str]:
        """Alias -> canonical-name mapping."""
        return dict(self._aliases)

    def items(self) -> Iterator[tuple[str, ValueT]]:
        for name in self.names():
            yield name, self._entries[name]

    def __contains__(self, name: str) -> bool:
        try:
            self.resolve_name(name)
        except UnknownNameError:
            return False
        return True

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, names={self.names()})"


# --------------------------------------------------------------------------- #
# Codecs
# --------------------------------------------------------------------------- #
#: Container profile identifier reserved for user-registered codecs; the
#: codec is then dispatched by *name* (from the archive manifest), never by
#: this byte.
CUSTOM_CODEC_PROFILE_ID = 0xFF


@dataclass(frozen=True)
class Codec:
    """A named DBCoder-level compression codec.

    Built-in codecs wrap a :class:`~repro.dbcoder.Profile`; user codecs
    supply a raw byte-level ``compress``/``decompress`` pair and get the same
    self-describing container (length + CRC-32 of the original data) wrapped
    around their stream, so every codec's restore path is integrity-checked.
    """

    name: str
    description: str = ""
    profile: Profile | None = None
    compress: Callable[[bytes], bytes] | None = field(default=None, repr=False)
    decompress: Callable[[bytes], bytes] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.profile is None and (self.compress is None or self.decompress is None):
            raise RegistryError(
                f"codec {self.name!r} needs either a DBCoder profile or both "
                "compress and decompress callables"
            )

    @property
    def is_builtin(self) -> bool:
        """True when the codec is one of the DBCoder profiles."""
        return self.profile is not None

    @property
    def manifest_name(self) -> str:
        """The name recorded in archive manifests.

        Built-ins keep the historical ``Profile.name`` spelling
        (``"PORTABLE"``) so pre-registry manifests and new ones agree.
        """
        return self.profile.name if self.profile is not None else self.name

    # ------------------------------------------------------------------ #
    def encode(self, data: bytes) -> bytes:
        """Compress ``data`` into a self-describing DBCoder container."""
        if self.profile is not None:
            return DBCoder(self.profile).encode(data)
        return pack_container(CUSTOM_CODEC_PROFILE_ID, data, self.compress(data))

    def decode(self, container: bytes) -> bytes:
        """Decode a container produced by :meth:`encode`, verifying length/CRC."""
        if self.profile is not None:
            return DBCoder().decode(container)
        header, stream = unpack_container(container)
        data = self.decompress(stream)
        if len(data) != header.original_length or crc32_of(data) != header.original_crc32:
            raise DecompressionError(
                f"codec {self.name!r}: restored data fails the archived length/CRC check"
            )
        return data


#: Compression codecs, by name.
codecs: Registry[Codec] = Registry("codec")

codecs.register(
    "store",
    Codec("store", "no compression (baseline and debugging aid)", Profile.STORE),
)
codecs.register(
    "portable",
    Codec(
        "portable",
        "byte-aligned LZSS; decodable by the archived DynaRisc decoder",
        Profile.PORTABLE,
    ),
)
codecs.register(
    "dense",
    Codec(
        "dense",
        "LZSS + adaptive arithmetic coding (maximum density)",
        Profile.DENSE,
    ),
)


def get_codec(name: "str | Profile | Codec") -> Codec:
    """Resolve a codec from a registry name, a DBCoder profile, or itself."""
    if isinstance(name, Codec):
        return name
    if isinstance(name, Profile):
        return codecs.get(name.name)
    return codecs.get(name)


def register_codec(
    name: str,
    compress: Callable[[bytes], bytes],
    decompress: Callable[[bytes], bytes],
    description: str = "",
    *,
    overwrite: bool = False,
) -> Codec:
    """Register a user codec from a byte-level compress/decompress pair.

    The callables must be picklable (module-level functions) to work with
    the ``process`` executor; see the module docs for the worker-process
    caveat.
    """
    codec = Codec(name=Registry._normalize(name), description=description,
                  compress=compress, decompress=decompress)
    return codecs.register(name, codec, overwrite=overwrite)


# --------------------------------------------------------------------------- #
# Media channels
# --------------------------------------------------------------------------- #
#: Media profiles (emblem geometry + analog channel), by name.
media: Registry[MediaProfile] = Registry("media channel")

for _profile in (
    PAPER_PROFILE,
    MICROFILM_PROFILE,
    MICROFILM_DENSE_PROFILE,
    CINEMA_PROFILE,
    TEST_PROFILE,
    DNA_PROFILE,
):
    media.register(_profile.name, _profile)

media.alias("paper", PAPER_PROFILE.name)
media.alias("microfilm", MICROFILM_PROFILE.name)
media.alias("microfilm-dense", MICROFILM_DENSE_PROFILE.name)
media.alias("cinema", CINEMA_PROFILE.name)
media.alias("test", TEST_PROFILE.name)
media.alias("dna", DNA_PROFILE.name)


def get_media(name: "str | MediaProfile") -> MediaProfile:
    """Resolve a media profile from a registry name (or pass one through)."""
    if isinstance(name, MediaProfile):
        return name
    return media.get(name)


# --------------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------------- #
def _make_auto_executor(workers: int | None = None) -> SegmentExecutor:
    """``auto``: a process pool when more than one CPU is visible, else serial."""
    if (os.cpu_count() or 1) > 1:
        return ProcessPoolSegmentExecutor(workers=workers)
    return SerialExecutor()


#: Executor factories (``workers -> SegmentExecutor``), by name.
executors: Registry[Callable[[int | None], SegmentExecutor]] = Registry("executor")

executors.register("serial", lambda workers=None: SerialExecutor())
executors.register("thread", lambda workers=None: ThreadPoolSegmentExecutor(workers=workers))
executors.register("process", lambda workers=None: ProcessPoolSegmentExecutor(workers=workers))
executors.register("auto", _make_auto_executor)


def get_executor_factory(name: str) -> Callable[[int | None], SegmentExecutor]:
    """Look an executor factory up by base name (no ``:workers`` suffix)."""
    return executors.get(name)


# --------------------------------------------------------------------------- #
# Distortion profiles
# --------------------------------------------------------------------------- #
#: Named scanner/medium degradation models, by name.
distortions: Registry[DistortionProfile] = Registry("distortion profile")

for _distortion in (PRISTINE, OFFICE_SCAN, AGED_MICROFILM, CINEMA_SCAN):
    distortions.register(_distortion.name, _distortion)


def get_distortion(name: "str | DistortionProfile") -> DistortionProfile:
    """Resolve a distortion profile from a registry name (or pass one through)."""
    if isinstance(name, DistortionProfile):
        return name
    return distortions.get(name)


# --------------------------------------------------------------------------- #
# Storage backends
# --------------------------------------------------------------------------- #
#: Archive storage backends (on-media layouts), by name.
stores: Registry[StorageBackend] = Registry("storage backend")

for _store in (DirectoryBackend(), ContainerBackend(), MemoryBackend(), VolumeSetBackend()):
    stores.register(_store.name, _store)

stores.alias("dir", DirectoryBackend.name)
stores.alias("file", ContainerBackend.name)
stores.alias("mem", MemoryBackend.name)
stores.alias("vol", VolumeSetBackend.name)


def get_store(name: "str | StorageBackend") -> StorageBackend:
    """Resolve a storage backend from a registry name (or pass one through)."""
    if isinstance(name, StorageBackend):
        return name
    return stores.get(name)


# --------------------------------------------------------------------------- #
# Plugin discovery
# --------------------------------------------------------------------------- #
#: Environment variable naming plugin modules (comma-separated import paths).
PLUGINS_ENV_VAR = "REPRO_PLUGINS"


def load_plugins(spec: str | None = None) -> list[str]:
    """Import every plugin module named in ``spec`` (or ``$REPRO_PLUGINS``).

    Each module is imported once (normal ``sys.modules`` semantics) and is
    expected to register its codecs/media/executors/backends at import time.
    Because worker processes re-import :mod:`repro.registry`, plugins listed
    in the environment variable are resolvable inside ``process``-executor
    workers as well.  A module that fails to import is skipped with a
    :class:`RuntimeWarning` — a broken plugin must not take the whole
    library down.  Returns the names that imported successfully.
    """
    if spec is None:
        spec = os.environ.get(PLUGINS_ENV_VAR, "")
    loaded: list[str] = []
    for name in (part.strip() for part in spec.split(",")):
        if not name:
            continue
        try:
            importlib.import_module(name)
            loaded.append(name)
        except Exception as exc:  # noqa: BLE001 — any plugin failure is non-fatal
            warnings.warn(
                f"{PLUGINS_ENV_VAR} module {name!r} failed to import: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
    return loaded


load_plugins()
