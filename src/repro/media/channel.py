"""The analog media channel abstraction.

A :class:`MediaChannel` models one write-then-read path through a physical
medium: emblems are *recorded* onto frames with the writer's geometry (laser
printer page, microfilm frame, cinema film frame), and *scanned* back as
degraded grayscale images.  The end-to-end archival pipeline only ever sees
the scanned images, exactly as a future user would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.errors import MediaCapacityError
from repro.media.distortions import DistortionProfile
from repro.util.rng import deterministic_rng
from repro.util.nptypes import GrayImage


@dataclass
class ScanOutcome:
    """The result of scanning recorded frames back from a medium."""

    images: list[GrayImage]
    channel_name: str
    frames_recorded: int


class MediaChannel:
    """Base class for simulated analog media.

    Subclasses that model their degradation elsewhere (the DNA channel's
    strand dropout/substitution) set ``supports_distortion = False`` so
    config-level distortion overrides can be rejected instead of silently
    ignored.

    Parameters
    ----------
    name:
        Human-readable channel name.
    frame_shape:
        (height, width) in pixels of one recorded frame.
    scan_scale:
        Linear scale factor between the recorded frame and the scanned image
        (cinema film is written at 2K and scanned at 4K, for example).
    write_bitonal:
        Whether the recorder quantises frames to pure black/white.
    distortion:
        Degradations applied by the medium + scanner.
    """

    #: Whether :meth:`scan` applies the ``distortion`` profile.
    supports_distortion = True

    def __init__(
        self,
        name: str,
        frame_shape: tuple[int, int],
        scan_scale: float = 1.0,
        write_bitonal: bool = False,
        distortion: DistortionProfile | None = None,
    ):
        self.name = name
        self.frame_shape = frame_shape
        self.scan_scale = scan_scale
        self.write_bitonal = write_bitonal
        self.distortion = distortion or DistortionProfile()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(self, images: list[GrayImage]) -> list[GrayImage]:
        """Place each emblem raster onto a frame of the medium.

        Raises
        ------
        MediaCapacityError
            If an emblem raster does not fit within one frame.
        """
        frames = []
        height, width = self.frame_shape
        for index, image in enumerate(images):
            image = np.asarray(image, dtype=np.uint8)
            if image.shape[0] > height or image.shape[1] > width:
                raise MediaCapacityError(
                    f"{self.name}: emblem {index} of {image.shape} pixels does not fit a "
                    f"{self.frame_shape} frame"
                )
            frame = np.full(self.frame_shape, 255, dtype=np.uint8)
            top = (height - image.shape[0]) // 2
            left = (width - image.shape[1]) // 2
            frame[top:top + image.shape[0], left:left + image.shape[1]] = image
            if self.write_bitonal:
                frame = np.where(frame < 128, 0, 255).astype(np.uint8)
            frames.append(frame)
        return frames

    # ------------------------------------------------------------------ #
    # Scanning
    # ------------------------------------------------------------------ #
    def _scan_one(self, frame: GrayImage, rng: np.random.Generator) -> GrayImage:
        """Read one frame back as a degraded scan, drawing noise from ``rng``."""
        scan = frame
        if self.scan_scale != 1.0:
            scan = ndimage.zoom(frame.astype(np.float64), self.scan_scale, order=1)
            scan = np.clip(scan, 0, 255).astype(np.uint8)
        return self.distortion.apply(scan, rng)

    def scan(self, frames: list[GrayImage], seed: int | None = None) -> ScanOutcome:
        """Read frames back as degraded scans (one RNG threaded across frames).

        This is the whole-archive path: every frame draws from the *same*
        generator, so the outcome depends on scanning all frames in one call,
        in order.  Streaming restores use :meth:`scan_frames`, whose
        per-frame seed derivation is batching- and order-independent.
        """
        rng = deterministic_rng(seed if seed is not None else self.distortion.seed)
        scans = [self._scan_one(frame, rng) for frame in frames]
        return ScanOutcome(images=scans, channel_name=self.name, frames_recorded=len(frames))

    def scan_frames(
        self,
        frames: list[GrayImage],
        seed: int | None = None,
        start_index: int = 0,
        lane: int = 0,
    ) -> ScanOutcome:
        """Read frames back with *per-frame* seeding (the streaming path).

        Frame ``i`` of the batch draws from an independent RNG stream derived
        from ``(seed, lane, start_index + i)``, so scanning an archive in any
        batching — whole, per segment, per frame, serially or in parallel —
        produces pixel-identical results for a given seed.  ``lane``
        separates the data and system emblem streams of one archive so they
        never share a frame's noise stream.
        """
        base = seed if seed is not None else self.distortion.seed
        scans = [
            self._scan_one(frame, deterministic_rng((base, lane, start_index + index)))
            for index, frame in enumerate(frames)
        ]
        return ScanOutcome(images=scans, channel_name=self.name, frames_recorded=len(frames))

    def roundtrip(self, images: list[GrayImage], seed: int | None = None) -> list[GrayImage]:
        """Record and immediately scan back (the common test/benchmark path)."""
        return self.scan(self.record(images), seed=seed).images

    # ------------------------------------------------------------------ #
    # Capacity model
    # ------------------------------------------------------------------ #
    @property
    def frame_pixels(self) -> int:
        """Number of pixels in one recorded frame."""
        return self.frame_shape[0] * self.frame_shape[1]

    def frames_for(self, emblem_count: int) -> int:
        """Frames consumed by ``emblem_count`` emblems (one emblem per frame)."""
        return emblem_count
