"""Distortion models for analog media and scanners.

§3.1 of the paper lists the degradations an archival barcode must survive:
the film "can distort to a small extent over time and become damaged in
various ways with fading, hot spots, scratches", scanners "use lenses which
can change straight lines into curves", mechanical motion "will introduce
small perturbations or unsteady movements while scanning", and "dust can also
be a source of degradation".  Each of those effects is modelled here as a
parameterised, seedable transform on a grayscale raster, and
:class:`DistortionProfile` bundles them into a single reproducible channel
model used by the media channels and by the robustness benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.util.rng import deterministic_rng


def add_gaussian_noise(image: np.ndarray, sigma: float, rng: np.random.Generator) -> np.ndarray:
    """Additive sensor noise."""
    if sigma <= 0:
        return image
    noisy = image.astype(np.float64) + rng.normal(0.0, sigma, size=image.shape)
    return np.clip(noisy, 0, 255).astype(np.uint8)


def add_dust(
    image: np.ndarray,
    spots: int,
    max_radius: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Dark dust specks (on the film, the glass plates, or the filmed surface)."""
    if spots <= 0:
        return image
    result = image.copy()
    height, width = result.shape
    for _ in range(spots):
        radius = int(rng.integers(1, max(2, max_radius + 1)))
        center_y = int(rng.integers(0, height))
        center_x = int(rng.integers(0, width))
        y0, y1 = max(0, center_y - radius), min(height, center_y + radius + 1)
        x0, x1 = max(0, center_x - radius), min(width, center_x + radius + 1)
        ys, xs = np.ogrid[y0:y1, x0:x1]
        mask = (ys - center_y) ** 2 + (xs - center_x) ** 2 <= radius ** 2
        shade = 0 if rng.random() < 0.7 else 255
        region = result[y0:y1, x0:x1]
        region[mask] = shade
    return result


def add_scratches(
    image: np.ndarray,
    scratches: int,
    max_width: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Long thin scratches across the frame (mostly light on film, dark on paper)."""
    if scratches <= 0:
        return image
    result = image.copy()
    height, width = result.shape
    for _ in range(scratches):
        vertical = rng.random() < 0.5
        thickness = int(rng.integers(1, max(2, max_width + 1)))
        shade = 255 if rng.random() < 0.5 else 0
        if vertical:
            x = int(rng.integers(0, width))
            result[:, x:min(width, x + thickness)] = shade
        else:
            y = int(rng.integers(0, height))
            result[y:min(height, y + thickness), :] = shade
    return result


def apply_fading(image: np.ndarray, amount: float, rng: np.random.Generator) -> np.ndarray:
    """Contrast loss plus a smooth illumination gradient (fading / hot spots)."""
    if amount <= 0:
        return image
    amount = min(amount, 0.9)
    values = image.astype(np.float64)
    # Pull everything toward mid-gray.
    values = 128.0 + (values - 128.0) * (1.0 - amount)
    # Smooth gradient across the frame with a random orientation.
    height, width = image.shape
    ys, xs = np.mgrid[0:height, 0:width]
    angle = rng.uniform(0, 2 * np.pi)
    ramp = (np.cos(angle) * xs / max(width, 1) + np.sin(angle) * ys / max(height, 1))
    values += 40.0 * amount * (ramp - ramp.mean())
    return np.clip(values, 0, 255).astype(np.uint8)


def apply_lens_curvature(image: np.ndarray, strength: float) -> np.ndarray:
    """Barrel distortion: straight lines bow outwards near the edge of the field."""
    if strength <= 0:
        return image
    height, width = image.shape
    center_y, center_x = (height - 1) / 2.0, (width - 1) / 2.0
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float64)
    norm_y = (ys - center_y) / max(center_y, 1)
    norm_x = (xs - center_x) / max(center_x, 1)
    radius_sq = norm_x ** 2 + norm_y ** 2
    factor = 1.0 + strength * radius_sq
    source_y = np.clip(center_y + (ys - center_y) / factor, 0, height - 1)
    source_x = np.clip(center_x + (xs - center_x) / factor, 0, width - 1)
    return image[source_y.round().astype(int), source_x.round().astype(int)]


def apply_scanner_jitter(
    image: np.ndarray, amplitude: float, rng: np.random.Generator
) -> np.ndarray:
    """Per-row horizontal displacement from unsteady linear-array scanner motion."""
    if amplitude <= 0:
        return image
    height, width = image.shape
    # A smooth random walk keeps neighbouring rows coherent, like a real
    # transport mechanism wobbling rather than white noise.
    steps = rng.normal(0.0, amplitude / 4.0, size=height)
    offsets = np.cumsum(steps)
    offsets -= offsets.mean()
    offsets = np.clip(offsets, -amplitude, amplitude)
    result = np.empty_like(image)
    for row in range(height):
        shift = int(round(offsets[row]))
        result[row] = np.roll(image[row], shift)
    return result


def apply_blur(image: np.ndarray, radius: float) -> np.ndarray:
    """Optical / motion blur from the scanner."""
    if radius <= 0:
        return image
    blurred = ndimage.gaussian_filter(image.astype(np.float64), sigma=radius)
    return np.clip(blurred, 0, 255).astype(np.uint8)


def apply_rotation(image: np.ndarray, degrees: float) -> np.ndarray:
    """Small skew from imperfect media alignment on the scanner bed."""
    if abs(degrees) < 1e-9:
        return image
    rotated = ndimage.rotate(
        image.astype(np.float64), degrees, reshape=False, order=1, mode="constant", cval=255.0
    )
    return np.clip(rotated, 0, 255).astype(np.uint8)


def to_bitonal(image: np.ndarray, threshold: int = 128) -> np.ndarray:
    """Hard thresholding, as performed by bitonal microfilm writers/readers."""
    return np.where(image < threshold, 0, 255).astype(np.uint8)


@dataclass
class DistortionProfile:
    """A bundle of degradation parameters applied in a fixed, realistic order.

    Severities of zero disable the corresponding effect, so the same class
    describes anything from a pristine scan to heavily damaged film.
    """

    name: str = "pristine"
    noise_sigma: float = 0.0
    dust_spots: int = 0
    dust_max_radius: int = 3
    scratches: int = 0
    scratch_max_width: int = 2
    fading: float = 0.0
    lens_curvature: float = 0.0
    jitter_amplitude: float = 0.0
    blur_radius: float = 0.0
    rotation_degrees: float = 0.0
    bitonal_output: bool = False
    seed: int | None = field(default=None)

    def apply(self, image: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        """Apply the full degradation chain to a raster image."""
        if rng is None:
            rng = deterministic_rng(self.seed)
        result = np.asarray(image, dtype=np.uint8)
        result = apply_fading(result, self.fading, rng)
        result = add_scratches(result, self.scratches, self.scratch_max_width, rng)
        result = add_dust(result, self.dust_spots, self.dust_max_radius, rng)
        result = apply_lens_curvature(result, self.lens_curvature)
        result = apply_rotation(result, self.rotation_degrees)
        result = apply_scanner_jitter(result, self.jitter_amplitude, rng)
        result = apply_blur(result, self.blur_radius)
        result = add_gaussian_noise(result, self.noise_sigma, rng)
        if self.bitonal_output:
            result = to_bitonal(result)
        return result

    def scaled(self, factor: float, name: str | None = None) -> "DistortionProfile":
        """Return a copy with every continuous severity multiplied by ``factor``."""
        return DistortionProfile(
            name=name or f"{self.name} x{factor:g}",
            noise_sigma=self.noise_sigma * factor,
            dust_spots=int(round(self.dust_spots * factor)),
            dust_max_radius=self.dust_max_radius,
            scratches=int(round(self.scratches * factor)),
            scratch_max_width=self.scratch_max_width,
            fading=self.fading * factor,
            lens_curvature=self.lens_curvature * factor,
            jitter_amplitude=self.jitter_amplitude * factor,
            blur_radius=self.blur_radius * factor,
            rotation_degrees=self.rotation_degrees * factor,
            bitonal_output=self.bitonal_output,
            seed=self.seed,
        )


#: A pristine channel (no degradation at all).
PRISTINE = DistortionProfile(name="pristine")

#: A gently-used flatbed scan of laser-printed paper.
OFFICE_SCAN = DistortionProfile(
    name="office-scan",
    noise_sigma=6.0,
    dust_spots=30,
    dust_max_radius=2,
    fading=0.05,
    jitter_amplitude=1.0,
    blur_radius=0.5,
)

#: Aged microfilm read on a library scanner.
AGED_MICROFILM = DistortionProfile(
    name="aged-microfilm",
    noise_sigma=2.0,
    dust_spots=40,
    dust_max_radius=2,
    scratches=1,
    scratch_max_width=2,
    fading=0.10,
    lens_curvature=0.0002,
    jitter_amplitude=0.3,
    blur_radius=0.3,
    bitonal_output=True,
)

#: Cinema film scanned on a professional scanner (sharper, low distortion).
CINEMA_SCAN = DistortionProfile(
    name="cinema-scan",
    noise_sigma=3.0,
    dust_spots=15,
    dust_max_radius=2,
    fading=0.05,
    lens_curvature=0.0003,
    blur_radius=0.4,
)
