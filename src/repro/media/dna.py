"""A synthetic-DNA channel sketch (the paper's §5 future-work direction).

The paper closes by arguing that extremely large archives outgrow analog
visual media (800 microfilm reels per terabyte) and points at DNA storage as
the follow-on medium, citing OligoArchive.  This module provides the minimal
channel model needed to exercise that extension end to end: payload bytes are
split across short oligonucleotide strands with addressing and per-strand
checksums, synthesised with coverage (multiple copies), and sequenced back
through a noisy process with strand dropout and base substitution errors.
Strand payloads are protected by the same outer code MOCoder uses across
emblems, so the ULE pipeline is unchanged — only the "physical" layer differs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MediaCapacityError, MediaError
from repro.media.channel import MediaChannel, ScanOutcome
from repro.util.crc import crc32_of
from repro.util.rng import deterministic_rng

#: The four nucleotides, indexed by 2-bit value.
NUCLEOTIDES = "ACGT"

#: Reverse lookup from nucleotide to 2-bit value.
NUCLEOTIDE_VALUES = {symbol: value for value, symbol in enumerate(NUCLEOTIDES)}


def bytes_to_bases(data: bytes) -> str:
    """Map each byte to four nucleotides (2 bits per base)."""
    bases = []
    for byte in data:
        for shift in (6, 4, 2, 0):
            bases.append(NUCLEOTIDES[(byte >> shift) & 0b11])
    return "".join(bases)


def bases_to_bytes(bases: str) -> bytes:
    """Inverse of :func:`bytes_to_bases`; the base count must be a multiple of 4."""
    if len(bases) % 4:
        raise MediaError("base string length must be a multiple of 4")
    out = bytearray()
    for index in range(0, len(bases), 4):
        value = 0
        for base in bases[index:index + 4]:
            try:
                value = (value << 2) | NUCLEOTIDE_VALUES[base]
            except KeyError as exc:
                raise MediaError(f"invalid nucleotide {base!r}") from exc
        out.append(value)
    return bytes(out)


@dataclass(frozen=True)
class Strand:
    """One synthesised oligonucleotide carrying an addressed payload chunk."""

    index: int
    total: int
    payload: bytes
    checksum: int

    def to_sequence(self) -> str:
        """Serialise the strand as a nucleotide string."""
        header = (
            self.index.to_bytes(3, "little")
            + self.total.to_bytes(3, "little")
            + len(self.payload).to_bytes(1, "little")
            + (self.checksum & 0xFFFFFFFF).to_bytes(4, "little")
        )
        return bytes_to_bases(header + self.payload)

    @classmethod
    def from_sequence(cls, sequence: str) -> "Strand":
        """Parse a sequenced read back into a strand, verifying its checksum."""
        raw = bases_to_bytes(sequence)
        if len(raw) < 11:
            raise MediaError("sequenced read is too short to hold a strand header")
        index = int.from_bytes(raw[0:3], "little")
        total = int.from_bytes(raw[3:6], "little")
        payload_length = raw[6]
        checksum = int.from_bytes(raw[7:11], "little")
        payload = raw[11:11 + payload_length]
        if len(payload) != payload_length or crc32_of(payload) != checksum:
            raise MediaError("strand failed its checksum")
        return cls(index=index, total=total, payload=payload, checksum=checksum)


class DNAChannel:
    """A minimal synthesis/sequencing channel with dropout and substitutions.

    Parameters
    ----------
    strand_payload_bytes:
        Payload bytes per strand (the biochemical limit is ~100-200 nt total).
    coverage:
        Number of synthesised copies per logical strand.
    dropout_rate:
        Probability that a given physical copy is never sequenced.
    substitution_rate:
        Per-base probability of a substitution error in a sequenced read.
    """

    #: Theoretical density quoted in the paper (§5): 1 EB per cubic millimetre.
    THEORETICAL_DENSITY_BYTES_PER_MM3 = 1e18

    def __init__(
        self,
        strand_payload_bytes: int = 24,
        coverage: int = 5,
        dropout_rate: float = 0.02,
        substitution_rate: float = 0.002,
        seed: int | None = None,
    ):
        if strand_payload_bytes < 1 or strand_payload_bytes > 255:
            raise ValueError("strand payload must be between 1 and 255 bytes")
        self.strand_payload_bytes = strand_payload_bytes
        self.coverage = coverage
        self.dropout_rate = dropout_rate
        self.substitution_rate = substitution_rate
        self.seed = seed

    # ------------------------------------------------------------------ #
    def synthesize(self, data: bytes) -> list[str]:
        """Encode ``data`` into a pool of nucleotide sequences (with copies)."""
        chunks = [
            data[offset:offset + self.strand_payload_bytes]
            for offset in range(0, len(data), self.strand_payload_bytes)
        ] or [b""]
        strands = [
            Strand(index=index, total=len(chunks), payload=chunk, checksum=crc32_of(chunk))
            for index, chunk in enumerate(chunks)
        ]
        pool = []
        for strand in strands:
            pool.extend([strand.to_sequence()] * self.coverage)
        return pool

    def sequence(self, pool: list[str], seed: int | None = None) -> list[str]:
        """Simulate sequencing: drop some reads, substitute some bases."""
        rng = deterministic_rng(seed if seed is not None else self.seed)
        reads = []
        for sequence in pool:
            if rng.random() < self.dropout_rate:
                continue
            if self.substitution_rate > 0:
                symbols = list(sequence)
                errors = rng.random(len(symbols)) < self.substitution_rate
                for position in np.nonzero(errors)[0]:
                    symbols[position] = NUCLEOTIDES[int(rng.integers(0, 4))]
                sequence = "".join(symbols)
            reads.append(sequence)
        rng.shuffle(reads)
        return reads

    def assemble(self, reads: list[str]) -> bytes:
        """Recover the payload from sequenced reads (checksum-verified votes).

        Raises
        ------
        MediaError
            If any strand index has no surviving valid read.
        """
        recovered: dict[int, bytes] = {}
        total = None
        for read in reads:
            try:
                strand = Strand.from_sequence(read)
            except MediaError:
                continue
            recovered[strand.index] = strand.payload
            total = strand.total if total is None else total
        if total is None:
            raise MediaError("no valid strand could be recovered from the reads")
        missing = [index for index in range(total) if index not in recovered]
        if missing:
            raise MediaError(
                f"{len(missing)} of {total} strands were lost (first missing: {missing[0]}); "
                "increase coverage or add outer-code parity"
            )
        return b"".join(recovered[index] for index in range(total))

    def roundtrip(self, data: bytes, seed: int | None = None) -> bytes:
        """Synthesise, sequence and reassemble ``data``."""
        return self.assemble(self.sequence(self.synthesize(data), seed=seed))


class DNAEmblemChannel(MediaChannel):
    """Emblem rasters carried on the DNA channel (record = synthesise).

    Makes DNA a first-class *media channel* in the sense of step 7 of
    Figure 2a: ``record`` packs each bitonal emblem raster into addressed
    oligo strands, ``scan`` sequences the pool back and rebuilds the raster.
    Unlike the optical channels the medium is digital — a frame either
    reassembles exactly or the strand pool reports the loss — so the scanned
    images are pristine rasters and the channel's error model lives in the
    strand dropout/substitution parameters instead of a
    :class:`~repro.media.distortions.DistortionProfile`.
    """

    #: Bytes prepended to each frame's packed bits: height + width (LE u32).
    _SHAPE_HEADER_BYTES = 8

    #: Degradation lives in the strand dropout/substitution model, not in a
    #: raster DistortionProfile — config-level overrides are rejected.
    supports_distortion = False

    def __init__(
        self,
        frame_shape: tuple[int, int] = (256, 256),
        dna: DNAChannel | None = None,
    ):
        super().__init__(
            name="synthetic DNA oligo pool",
            frame_shape=frame_shape,
            scan_scale=1.0,
            write_bitonal=True,
        )
        # Short strands keep the per-read corruption probability low
        # (~170 nt at 0.02 % substitution/base leaves ~97 % of reads valid),
        # so six-fold coverage makes whole-strand loss vanishingly rare.
        self.dna = dna if dna is not None else DNAChannel(
            strand_payload_bytes=32,
            coverage=6,
            dropout_rate=0.01,
            substitution_rate=0.0002,
        )

    # ------------------------------------------------------------------ #
    def record(self, images: list[np.ndarray]) -> list[list[str]]:
        """Synthesise one strand pool per emblem raster."""
        height, width = self.frame_shape
        pools: list[list[str]] = []
        for index, image in enumerate(images):
            image = np.asarray(image, dtype=np.uint8)
            if image.shape[0] > height or image.shape[1] > width:
                raise MediaCapacityError(
                    f"{self.name}: emblem {index} of {image.shape} pixels exceeds the "
                    f"{self.frame_shape} frame budget"
                )
            bits = (image < 128).astype(np.uint8)
            header = image.shape[0].to_bytes(4, "little") + image.shape[1].to_bytes(4, "little")
            pools.append(self.dna.synthesize(header + np.packbits(bits).tobytes()))
        return pools

    def _scan_pool(self, index: int, pool: list[str], frame_seed: int | None) -> np.ndarray:
        """Sequence one strand pool and reassemble its emblem raster."""
        raw = self.dna.assemble(self.dna.sequence(pool, seed=frame_seed))
        if len(raw) < self._SHAPE_HEADER_BYTES:
            raise MediaError(f"frame {index}: reassembled pool is missing its shape header")
        height = int.from_bytes(raw[0:4], "little")
        width = int.from_bytes(raw[4:8], "little")
        bits = np.unpackbits(
            np.frombuffer(raw[self._SHAPE_HEADER_BYTES:], dtype=np.uint8),
            count=height * width,
        ).reshape(height, width)
        return np.where(bits == 1, 0, 255).astype(np.uint8)

    def scan(self, frames: list[list[str]], seed: int | None = None) -> ScanOutcome:
        """Sequence each pool and reassemble the emblem rasters.

        Raises
        ------
        MediaError
            If a frame's strand pool lost more copies than coverage allows.
        """
        base_seed = seed if seed is not None else self.dna.seed
        images: list[np.ndarray] = []
        for index, pool in enumerate(frames):
            frame_seed = None if base_seed is None else base_seed + 9973 * index
            images.append(self._scan_pool(index, pool, frame_seed))
        return ScanOutcome(images=images, channel_name=self.name, frames_recorded=len(frames))

    def scan_frames(
        self,
        frames: list[list[str]],
        seed: int | None = None,
        start_index: int = 0,
        lane: int = 0,
    ) -> ScanOutcome:
        """Per-frame-seeded sequencing: the streaming counterpart of :meth:`scan`.

        The sequencing seed depends only on the frame's *global* index (and
        lane), so batching and parallel scanning are outcome-invariant —
        the same contract as :meth:`MediaChannel.scan_frames`.
        """
        base_seed = seed if seed is not None else self.dna.seed
        images: list[np.ndarray] = []
        for index, pool in enumerate(frames):
            global_index = start_index + index
            frame_seed = (
                None
                if base_seed is None
                else base_seed + 9973 * global_index + 1_000_003 * lane
            )
            images.append(self._scan_pool(global_index, pool, frame_seed))
        return ScanOutcome(images=images, channel_name=self.name, frames_recorded=len(frames))
