"""Archival paper as a medium (the paper's first end-to-end experiment).

The experiment in §4 prints emblems on A4 paper at 600 dpi with a Canon
ImageRunner laser printer and scans them back on the same device.  An A4 page
at 600 dpi is 4960 x 7016 pixels; replacing plain A4 with ISO 9706 archival
paper changes nothing in the digital pipeline, so the channel models the
print-then-scan path and the page-count arithmetic.
"""

from __future__ import annotations

from repro.media.channel import MediaChannel
from repro.media.distortions import OFFICE_SCAN, DistortionProfile

#: A4 paper size in millimetres.
A4_WIDTH_MM = 210.0
A4_HEIGHT_MM = 297.0

#: Print resolution used in the paper's experiment.
DEFAULT_DPI = 600


def a4_pixels(dpi: int = DEFAULT_DPI) -> tuple[int, int]:
    """(height, width) of an A4 page in pixels at the given resolution."""
    width = int(round(A4_WIDTH_MM / 25.4 * dpi))
    height = int(round(A4_HEIGHT_MM / 25.4 * dpi))
    return height, width


class PaperChannel(MediaChannel):
    """Laser-printed A4 paper scanned on an office scanner."""

    def __init__(
        self,
        dpi: int = DEFAULT_DPI,
        distortion: DistortionProfile | None = None,
    ):
        self.dpi = dpi
        super().__init__(
            name=f"A4 paper @ {dpi} dpi",
            frame_shape=a4_pixels(dpi),
            scan_scale=1.0,
            write_bitonal=False,
            distortion=distortion if distortion is not None else OFFICE_SCAN,
        )

    def pages_for(self, emblem_count: int) -> int:
        """Pages consumed (one emblem per page, as in the paper's experiment)."""
        return emblem_count

    def density_kb_per_page(self, archive_bytes: int, emblem_count: int) -> float:
        """Archive kilobytes stored per printed page."""
        if emblem_count == 0:
            return 0.0
        return archive_bytes / 1000.0 / emblem_count
