"""Analog media channels: paper, microfilm, cinema film (and a DNA sketch).

The paper's evaluation writes emblems to physical media with a laser printer,
a microfilm archive writer and a digital film recorder, and reads them back
with the corresponding scanners.  This package simulates those devices: each
:class:`~repro.media.channel.MediaChannel` records emblem rasters onto frames
with the device's real geometry and returns scanned images degraded by the
distortions the paper discusses (dust, scratches, fading, lens curvature,
unsteady scanner motion, re-thresholding).
"""

from repro.media.image import pgm_bytes, pgm_from_bytes, read_pgm, write_pgm
from repro.media.distortions import DistortionProfile
from repro.media.channel import MediaChannel, ScanOutcome
from repro.media.paper import PaperChannel
from repro.media.film import MicrofilmChannel, CinemaFilmChannel
from repro.media.dna import DNAChannel

__all__ = [
    "pgm_bytes",
    "pgm_from_bytes",
    "read_pgm",
    "write_pgm",
    "DistortionProfile",
    "MediaChannel",
    "ScanOutcome",
    "PaperChannel",
    "MicrofilmChannel",
    "CinemaFilmChannel",
    "DNAChannel",
]
