"""Microfilm and cinema film media (the paper's second and third experiments).

Microfilm
---------
The EPM/Kodak IMAGELINK 9600 archive writer produces 3888 x 5498 bitonal
frames on 16 mm film, and the paper states Micr'Olonys can store 1.3 GB on a
single 66 m reel; a standard microfilm reader returns roughly 5000 x 7000
bitonal scans.

Cinema film
-----------
The Arrilaser digital film recorder shoots full-aperture 2K frames
(2048 x 1556) on 35 mm film; a Scanity scanner reads them back at 4K
(4096 x 3112) in grayscale, in the DPX raw-frame format.  Cinema scanners are
noticeably sharper and less distorted than microfilm scanners, which the
channel's default distortion profile reflects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.media.channel import MediaChannel
from repro.media.distortions import AGED_MICROFILM, CINEMA_SCAN, DistortionProfile

#: Microfilm frame geometry of the IMAGELINK 9600 archive writer.
MICROFILM_FRAME = (5498, 3888)  # (height, width) pixels, bitonal

#: Full-aperture 2K cinema frame (4/3 image ratio).
CINEMA_2K_FRAME = (1556, 2048)

#: Scale factor between the 2K recorder and the 4K scanner.
CINEMA_SCAN_SCALE = 2.0


@dataclass(frozen=True)
class ReelModel:
    """Capacity model of a film reel."""

    reel_length_m: float
    frame_pitch_mm: float

    @property
    def frames_per_reel(self) -> int:
        """Number of frames that fit on one reel."""
        return int(self.reel_length_m * 1000.0 / self.frame_pitch_mm)

    def reel_capacity_bytes(self, payload_bytes_per_frame: int) -> int:
        """Archive bytes stored on a full reel at the given per-frame payload."""
        return self.frames_per_reel * payload_bytes_per_frame

    def reels_for(self, archive_bytes: int, payload_bytes_per_frame: int) -> int:
        """Reels needed to store an archive of ``archive_bytes``."""
        capacity = self.reel_capacity_bytes(payload_bytes_per_frame)
        if capacity <= 0:
            raise ValueError("per-frame payload must be positive")
        return -(-archive_bytes // capacity)


#: 66 m reel of 16 mm microfilm with a standard duplex frame pitch.
MICROFILM_REEL = ReelModel(reel_length_m=66.0, frame_pitch_mm=7.6)

#: 305 m (1000 ft) reel of 35 mm cinema film, 4-perf pitch (19 mm per frame).
CINEMA_REEL = ReelModel(reel_length_m=305.0, frame_pitch_mm=19.0)


class MicrofilmChannel(MediaChannel):
    """16 mm microfilm written by an archive writer, read by a library scanner."""

    def __init__(
        self,
        distortion: DistortionProfile | None = None,
        reel: ReelModel = MICROFILM_REEL,
    ):
        self.reel = reel
        super().__init__(
            name="16 mm microfilm (IMAGELINK 9600)",
            frame_shape=MICROFILM_FRAME,
            # The reader produces ~5000 x 7000 scans from 3888 x 5498 frames.
            scan_scale=1.28,
            write_bitonal=True,
            distortion=distortion if distortion is not None else AGED_MICROFILM,
        )

    def reel_capacity_bytes(self, payload_bytes_per_frame: int) -> int:
        """Archive bytes stored on one 66 m reel."""
        return self.reel.reel_capacity_bytes(payload_bytes_per_frame)

    def reels_for(self, archive_bytes: int, payload_bytes_per_frame: int) -> int:
        """Reels needed for an archive (used for the paper's TB/PB projection)."""
        return self.reel.reels_for(archive_bytes, payload_bytes_per_frame)


class CinemaFilmChannel(MediaChannel):
    """35 mm black-and-white cinema film shot at 2K and scanned at 4K."""

    def __init__(
        self,
        distortion: DistortionProfile | None = None,
        reel: ReelModel = CINEMA_REEL,
    ):
        self.reel = reel
        super().__init__(
            name="35 mm cinema film (Arrilaser / Scanity)",
            frame_shape=CINEMA_2K_FRAME,
            scan_scale=CINEMA_SCAN_SCALE,
            write_bitonal=False,
            distortion=distortion if distortion is not None else CINEMA_SCAN,
        )

    def reel_capacity_bytes(self, payload_bytes_per_frame: int) -> int:
        """Archive bytes stored on one 305 m reel."""
        return self.reel.reel_capacity_bytes(payload_bytes_per_frame)
