"""Minimal raster image I/O.

Emblems and scans are plain 2-D numpy arrays of uint8 gray values (0 = black,
255 = white).  For interoperability with external viewers the library reads
and writes binary PGM (P5), the simplest widely supported grayscale format —
appropriate for a project whose premise is that formats must stay decodable
decades from now.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import MediaError
from repro.util.nptypes import GrayImage


def pgm_parts(image: GrayImage) -> tuple[bytes, memoryview]:
    """Serialise a grayscale image as ``(PGM header, raster memoryview)``.

    The raster part is a zero-copy view of the array's buffer whenever the
    input is already contiguous uint8 (every emblem raster is), so batched
    sinks can hand it straight to ``write()`` without materialising
    ``header + pixels`` as a fresh bytes object per frame.  The view is only
    valid while the array is alive and unmodified — write it out before
    letting go of the image.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise MediaError(f"PGM images are single-channel; got shape {image.shape}")
    if image.dtype != np.uint8:
        image = np.clip(image, 0, 255).astype(np.uint8)
    image = np.ascontiguousarray(image)
    height, width = image.shape
    header = f"P5\n{width} {height}\n255\n".encode("ascii")
    # A flat view keeps downstream consumers simple (len() == byte count).
    return header, image.reshape(-1).data


def pgm_bytes(image: GrayImage) -> bytes:
    """Serialise a grayscale image as binary PGM (P5) bytes."""
    header, raster = pgm_parts(image)
    return header + bytes(raster)


def write_pgm(path: str | Path, image: GrayImage) -> None:
    """Write a grayscale image as a binary PGM (P5) file."""
    with open(path, "wb") as stream:
        stream.write(pgm_bytes(image))


def pgm_from_bytes(data: bytes, name: str = "<bytes>") -> GrayImage:
    """Parse binary PGM (P5) bytes into a uint8 array."""
    return _parse_pgm(data, name)


def read_pgm(path: str | Path) -> GrayImage:
    """Read a binary PGM (P5) file into a uint8 array."""
    with open(path, "rb") as stream:
        data = stream.read()
    return _parse_pgm(data, str(path))


def _parse_pgm(data: bytes, path: "str | Path") -> GrayImage:
    if not data.startswith(b"P5"):
        raise MediaError(f"{path}: not a binary PGM (P5) file")
    # Parse the three header tokens (width, height, maxval), skipping comments.
    tokens: list[int] = []
    position = 2
    while len(tokens) < 3:
        while position < len(data) and data[position:position + 1].isspace():
            position += 1
        if position < len(data) and data[position:position + 1] == b"#":
            end = data.find(b"\n", position)
            position = end + 1 if end >= 0 else len(data)
            continue
        start = position
        while position < len(data) and not data[position:position + 1].isspace():
            position += 1
        if start == position:
            raise MediaError(f"{path}: malformed PGM header")
        tokens.append(int(data[start:position]))
    position += 1  # single whitespace after maxval
    width, height, max_value = tokens
    if max_value != 255:
        raise MediaError(f"{path}: only 8-bit PGM files are supported (maxval {max_value})")
    pixels = np.frombuffer(data, dtype=np.uint8, count=width * height, offset=position)
    return pixels.reshape(height, width).copy()
