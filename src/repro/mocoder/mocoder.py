"""The MOCoder facade: byte streams <-> sets of emblem images.

``MOCoder.encode`` corresponds to step 3 (and 5) of the paper's archival flow:
it takes the binary stream produced by DBCoder and lays it out across data
emblems, adding three outer-code parity emblems per group of seventeen.
``MOCoder.decode`` reverses the process from scanned emblem images, applying
the inner Reed-Solomon correction per emblem and reconstructing any missing
emblems (up to three per group of twenty) from the parity emblems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MissingEmblemError, MOCoderError, RestorationError
from repro.mocoder.emblem import (
    Emblem,
    EmblemKind,
    EmblemSpec,
    build_emblem,
    decode_image_batch,
    render_emblem_batch,
)
from repro.mocoder.outer_code import GROUP_DATA, GROUP_PARITY, GROUP_SIZE, OuterCode
from repro.util.crc import crc32_of


@dataclass
class EncodedStream:
    """The result of encoding one byte stream into emblems."""

    spec: EmblemSpec
    kind: EmblemKind
    stream_length: int
    emblems: list[Emblem]

    @property
    def data_emblem_count(self) -> int:
        """Number of emblems carrying stream payload."""
        return sum(1 for emblem in self.emblems if emblem.header.kind != EmblemKind.PARITY)

    @property
    def parity_emblem_count(self) -> int:
        """Number of outer-code parity emblems."""
        return len(self.emblems) - self.data_emblem_count

    def images_array(self) -> np.ndarray:
        """Render every emblem in one batched pass; shape (count, H, W).

        All emblems of a stream share one spec, so the whole stream renders
        as a single vectorised :func:`~repro.mocoder.emblem.
        render_emblem_batch` call; each ``result[i]`` is bit-identical to
        ``self.emblems[i].to_image()``.  The batch array doubles as a
        zero-copy handoff: slicing it yields views, not pickled copies.
        """
        return render_emblem_batch(self.emblems)

    def images(self) -> list[np.ndarray]:
        """Render every emblem to a raster image (views into one batch)."""
        return list(self.images_array())


@dataclass
class DecodeReport:
    """Statistics collected while decoding a set of scanned emblems."""

    emblems_seen: int = 0
    emblems_decoded: int = 0
    emblems_failed: int = 0
    rs_corrections: int = 0
    groups_reconstructed: int = 0
    failures: list[str] = field(default_factory=list)


class MOCoder:
    """Media layout coder for a given emblem specification.

    Parameters
    ----------
    spec:
        Emblem geometry/coding parameters.
    outer_code:
        When true (the default), every group of up to 17 data emblems gets 3
        parity emblems so that any 3 emblems of the group of 20 may be lost.
    """

    def __init__(self, spec: EmblemSpec, outer_code: bool = True):
        self.spec = spec
        self.outer_code_enabled = outer_code
        self._outer = OuterCode(GROUP_DATA, GROUP_PARITY)

    # ------------------------------------------------------------------ #
    # Sizing helpers
    # ------------------------------------------------------------------ #
    def data_emblems_needed(self, stream_length: int) -> int:
        """Number of data emblems required for a stream of ``stream_length`` bytes."""
        capacity = self.spec.payload_capacity
        return max(1, -(-stream_length // capacity))

    def total_emblems_needed(self, stream_length: int) -> int:
        """Total emblem count (data + parity) for a stream of ``stream_length`` bytes."""
        data = self.data_emblems_needed(stream_length)
        if not self.outer_code_enabled:
            return data
        groups = -(-data // GROUP_DATA)
        return data + groups * GROUP_PARITY

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def encode(self, data: bytes, kind: EmblemKind = EmblemKind.DATA) -> EncodedStream:
        """Lay a byte stream out across emblems (plus parity emblems)."""
        if kind == EmblemKind.PARITY:
            raise MOCoderError("PARITY is reserved for outer-code emblems")
        data = bytes(data)
        capacity = self.spec.payload_capacity
        stream_crc = crc32_of(data)
        chunks = [data[offset:offset + capacity] for offset in range(0, len(data), capacity)]
        if not chunks:
            chunks = [b""]
        data_count = len(chunks)
        groups = -(-data_count // GROUP_DATA)
        total = data_count + (groups * GROUP_PARITY if self.outer_code_enabled else 0)

        emblems: list[Emblem] = []
        index = 0
        for group_index in range(groups):
            group_chunks = chunks[group_index * GROUP_DATA:(group_index + 1) * GROUP_DATA]
            for slot, chunk in enumerate(group_chunks):
                emblems.append(
                    build_emblem(
                        spec=self.spec,
                        kind=kind,
                        index=index,
                        total=total,
                        group_index=group_index,
                        slot_in_group=slot,
                        payload=chunk,
                        stream_length=len(data),
                        stream_crc32=stream_crc,
                    )
                )
                index += 1
            if self.outer_code_enabled:
                parity_payloads = self._outer.encode_group(list(group_chunks))
                for parity_slot, parity_payload in enumerate(parity_payloads):
                    emblems.append(
                        build_emblem(
                            spec=self.spec,
                            kind=EmblemKind.PARITY,
                            index=index,
                            total=total,
                            group_index=group_index,
                            slot_in_group=GROUP_DATA + parity_slot,
                            payload=parity_payload,
                            stream_length=len(data),
                            stream_crc32=stream_crc,
                        )
                    )
                    index += 1
        return EncodedStream(
            spec=self.spec, kind=kind, stream_length=len(data), emblems=emblems
        )

    def encode_to_images(self, data: bytes, kind: EmblemKind = EmblemKind.DATA) -> list[np.ndarray]:
        """Encode a stream and render every emblem to a raster image."""
        return self.encode(data, kind).images()

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def decode_images(
        self,
        images: list[np.ndarray],
        report: DecodeReport,
        image_offset: int = 0,
    ) -> dict[int, Emblem]:
        """Decode scanned images to emblems, recording statistics in ``report``.

        This is the per-image half of :meth:`decode` — every image is
        independent, so callers may split an emblem stream into contiguous
        chunks and run this over each chunk in parallel (``image_offset``
        keeps failure messages numbered by the original scan position), then
        merge the returned ``{emblem index: emblem}`` maps and finish with
        :meth:`assemble`.

        Decoding runs through the vectorised
        :func:`~repro.mocoder.emblem.decode_image_batch` (bit-identical to
        per-image ``Emblem.from_image``, including failure messages).
        """
        decoded: dict[int, Emblem] = {}
        for image_index, outcome in enumerate(decode_image_batch(self.spec, images)):
            if isinstance(outcome, MOCoderError):
                report.emblems_failed += 1
                report.failures.append(f"emblem image {image_offset + image_index}: {outcome}")
                continue
            emblem, corrections = outcome
            report.emblems_decoded += 1
            report.rs_corrections += corrections
            decoded[emblem.header.index] = emblem
        return decoded

    def decode(
        self,
        images: list[np.ndarray],
        parallelism: int = 1,
        executor: "str | object | None" = None,
    ) -> tuple[bytes, DecodeReport]:
        """Recover the byte stream from scanned emblem images.

        Emblems may arrive in any order; missing or unreadable emblems are
        reconstructed from the outer code when no more than three emblems of
        any group of twenty are lost.

        ``parallelism`` > 1 splits the per-image decoding (the RS-heavy hot
        path) into that many contiguous chunks and maps them through
        ``executor`` (an executor spec or instance; defaults to a thread pool
        of ``parallelism`` workers) before the serial group reassembly —
        byte-identical to the serial decode for any chunking.  Chunks are
        floored at :data:`MIN_DECODE_CHUNK` images: below that the executor
        round-trip costs more than the vectorised decode it fans out, so
        small streams collapse to the serial path (the recorded
        ``decode_parallelism=2`` *slowdown* on the smoke payload).

        Raises
        ------
        MissingEmblemError
            If a group lost more emblems than the outer code can rebuild.
        RestorationError
            If the reassembled stream fails its CRC-32 check.
        """
        report = DecodeReport(emblems_seen=len(images))
        bounds = chunk_bounds(len(images), parallelism, min_chunk=MIN_DECODE_CHUNK)
        if parallelism > 1 and len(bounds) > 1:
            decoded = self._decode_images_parallel(images, report, parallelism, executor, bounds)
        else:
            decoded = self.decode_images(images, report)
        return self.assemble(decoded, report)

    def _decode_images_parallel(
        self,
        images: list[np.ndarray],
        report: DecodeReport,
        parallelism: int,
        executor: "str | object | None",
        bounds: "list[tuple[int, int]]",
    ) -> dict[int, Emblem]:
        """Map :meth:`decode_images` over contiguous chunks via an executor."""
        from repro.pipeline.executors import SegmentExecutor, get_executor

        if executor is None:
            executor = f"thread:{parallelism}"
        resolved = get_executor(executor)
        owns = not isinstance(executor, SegmentExecutor)
        jobs = [
            _ImageChunkJob(
                spec=self.spec,
                outer_code=self.outer_code_enabled,
                image_offset=start,
                images=images[start:end],
            )
            for start, end in bounds
        ]
        decoded: dict[int, Emblem] = {}
        try:
            for chunk_decoded, chunk_report in resolved.map_ordered(
                _decode_image_chunk_job, iter(jobs)
            ):
                decoded.update(chunk_decoded)
                report.emblems_decoded += chunk_report.emblems_decoded
                report.emblems_failed += chunk_report.emblems_failed
                report.rs_corrections += chunk_report.rs_corrections
                report.failures.extend(chunk_report.failures)
        finally:
            if owns:
                resolved.close()
        return decoded

    def assemble(self, decoded: dict[int, Emblem], report: DecodeReport) -> tuple[bytes, DecodeReport]:
        """Reassemble the byte stream from decoded emblems (the serial half).

        ``decoded`` maps emblem index -> emblem, as produced by one or more
        :meth:`decode_images` calls; ``report`` carries their merged
        statistics and receives the reconstruction tallies.
        """
        if not decoded:
            raise MissingEmblemError("no emblem could be decoded from the provided scans")

        reference = next(iter(decoded.values())).header
        stream_length = reference.stream_length
        stream_crc = reference.stream_crc32
        total = reference.total
        capacity = self.spec.payload_capacity
        data_count = max(1, -(-stream_length // capacity)) if stream_length else 1

        chunks = self._collect_chunks(decoded, data_count, capacity, stream_length, report)
        data = b"".join(chunks)[:stream_length]
        if crc32_of(data) != stream_crc:
            raise RestorationError(
                "reassembled stream fails its CRC-32 check; the archive was not "
                "restored bit-for-bit"
            )
        if len(decoded) < total:
            report.failures.append(
                f"{total - len(decoded)} of {total} emblems were missing and reconstructed"
            )
        return data, report

    # ------------------------------------------------------------------ #
    def _collect_chunks(
        self,
        decoded: dict[int, Emblem],
        data_count: int,
        capacity: int,
        stream_length: int,
        report: DecodeReport,
    ) -> list[bytes]:
        """Assemble the ordered data chunks, reconstructing groups as needed."""
        by_group: dict[int, dict[int, Emblem]] = {}
        for emblem in decoded.values():
            by_group.setdefault(emblem.header.group_index, {})[emblem.header.slot_in_group] = emblem

        groups = -(-data_count // GROUP_DATA)
        chunks: list[bytes] = []
        for group_index in range(groups):
            slots = by_group.get(group_index, {})
            group_first_chunk = group_index * GROUP_DATA
            group_chunk_count = min(GROUP_DATA, data_count - group_first_chunk)
            have_all_data = all(slot in slots for slot in range(group_chunk_count))
            if have_all_data:
                for slot in range(group_chunk_count):
                    chunks.append(slots[slot].payload)
                continue
            if not self.outer_code_enabled:
                missing = [slot for slot in range(group_chunk_count) if slot not in slots]
                raise MissingEmblemError(
                    f"group {group_index}: emblems for slots {missing} are missing and "
                    "no outer code was used"
                )
            report.groups_reconstructed += 1
            shards: list[bytes | None] = []
            for slot in range(GROUP_SIZE):
                if slot in slots:
                    shards.append(slots[slot].payload)
                elif slot >= group_chunk_count and slot < GROUP_DATA:
                    # This data slot never existed (short final group); its
                    # contribution to the parity was all zeros.
                    shards.append(b"")
                else:
                    shards.append(None)
            recovered = self._outer.reconstruct_group(shards)
            for slot in range(group_chunk_count):
                chunk_index = group_first_chunk + slot
                expected = min(capacity, max(0, stream_length - chunk_index * capacity))
                payload = slots[slot].payload if slot in slots else recovered[slot][:expected]
                chunks.append(payload)
        return chunks


# --------------------------------------------------------------------------- #
# Sub-stream parallel decode plumbing (module-level so process pools pickle it)
# --------------------------------------------------------------------------- #
#: Floor on images per decode chunk when a chunking caller does not override
#: it.  The batched decode path amortises its per-call numpy dispatch across
#: a whole chunk, so splitting a small stream across executor workers costs
#: more (job pickling, thread wake-ups, a GIL'd merge) than it saves —
#: ``decode_parallelism=2`` measured *0.89x of serial* on the 287-frame bench
#: smoke payload before this floor collapsed such streams to one chunk.
MIN_DECODE_CHUNK = 160


def chunk_bounds(count: int, parts: int, min_chunk: int = 1) -> list[tuple[int, int]]:
    """Split ``count`` items into at most ``parts`` contiguous (start, end) runs.

    Runs differ in length by at most one and never come back empty, so the
    split is deterministic and every item lands in exactly one run.
    ``min_chunk`` caps ``parts`` so no run is shorter than it (a single run
    is always allowed): parallel decode callers pass
    :data:`MIN_DECODE_CHUNK` so tiny streams stay serial instead of paying
    executor overhead per near-empty chunk.
    """
    if min_chunk > 1:
        parts = min(parts, count // min_chunk)
    parts = max(1, min(parts, count)) if count else 1
    base, extra = divmod(count, parts)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(parts):
        end = start + base + (1 if index < extra else 0)
        bounds.append((start, end))
        start = end
    return bounds


@dataclass(frozen=True)
class _ImageChunkJob:
    """One contiguous slice of a stream's scans, decodable independently."""

    spec: EmblemSpec
    outer_code: bool
    image_offset: int
    images: list[np.ndarray]


def _decode_image_chunk_job(job: _ImageChunkJob) -> tuple[dict[int, Emblem], DecodeReport]:
    """Decode one image chunk to emblems (runs inside an executor worker)."""
    mocoder = MOCoder(job.spec, outer_code=job.outer_code)
    report = DecodeReport(emblems_seen=len(job.images))
    decoded = mocoder.decode_images(list(job.images), report, image_offset=job.image_offset)
    return decoded, report
