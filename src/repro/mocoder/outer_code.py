"""The inter-emblem ("outer") erasure code.

MOCoder protects against the loss of whole emblems by adding three parity
emblems to every set of seventeen data emblems (§3.1): any three emblems of
the resulting group of twenty may be missing altogether and the group is
still restored bit-for-bit.

The code is a systematic Reed-Solomon-style erasure code over GF(256) applied
byte-wise across the group: byte position ``i`` of the three parity emblems is
a fixed linear combination of byte position ``i`` of the seventeen data
emblems.  Because an entire emblem is either present or missing, every byte
position in a group shares the same erasure pattern, so reconstruction is a
single GF matrix inversion followed by a vectorised matrix-vector product
across all byte positions.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import MissingEmblemError
from repro.mocoder.galois import MUL_TABLE, gf_inverse, gf_mul_array
from repro.mocoder.reed_solomon import get_code

#: Number of data emblems per group.
GROUP_DATA = 17

#: Number of parity emblems per group.
GROUP_PARITY = 3

#: Total emblems per group.
GROUP_SIZE = GROUP_DATA + GROUP_PARITY


class OuterCode:
    """Erasure code across the emblems of a group.

    Parameters
    ----------
    data_shards:
        Number of data emblems per group (default 17, as in the paper).
    parity_shards:
        Number of parity emblems per group (default 3).
    """

    def __init__(self, data_shards: int = GROUP_DATA, parity_shards: int = GROUP_PARITY):
        if data_shards < 1 or parity_shards < 1:
            raise ValueError("the outer code needs at least one data and one parity shard")
        if data_shards + parity_shards > 255:
            raise ValueError("the outer code cannot exceed 255 shards")
        self.data_shards = data_shards
        self.parity_shards = parity_shards
        self.total_shards = data_shards + parity_shards
        # The shared cache matters here: a MOCoder (and therefore an
        # OuterCode) is constructed per segment job, and building the code's
        # parity matrix costs a k x k reference encode.
        self._rs = get_code(self.total_shards, data_shards)
        # Systematic generator matrix: row r of the parity matrix holds the
        # contribution of data shard r to each parity shard.
        identity = np.eye(data_shards, dtype=np.int32)
        codewords = self._rs.encode_blocks(identity)
        self._parity_matrix = codewords[:, data_shards:].astype(np.int32)  # (data, parity)
        self._generator = np.concatenate(
            [np.eye(data_shards, dtype=np.int32), self._parity_matrix], axis=1
        )  # (data, total)

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def encode_group(self, data_payloads: list[bytes]) -> list[bytes]:
        """Compute the parity payloads for up to ``data_shards`` data payloads.

        Payloads of unequal length are zero-padded to the longest one; the
        parity payloads all have that padded length.
        """
        if not data_payloads or len(data_payloads) > self.data_shards:
            raise ValueError(
                f"a group holds between 1 and {self.data_shards} data payloads, "
                f"got {len(data_payloads)}"
            )
        length = max(len(payload) for payload in data_payloads)
        matrix = np.zeros((self.data_shards, length), dtype=np.uint8)
        for row, payload in enumerate(data_payloads):
            if payload:
                matrix[row, : len(payload)] = np.frombuffer(bytes(payload), dtype=np.uint8)
        # Byte position i of the group is an independent (data_shards ->
        # parity_shards) GF(256) product, i.e. one "row" of the RS code's
        # parity computation; encode_parity batches all positions and picks
        # the gather or bit-sliced product by group length.
        parity = self._rs.encode_parity(matrix.T)  # (length, parity)
        return [parity[:, i].tobytes() for i in range(self.parity_shards)]

    # ------------------------------------------------------------------ #
    # Decoding (erasures only: an emblem is either present or missing)
    # ------------------------------------------------------------------ #
    def reconstruct_group(
        self,
        shards: list[bytes | None],
        payload_length: int | None = None,
    ) -> list[bytes]:
        """Recover the data payloads of a group.

        Parameters
        ----------
        shards:
            ``total_shards`` entries (data shards first, then parity shards);
            ``None`` marks a missing emblem.  A short final group may pass
            fewer than ``total_shards`` entries as long as data shards that
            never existed are simply absent from the end of the data section.
        payload_length:
            Length to which recovered payloads are truncated (the padded
            length is used when omitted).

        Raises
        ------
        MissingEmblemError
            If fewer than ``data_shards`` shards of the group survive.
        """
        if len(shards) != self.total_shards:
            raise ValueError(
                f"expected {self.total_shards} shard slots, got {len(shards)}"
            )
        present = [index for index, shard in enumerate(shards) if shard is not None]
        data_present = [index for index in present if index < self.data_shards]
        if len(data_present) == self.data_shards:
            # Nothing to reconstruct.
            recovered = [bytes(shards[index]) for index in range(self.data_shards)]
            if payload_length is not None:
                recovered = [payload[:payload_length] for payload in recovered]
            return recovered
        if len(present) < self.data_shards:
            raise MissingEmblemError(
                f"only {len(present)} of {self.total_shards} emblems survive; "
                f"at least {self.data_shards} are required"
            )
        chosen = present[: self.data_shards]
        length = max(len(shards[index]) for index in chosen)
        received = np.zeros((self.data_shards, length), dtype=np.int32)
        for row, shard_index in enumerate(chosen):
            shard = shards[shard_index]
            received[row, : len(shard)] = np.frombuffer(bytes(shard), dtype=np.uint8)
        # Solve G_sub * data = received, where G_sub stacks the generator
        # columns of the chosen shards.
        submatrix = self._generator[:, chosen].T.copy()  # (data, data)
        inverse = _gf_matrix_inverse(submatrix)
        recovered_matrix = _gf_matrix_multiply(inverse, received)
        recovered = [
            recovered_matrix[row].astype(np.uint8).tobytes() for row in range(self.data_shards)
        ]
        if payload_length is not None:
            recovered = [payload[:payload_length] for payload in recovered]
        return recovered


@lru_cache(maxsize=32)
def get_outer_code(data_shards: int, parity_shards: int) -> OuterCode:
    """A shared :class:`OuterCode` instance for the given (data, parity) shape.

    Construction costs a k x k reference encode (the systematic generator),
    so callers that open a code per stripe or per source — the volume-set
    store backend does — should come through here, mirroring
    :func:`repro.mocoder.reed_solomon.get_code`.
    """
    return OuterCode(data_shards, parity_shards)


def _gf_matrix_inverse(matrix: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(256) by Gauss-Jordan elimination."""
    size = matrix.shape[0]
    work = matrix.astype(np.int32).copy()
    inverse = np.eye(size, dtype=np.int32)
    for column in range(size):
        pivot_row = None
        for row in range(column, size):
            if work[row, column]:
                pivot_row = row
                break
        if pivot_row is None:
            raise MissingEmblemError("outer-code generator submatrix is singular")
        if pivot_row != column:
            work[[column, pivot_row]] = work[[pivot_row, column]]
            inverse[[column, pivot_row]] = inverse[[pivot_row, column]]
        pivot_inverse = gf_inverse(int(work[column, column]))
        work[column] = gf_mul_array(work[column], pivot_inverse)
        inverse[column] = gf_mul_array(inverse[column], pivot_inverse)
        for row in range(size):
            if row != column and work[row, column]:
                factor = int(work[row, column])
                work[row] ^= gf_mul_array(work[column], factor)
                inverse[row] ^= gf_mul_array(inverse[column], factor)
    return inverse


def _gf_matrix_multiply(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Multiply matrices over GF(256); right may be wide (vectorised).

    One multiplication-table gather and XOR reduction per column chunk —
    the same log/exp-table product the inner code's ``encode_parity`` uses —
    instead of the per-(row, column) ``gf_mul_array`` sweep of
    :func:`_gf_matrix_multiply_reference`.  For a K-data volume set this is
    the whole of the degraded-read stripe reconstruction, so the reference's
    ``K * K`` numpy passes over every stripe byte were the measured ~6x
    degraded-read penalty.  Bit-identical to the reference.
    """
    left8 = np.asarray(left).astype(np.uint8)
    right8 = np.asarray(right).astype(np.uint8)
    rows, inner = left8.shape
    width = right8.shape[1]
    result = np.empty((rows, width), dtype=np.uint8)
    # Chunk so the (rows, inner, chunk) uint8 temporary stays cache-friendly.
    chunk = max(1, 4_000_000 // max(1, rows * inner))
    for start in range(0, width, chunk):
        terms = MUL_TABLE[left8[:, :, None], right8[None, :, start:start + chunk]]
        result[:, start:start + chunk] = np.bitwise_xor.reduce(terms, axis=1)
    return result.astype(np.int32)


def _gf_matrix_multiply_reference(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """The row-at-a-time GF(256) matrix product (the pre-vectorisation loop).

    Retained as the ground truth :func:`_gf_matrix_multiply` is equivalence-
    tested against, and as the degraded-read benchmark baseline.
    """
    rows = left.shape[0]
    result = np.zeros((rows, right.shape[1]), dtype=np.int32)
    for row in range(rows):
        accumulator = np.zeros(right.shape[1], dtype=np.int32)
        for column in range(left.shape[1]):
            coefficient = int(left[row, column])
            if coefficient:
                accumulator ^= gf_mul_array(right[column], coefficient)
        result[row] = accumulator
    return result
