"""Differential-Manchester cell coding.

Unlike QR-style codes, MOCoder does not rely on a separate clocking system:
the bit signal and the clock signal are paired in the cell stream, the way
Differential Manchester encoding pairs them on floppy disks (§3.1).  Every
data bit occupies two consecutive cells:

* the level always toggles at the start of a bit period (the clock), and
* a toggle in the middle of the period encodes a ``0`` while the absence of a
  mid-period toggle encodes a ``1``.

Decoding therefore needs only a *local* comparison of the two half-cells of a
bit, which keeps clock recovery immune to the slow, large-scale intensity
drifts (fading, illumination gradients) that defeat schemes relying on an
absolute reference.
"""

from __future__ import annotations

import numpy as np
from repro.util.nptypes import BitArray


def manchester_encode(bits: BitArray, initial_level: int = 0) -> BitArray:
    """Encode a 0/1 bit array into a cell array twice as long.

    ``initial_level`` is the signal level *before* the first clock transition;
    cells use 1 for a dark cell and 0 for a light cell.
    """
    bits = np.asarray(bits, dtype=np.uint8).ravel()
    cells = np.zeros(2 * bits.size, dtype=np.uint8)
    level = 1 if initial_level else 0
    for index, bit in enumerate(bits):
        level ^= 1                      # clock transition at the bit boundary
        cells[2 * index] = level
        if bit == 0:
            level ^= 1                  # mid-bit transition encodes a zero
        cells[2 * index + 1] = level
    return cells


def manchester_encode_fast(bits: BitArray, initial_level: int = 0) -> BitArray:
    """Vectorised equivalent of :func:`manchester_encode`.

    Every half-cell either toggles the level or does not: the first half of a
    bit always toggles (the clock), the second half toggles exactly when the
    bit is 0.  The cell stream is therefore the XOR prefix scan of that
    toggle stream, computed in uint8 — much cheaper than the int64 cumulative
    sums this function used before.
    """
    bits = np.asarray(bits, dtype=np.uint8).ravel()
    if bits.size == 0:
        return np.zeros(0, dtype=np.uint8)
    toggles = np.empty(2 * bits.size, dtype=np.uint8)
    toggles[0::2] = 1                       # clock transition at every bit boundary
    toggles[1::2] = bits == 0               # mid-bit transition encodes a zero
    cells = np.bitwise_xor.accumulate(toggles)
    if initial_level:
        cells ^= 1
    return cells


def manchester_encode_rows(bits: BitArray, initial_level: int = 0) -> BitArray:
    """Row-batched :func:`manchester_encode_fast`: (rows, bits) -> (rows, 2*bits).

    Each row is an independent cell stream starting from ``initial_level``;
    row ``r`` equals ``manchester_encode_fast(bits[r], initial_level)``
    exactly.  Instead of scanning the full-length toggle stream, this runs
    the (sequential) prefix scan over the *bit* stream only — half the
    elements — and derives both half-cells from it: with ``S(i)`` the number
    of ones among ``bits[0..i]``, the second half-cell of bit ``i`` is
    ``S(i) & 1`` and the first is its complement XOR ``bits[i]``.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 2:
        raise ValueError(f"expected a (rows, bits) array, got shape {bits.shape}")
    rows, width = bits.shape
    if width == 0:
        return np.zeros((rows, 0), dtype=np.uint8)
    # Inclusive prefix parity of the bit stream; uint8 overflow keeps mod 2.
    parity = np.add.accumulate(bits, axis=1, dtype=np.uint8)
    parity &= 1
    cells = np.empty((rows, 2 * width), dtype=np.uint8)
    cells[:, 1::2] = parity
    np.bitwise_xor(parity, bits, out=parity)
    parity ^= 1
    cells[:, 0::2] = parity
    if initial_level:
        cells ^= 1
    return cells


def manchester_decode(cells: BitArray) -> BitArray:
    """Decode a binarised cell array (0/1) back into bits.

    A bit is 1 when its two half-cells carry the same level (no mid-bit
    transition) and 0 otherwise.  A trailing odd half-cell is ignored.
    """
    cells = np.asarray(cells).ravel()
    usable = (cells.size // 2) * 2
    cells = cells[:usable].astype(np.int16)
    first_half = cells[0::2]
    second_half = cells[1::2]
    return (first_half == second_half).astype(np.uint8)


def manchester_decode_analog(cell_values: BitArray) -> BitArray:
    """Decode *grayscale* cell samples without a global threshold.

    The decision for each bit compares the difference between its two
    half-cells against the transition observed at the preceding bit boundary
    (which by construction always carries a transition); this keeps the
    decoder robust to smooth intensity drift across the emblem.
    """
    values = np.asarray(cell_values, dtype=np.float64).ravel()
    usable = (values.size // 2) * 2
    values = values[:usable]
    first_half = values[0::2]
    second_half = values[1::2]
    mid_step = np.abs(second_half - first_half)
    previous_half = np.concatenate([[first_half[0]], second_half[:-1]]) if values.size else first_half
    boundary_step = np.abs(first_half - previous_half)
    # The first bit has no preceding boundary; use the global contrast instead.
    if boundary_step.size:
        global_contrast = float(np.median(boundary_step[1:])) if boundary_step.size > 1 else 0.0
        boundary_step[0] = max(boundary_step[0], global_contrast, 1.0)
    reference = np.maximum(boundary_step, 1e-6)
    return (mid_step < reference * 0.5).astype(np.uint8)
