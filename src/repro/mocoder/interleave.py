"""Byte interleaving of Reed-Solomon codewords within an emblem.

The inner RS blocks are "spread over the entire emblem" (§3.1): codeword
bytes are transmitted column-wise across all blocks, so a localised burst of
damage (a scratch, a dust spot) lands on many blocks a little rather than on
one block a lot, staying under the 16-error-per-block correction limit.
"""

from __future__ import annotations

import numpy as np


def interleave_blocks(codewords: np.ndarray) -> bytes:
    """Serialise an (blocks, n) codeword array column-major."""
    codewords = np.asarray(codewords, dtype=np.uint8)
    if codewords.ndim != 2:
        raise ValueError(f"expected a 2-D codeword array, got shape {codewords.shape}")
    return codewords.T.reshape(-1).tobytes()


def deinterleave_blocks(stream: bytes, block_count: int, codeword_length: int) -> np.ndarray:
    """Rebuild the (blocks, n) codeword array from a column-major stream."""
    expected = block_count * codeword_length
    if len(stream) < expected:
        raise ValueError(
            f"interleaved stream holds {len(stream)} bytes, expected at least {expected}"
        )
    flat = np.frombuffer(bytes(stream[:expected]), dtype=np.uint8)
    return flat.reshape(codeword_length, block_count).T.copy()


def deinterleave_blocks_batch(streams: np.ndarray, block_count: int, codeword_length: int) -> np.ndarray:
    """Deinterleave many streams at once: (count, bytes) -> (count, blocks, n).

    Row ``i`` of the result equals
    ``deinterleave_blocks(streams[i].tobytes(), block_count, codeword_length)``
    exactly.  The whole batch is one strided reshape/transpose over the
    stacked streams — no per-stream (let alone per-codeword) gathers — so a
    chunk of emblems deinterleaves in a single numpy pass.
    """
    streams = np.asarray(streams, dtype=np.uint8)
    if streams.ndim != 2:
        raise ValueError(f"expected a (count, bytes) stream array, got shape {streams.shape}")
    expected = block_count * codeword_length
    if streams.shape[1] < expected:
        raise ValueError(
            f"interleaved streams hold {streams.shape[1]} bytes each, "
            f"expected at least {expected}"
        )
    view = streams[:, :expected].reshape(-1, codeword_length, block_count)
    return np.ascontiguousarray(view.transpose(0, 2, 1))
